//! Plan enumeration: dynamic programming over connected subgraphs (bushy
//! and left-deep), greedy ordering (GOO), and exhaustive plan-space
//! sampling used to generate training plans for the learned optimizers.

use rand::Rng;

use ml4db_storage::Database;

use crate::card::CardEstimator;
use crate::cost::CostModel;
use crate::hints::HintSet;
use crate::plan::{JoinAlgo, PlanNode, ScanAlgo};
use crate::query::Query;

/// Enumeration shape restriction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanShape {
    /// Any binary tree.
    Bushy,
    /// Right child of every join is a base table.
    LeftDeep,
}

/// The classical optimizer: System R-style DP, formula cost model, hint-set
/// aware — the "expert" the ML-enhanced methods keep in the loop.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    /// Cost model used to rank candidates.
    pub cost_model: CostModel,
    /// Shape restriction.
    pub shape: PlanShape,
    /// Operator classes allowed.
    pub hint: HintSet,
}

impl Default for Planner {
    fn default() -> Self {
        Self { cost_model: CostModel::default(), shape: PlanShape::Bushy, hint: HintSet::all() }
    }
}

impl Planner {
    /// Best scan alternatives for one table under the hint set.
    fn scan_choices(&self, db: &Database, query: &Query, table: usize) -> Vec<PlanNode> {
        let mut out = Vec::new();
        let hint = self.hint;
        if hint.seq_scan {
            out.push(PlanNode::scan(query, table, ScanAlgo::Seq, None));
        }
        if hint.index_scan {
            // An index scan is legal per indexed column that has a predicate.
            for p in query.predicates_on(table) {
                if db.has_index(&query.tables[table].table, &p.column) {
                    let dup = out.iter().any(|n| {
                        matches!(&n.op, crate::plan::PlanOp::Scan { algo: ScanAlgo::Index, index_column: Some(c), .. } if c == &p.column)
                    });
                    if !dup {
                        out.push(PlanNode::scan(
                            query,
                            table,
                            ScanAlgo::Index,
                            Some(p.column.clone()),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Finds the cheapest plan by DP over connected subsets.
    ///
    /// Returns `None` when the hint set admits no plan (e.g. index-only
    /// scans on tables without indexes).
    pub fn best_plan(
        &self,
        db: &Database,
        query: &Query,
        est: &dyn CardEstimator,
    ) -> Option<PlanNode> {
        let n = query.num_tables();
        if n == 0 || !self.hint.is_valid() {
            return None;
        }
        let full = query.full_mask();
        // best[mask] = (cost, plan)
        let mut best: Vec<Option<(f64, PlanNode)>> = vec![None; (full + 1) as usize];
        for t in 0..n {
            let mut cands = self.scan_choices(db, query, t);
            let mut best_scan: Option<(f64, PlanNode)> = None;
            for c in cands.iter_mut() {
                let cost = self.cost_model.cost_plan(db, query, c, est);
                if best_scan.as_ref().map_or(true, |(bc, _)| cost < *bc) {
                    best_scan = Some((cost, c.clone()));
                }
            }
            best[1usize << t] = best_scan;
        }
        let joins = self.hint.allowed_joins();
        for mask in 1..=full {
            if mask.count_ones() < 2 || !query.is_connected(mask) {
                continue;
            }
            let mut best_here: Option<(f64, PlanNode)> = None;
            // Enumerate splits: left = sub, right = mask \ sub.
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let rest = mask & !sub;
                let left_ok = best[sub as usize].is_some();
                let right_ok = best[rest as usize].is_some();
                let shape_ok = match self.shape {
                    PlanShape::Bushy => true,
                    PlanShape::LeftDeep => rest.count_ones() == 1,
                };
                if left_ok
                    && right_ok
                    && shape_ok
                    && !query.edges_between(sub, rest).is_empty()
                {
                    let (lc, lp) = best[sub as usize].clone().expect("checked");
                    let (rc, rp) = best[rest as usize].clone().expect("checked");
                    let out = est.estimate_sanitized(db, query, mask);
                    let l_rows = lp.est_rows;
                    let r_rows = rp.est_rows;
                    for &algo in &joins {
                        let own = self.cost_model.join_cost(algo, l_rows, r_rows, out);
                        let total = lc + rc + own;
                        if best_here.as_ref().map_or(true, |(bc, _)| total < *bc) {
                            let mut node = PlanNode::join(query, algo, lp.clone(), rp.clone());
                            node.est_rows = out;
                            node.est_cost = total;
                            best_here = Some((total, node));
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            best[mask as usize] = best_here;
        }
        best[full as usize].take().map(|(_, p)| p)
    }

    /// Greedy operator ordering (GOO): repeatedly joins the pair with the
    /// smallest estimated output. Linear-ish time; the baseline for large
    /// queries.
    pub fn greedy_plan(
        &self,
        db: &Database,
        query: &Query,
        est: &dyn CardEstimator,
    ) -> Option<PlanNode> {
        let n = query.num_tables();
        if n == 0 || !self.hint.is_valid() {
            return None;
        }
        let mut parts: Vec<PlanNode> = (0..n)
            .map(|t| {
                let mut cands = self.scan_choices(db, query, t);
                cands
                    .iter_mut()
                    .map(|c| {
                        let cost = self.cost_model.cost_plan(db, query, c, est);
                        (cost, c.clone())
                    })
                    .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(_, p)| p)
            })
            .collect::<Option<Vec<_>>>()?;
        let joins = self.hint.allowed_joins();
        while parts.len() > 1 {
            // Classic GOO scores on estimated output *rows* (a scale-free
            // quantity); incremental cost only breaks ties among pairs and
            // algorithms. Adding rows to microsecond cost would make the
            // chosen pair depend on the weight scale.
            let mut best: Option<(f64, f64, usize, usize, JoinAlgo)> = None;
            for i in 0..parts.len() {
                for j in 0..parts.len() {
                    if i == j || query.edges_between(parts[i].mask, parts[j].mask).is_empty() {
                        continue;
                    }
                    let out = est.estimate_sanitized(db, query, parts[i].mask | parts[j].mask);
                    for &algo in &joins {
                        let own = self.cost_model.join_cost(
                            algo,
                            parts[i].est_rows,
                            parts[j].est_rows,
                            out,
                        );
                        let better = best.map_or(true, |(brows, bcost, ..)| {
                            out < brows || (out == brows && own < bcost)
                        });
                        if better {
                            best = Some((out, own, i, j, algo));
                        }
                    }
                }
            }
            let (_, _, i, j, algo) = best?;
            let (hi, lo) = (i.max(j), i.min(j));
            let right = parts.remove(hi);
            let left = parts.remove(lo);
            // Recover original operand order.
            let (l, r) = if i < j { (left, right) } else { (right, left) };
            let mut node = PlanNode::join(query, algo, l, r);
            node.est_rows = est.estimate_sanitized(db, query, node.mask);
            parts.push(node);
        }
        let mut plan = parts.pop()?;
        self.cost_model.cost_plan(db, query, &mut plan, est);
        Some(plan)
    }

    /// Samples `k` random valid plans (random join order and algorithms) —
    /// training-plan diversity for the learned optimizers.
    pub fn random_plans<R: Rng + ?Sized>(
        &self,
        db: &Database,
        query: &Query,
        est: &dyn CardEstimator,
        k: usize,
        rng: &mut R,
    ) -> Vec<PlanNode> {
        let joins = self.hint.allowed_joins();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let mut parts: Vec<PlanNode> = (0..query.num_tables())
                .map(|t| {
                    let cands = self.scan_choices(db, query, t);
                    if cands.is_empty() {
                        return None;
                    }
                    Some(cands[rng.gen_range(0..cands.len())].clone())
                })
                .collect::<Option<Vec<_>>>()
                .unwrap_or_default();
            if parts.is_empty() {
                continue;
            }
            while parts.len() > 1 {
                // Pick a random joinable pair.
                let pairs: Vec<(usize, usize)> = (0..parts.len())
                    .flat_map(|i| (0..parts.len()).map(move |j| (i, j)))
                    .filter(|&(i, j)| {
                        i != j && !query.edges_between(parts[i].mask, parts[j].mask).is_empty()
                    })
                    .collect();
                if pairs.is_empty() {
                    break;
                }
                let (i, j) = pairs[rng.gen_range(0..pairs.len())];
                let algo = joins[rng.gen_range(0..joins.len())];
                let (hi, lo) = (i.max(j), i.min(j));
                let right = parts.remove(hi);
                let left = parts.remove(lo);
                let (l, r) = if i < j { (left, right) } else { (right, left) };
                parts.push(PlanNode::join(query, algo, l, r));
            }
            if parts.len() == 1 {
                let mut p = parts.pop().expect("one part");
                self.cost_model.cost_plan(db, query, &mut p, est);
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::{ClassicEstimator, TrueCardinality};
    use crate::executor::execute;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use ml4db_storage::{CmpOp, TRUE_WEIGHTS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> Database {
        let mut rng = StdRng::seed_from_u64(11);
        let cat = joblite(&DatasetConfig { base_rows: 150, ..Default::default() }, &mut rng);
        let mut db = Database::analyze(cat, &mut rng);
        db.add_index("title", "year");
        db
    }

    fn three_way() -> Query {
        Query::new(&["title", "cast_info", "person"])
            .join(0, "id", 1, "movie_id")
            .join(1, "person_id", 2, "id")
            .filter(0, "year", CmpOp::Ge, 2010.0)
    }

    #[test]
    fn dp_produces_valid_plan() {
        let db = db();
        let q = three_way();
        let plan = Planner::default().best_plan(&db, &q, &ClassicEstimator).unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.mask, q.full_mask());
        // And it executes.
        execute(&db, &q, &plan).unwrap();
    }

    #[test]
    fn dp_with_true_cards_is_optimal_among_candidates() {
        let db = db();
        let q = three_way();
        let oracle = TrueCardinality::new();
        let planner = Planner {
            cost_model: CostModel::new(TRUE_WEIGHTS),
            ..Default::default()
        };
        let best = planner.best_plan(&db, &q, &oracle).unwrap();
        let best_latency = execute(&db, &q, &best).unwrap().latency_us;
        // Sample random plans: none should beat the DP plan by much.
        let mut rng = StdRng::seed_from_u64(1);
        for p in planner.random_plans(&db, &q, &oracle, 20, &mut rng) {
            let lat = execute(&db, &q, &p).unwrap().latency_us;
            assert!(
                best_latency <= lat * 1.3,
                "random plan ({lat}) much better than DP plan ({best_latency})\n{}",
                p.explain(&q)
            );
        }
    }

    #[test]
    fn left_deep_restriction_holds() {
        let db = db();
        let q = three_way();
        let planner = Planner { shape: PlanShape::LeftDeep, ..Default::default() };
        let plan = planner.best_plan(&db, &q, &ClassicEstimator).unwrap();
        assert!(plan.is_left_deep());
    }

    #[test]
    fn hints_restrict_operators() {
        let db = db();
        let q = three_way();
        let hint = HintSet {
            hash_join: false,
            merge_join: false,
            index_scan: false,
            ..HintSet::all()
        };
        let planner = Planner { hint, ..Default::default() };
        let plan = planner.best_plan(&db, &q, &ClassicEstimator).unwrap();
        plan.walk(&mut |n| match &n.op {
            crate::plan::PlanOp::Join { algo, .. } => {
                assert_eq!(*algo, JoinAlgo::NestedLoop)
            }
            crate::plan::PlanOp::Scan { algo, .. } => assert_eq!(*algo, ScanAlgo::Seq),
        });
    }

    #[test]
    fn different_hints_can_change_the_plan() {
        let db = db();
        let q = three_way();
        let all = Planner::default().best_plan(&db, &q, &ClassicEstimator).unwrap();
        let no_hash = Planner {
            hint: HintSet { hash_join: false, ..HintSet::all() },
            ..Default::default()
        }
        .best_plan(&db, &q, &ClassicEstimator)
        .unwrap();
        assert_ne!(all.signature(), no_hash.signature());
    }

    #[test]
    fn greedy_produces_valid_plan() {
        let db = db();
        let q = three_way();
        let plan = Planner::default().greedy_plan(&db, &q, &ClassicEstimator).unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.mask, q.full_mask());
        execute(&db, &q, &plan).unwrap();
    }

    /// An estimator gone wrong: NaN on every join, -∞ on scans — the raw
    /// output of an unconverged or corrupted learned model.
    struct NanEstimator;
    impl CardEstimator for NanEstimator {
        fn estimate(&self, _: &Database, _: &Query, mask: u64) -> f64 {
            if mask.count_ones() > 1 {
                f64::NAN
            } else {
                f64::NEG_INFINITY
            }
        }
    }

    #[test]
    fn nan_estimates_still_yield_valid_executable_plans() {
        // Regression test for the planner boundary: before sanitization a
        // NaN cardinality tied with every candidate in the DP's
        // `partial_cmp(..).unwrap_or(Equal)` comparisons, silently picking
        // an arbitrary plan with NaN annotations. Sanitized, both DP and
        // greedy must return structurally valid, finitely-annotated plans
        // that execute.
        let db = db();
        let q = three_way();
        for plan in [
            Planner::default().best_plan(&db, &q, &NanEstimator).unwrap(),
            Planner::default().greedy_plan(&db, &q, &NanEstimator).unwrap(),
        ] {
            plan.validate().unwrap();
            assert_eq!(plan.mask, q.full_mask());
            plan.walk(&mut |n| {
                assert!(
                    n.est_rows.is_finite() && n.est_rows >= 1.0,
                    "unsanitized est_rows {} escaped",
                    n.est_rows
                );
                assert!(n.est_cost.is_finite(), "non-finite est_cost escaped");
            });
            execute(&db, &q, &plan).unwrap();
        }
    }

    #[test]
    fn random_plans_are_valid_and_diverse() {
        let db = db();
        let q = three_way();
        let mut rng = StdRng::seed_from_u64(5);
        let plans =
            Planner::default().random_plans(&db, &q, &ClassicEstimator, 30, &mut rng);
        assert!(plans.len() >= 25);
        let sigs: std::collections::BTreeSet<String> =
            plans.iter().map(|p| p.signature()).collect();
        assert!(sigs.len() > 3, "no diversity: {sigs:?}");
        for p in &plans {
            p.validate().unwrap();
        }
    }
}
