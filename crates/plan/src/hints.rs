//! Bao-style hint sets \[27\]: per-query switches that disable classes of
//! physical operators, steering the classical planner toward alternative
//! complete plans. The bandit optimizer's arms are exactly these.

use serde::{Deserialize, Serialize};

use crate::plan::{JoinAlgo, ScanAlgo};

/// A hint set: which operator classes the planner may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HintSet {
    /// Allow hash joins.
    pub hash_join: bool,
    /// Allow nested-loop joins.
    pub nested_loop: bool,
    /// Allow sort-merge joins.
    pub merge_join: bool,
    /// Allow index scans.
    pub index_scan: bool,
    /// Allow sequential scans.
    pub seq_scan: bool,
}

impl Default for HintSet {
    fn default() -> Self {
        Self::all()
    }
}

impl HintSet {
    /// Everything enabled (the optimizer's default behaviour).
    pub fn all() -> Self {
        Self {
            hash_join: true,
            nested_loop: true,
            merge_join: true,
            index_scan: true,
            seq_scan: true,
        }
    }

    /// True when at least one join algorithm and one scan algorithm remain —
    /// a hint set that disables everything can't produce plans.
    pub fn is_valid(self) -> bool {
        (self.hash_join || self.nested_loop || self.merge_join)
            && (self.index_scan || self.seq_scan)
    }

    /// Join algorithms this hint set allows.
    pub fn allowed_joins(self) -> Vec<JoinAlgo> {
        let mut v = Vec::new();
        if self.hash_join {
            v.push(JoinAlgo::Hash);
        }
        if self.nested_loop {
            v.push(JoinAlgo::NestedLoop);
        }
        if self.merge_join {
            v.push(JoinAlgo::SortMerge);
        }
        v
    }

    /// Scan algorithms this hint set allows.
    pub fn allowed_scans(self) -> Vec<ScanAlgo> {
        let mut v = Vec::new();
        if self.seq_scan {
            v.push(ScanAlgo::Seq);
        }
        if self.index_scan {
            v.push(ScanAlgo::Index);
        }
        v
    }

    /// A short stable label, e.g. `"hj+nl+mj/idx+seq"`.
    pub fn label(self) -> String {
        let mut joins = Vec::new();
        if self.hash_join {
            joins.push("hj");
        }
        if self.nested_loop {
            joins.push("nl");
        }
        if self.merge_join {
            joins.push("mj");
        }
        let mut scans = Vec::new();
        if self.index_scan {
            scans.push("idx");
        }
        if self.seq_scan {
            scans.push("seq");
        }
        format!("{}/{}", joins.join("+"), scans.join("+"))
    }

    /// Packs the hint set into its canonical 5-bit integer (the inverse
    /// of the enumeration order in [`all_hint_sets`]); used to fold hints
    /// into plan-cache keys.
    pub fn bits(self) -> u8 {
        (self.hash_join as u8)
            | (self.nested_loop as u8) << 1
            | (self.merge_join as u8) << 2
            | (self.index_scan as u8) << 3
            | (self.seq_scan as u8) << 4
    }

    /// Encodes the hint set as a 5-bit feature vector (Bao's arm features).
    pub fn features(self) -> [f32; 5] {
        [
            self.hash_join as u8 as f32,
            self.nested_loop as u8 as f32,
            self.merge_join as u8 as f32,
            self.index_scan as u8 as f32,
            self.seq_scan as u8 as f32,
        ]
    }
}

/// Enumerates every valid hint set (the exhaustive arm space AutoSteer
/// explores; 21 of the 32 combinations are valid).
pub fn all_hint_sets() -> Vec<HintSet> {
    let mut out = Vec::new();
    for bits in 0u8..32 {
        let h = HintSet {
            hash_join: bits & 1 != 0,
            nested_loop: bits & 2 != 0,
            merge_join: bits & 4 != 0,
            index_scan: bits & 8 != 0,
            seq_scan: bits & 16 != 0,
        };
        if h.is_valid() {
            out.push(h);
        }
    }
    out
}

/// The hand-crafted arm collection in the spirit of Bao's 5 hint sets:
/// the default plus single-operator-class restrictions that commonly fix
/// optimizer mistakes.
pub fn bao_arms() -> Vec<HintSet> {
    vec![
        HintSet::all(),
        HintSet { nested_loop: false, ..HintSet::all() },
        HintSet { hash_join: false, ..HintSet::all() },
        HintSet { merge_join: false, ..HintSet::all() },
        HintSet { index_scan: false, ..HintSet::all() },
        HintSet { nested_loop: false, merge_join: false, ..HintSet::all() },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_hint_sets_are_valid_and_complete() {
        let sets = all_hint_sets();
        assert_eq!(sets.len(), 21, "7 join combos x 3 scan combos");
        assert!(sets.iter().all(|h| h.is_valid()));
        assert!(sets.contains(&HintSet::all()));
    }

    #[test]
    fn invalid_sets_rejected() {
        let no_joins = HintSet {
            hash_join: false,
            nested_loop: false,
            merge_join: false,
            ..HintSet::all()
        };
        assert!(!no_joins.is_valid());
        let no_scans =
            HintSet { index_scan: false, seq_scan: false, ..HintSet::all() };
        assert!(!no_scans.is_valid());
    }

    #[test]
    fn bao_arms_valid_and_distinct() {
        let arms = bao_arms();
        assert!(arms.iter().all(|h| h.is_valid()));
        let labels: std::collections::BTreeSet<String> =
            arms.iter().map(|h| h.label()).collect();
        assert_eq!(labels.len(), arms.len(), "duplicate arms");
    }

    #[test]
    fn features_roundtrip_label() {
        let h = HintSet { nested_loop: false, ..HintSet::all() };
        assert_eq!(h.features(), [1.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(h.label(), "hj+mj/idx+seq");
    }
}
