//! Property test: every plan the planner can produce for a random SPJ query
//! — any join order, any algorithm mix, any scan choice — returns exactly
//! the rows of the naive reference evaluation. This is the core soundness
//! property that lets learned optimizers roam the plan space freely.

use ml4db_plan::executor::{naive_execute, normalize_row};
use ml4db_plan::{execute, ClassicEstimator, Planner, Query};
use ml4db_storage::table::{Catalog, ColumnData, DataType, Schema, Table};
use ml4db_storage::{CmpOp, Database, Row};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small random 3-table star catalog driven by proptest inputs.
fn catalog(dim_rows: usize, fact_rows: usize, fanout: i64, seed: u64) -> Database {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "dim_a",
        Schema::new(&[("id", DataType::Int), ("attr", DataType::Int)]),
        vec![
            ColumnData::Int((0..dim_rows as i64).collect()),
            ColumnData::Int((0..dim_rows).map(|_| rng.gen_range(0..10)).collect()),
        ],
    ));
    cat.add_table(Table::new(
        "dim_b",
        Schema::new(&[("id", DataType::Int), ("weight", DataType::Float)]),
        vec![
            ColumnData::Int((0..dim_rows as i64).collect()),
            ColumnData::Float((0..dim_rows).map(|_| rng.gen_range(0.0..1.0)).collect()),
        ],
    ));
    cat.add_table(Table::new(
        "fact",
        Schema::new(&[
            ("a_id", DataType::Int),
            ("b_id", DataType::Int),
            ("val", DataType::Int),
        ]),
        vec![
            ColumnData::Int((0..fact_rows).map(|_| rng.gen_range(0..fanout.max(1))).collect()),
            ColumnData::Int(
                (0..fact_rows).map(|_| rng.gen_range(0..dim_rows as i64)).collect(),
            ),
            ColumnData::Int((0..fact_rows).map(|_| rng.gen_range(0..100)).collect()),
        ],
    ));
    Database::analyze(cat, &mut rng)
}

fn normalized(db: &Database, q: &Query, rows: &[Row], layout: &[usize]) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            normalize_row(db, q, layout, r)
                .into_iter()
                .map(|val| format!("{val:?}"))
                .collect()
        })
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All sampled plans agree with the naive oracle on random data,
    /// predicates, and join shapes.
    #[test]
    fn every_plan_matches_naive_oracle(
        seed in 0u64..5000,
        dim_rows in 3usize..25,
        fact_rows in 5usize..60,
        fanout in 1i64..30,
        attr_cut in 0i64..10,
        val_cut in 0i64..100,
    ) {
        let db = catalog(dim_rows, fact_rows, fanout, seed);
        let q = Query::new(&["fact", "dim_a", "dim_b"])
            .join(0, "a_id", 1, "id")
            .join(0, "b_id", 2, "id")
            .filter(1, "attr", CmpOp::Ge, attr_cut as f64)
            .filter(0, "val", CmpOp::Lt, val_cut as f64);
        q.validate(&db).unwrap();
        let mut expected = naive_execute(&db, &q).unwrap();
        expected.sort_by_key(|r| format!("{r:?}"));
        let expected: Vec<Vec<String>> = expected
            .iter()
            .map(|r| r.iter().map(|v| format!("{v:?}")).collect())
            .collect();

        let planner = Planner::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let mut plans = planner.random_plans(&db, &q, &ClassicEstimator, 4, &mut rng);
        plans.push(planner.best_plan(&db, &q, &ClassicEstimator).unwrap());
        plans.push(planner.greedy_plan(&db, &q, &ClassicEstimator).unwrap());
        for plan in plans {
            plan.validate().unwrap();
            let result = execute(&db, &q, &plan).unwrap();
            let got = normalized(&db, &q, &result.rows, &result.layout);
            prop_assert_eq!(&got, &expected, "plan {} diverged", plan.signature());
        }
    }
}

/// A cyclic join graph forces a join node to carry more than one condition:
/// the first drives the physical join, the rest apply as residual filters —
/// a path tree-shaped queries never exercise.
#[test]
fn cyclic_join_residual_conditions_match_oracle() {
    let db = catalog(12, 40, 12, 99);
    // Triangle: fact—dim_a, fact—dim_b, plus a cross edge dim_a.id = dim_b.id.
    let q = Query::new(&["fact", "dim_a", "dim_b"])
        .join(0, "a_id", 1, "id")
        .join(0, "b_id", 2, "id")
        .join(1, "id", 2, "id");
    q.validate(&db).unwrap();
    let mut expected = naive_execute(&db, &q).unwrap();
    expected.sort_by_key(|r| format!("{r:?}"));
    let expected: Vec<Vec<String>> = expected
        .iter()
        .map(|r| r.iter().map(|v| format!("{v:?}")).collect())
        .collect();
    let planner = Planner::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut plans = planner.random_plans(&db, &q, &ClassicEstimator, 6, &mut rng);
    plans.push(planner.best_plan(&db, &q, &ClassicEstimator).unwrap());
    let mut residual_exercised = false;
    for plan in plans {
        plan.walk(&mut |n| {
            if let ml4db_plan::PlanOp::Join { conditions, .. } = &n.op {
                if conditions.len() > 1 {
                    residual_exercised = true;
                }
            }
        });
        let result = execute(&db, &q, &plan).unwrap();
        let got = normalized(&db, &q, &result.rows, &result.layout);
        assert_eq!(got, expected, "plan {} diverged", plan.signature());
    }
    assert!(residual_exercised, "no plan carried a residual join condition");
}

/// Every valid hint set yields a plan that obeys its restrictions and
/// returns the oracle's rows — the invariant Bao/AutoSteer arms rely on.
#[test]
fn all_hint_sets_plan_correctly() {
    let db = catalog(10, 30, 10, 5);
    let q = Query::new(&["fact", "dim_a"])
        .join(0, "a_id", 1, "id")
        .filter(1, "attr", CmpOp::Ge, 3.0);
    let mut expected = naive_execute(&db, &q).unwrap();
    expected.sort_by_key(|r| format!("{r:?}"));
    let expected: Vec<Vec<String>> = expected
        .iter()
        .map(|r| r.iter().map(|v| format!("{v:?}")).collect())
        .collect();
    for hint in ml4db_plan::all_hint_sets() {
        let planner = Planner { hint, ..Default::default() };
        // Index-scan-only hint sets may fail to plan (no indexes declared):
        // that must be a clean None, never a bad plan.
        let Some(plan) = planner.best_plan(&db, &q, &ClassicEstimator) else {
            assert!(!hint.seq_scan, "seq-scan-capable hint set failed to plan");
            continue;
        };
        plan.validate().unwrap();
        plan.walk(&mut |n| match &n.op {
            ml4db_plan::PlanOp::Join { algo, .. } => {
                assert!(hint.allowed_joins().contains(algo), "{} used {algo:?}", hint.label())
            }
            ml4db_plan::PlanOp::Scan { algo, .. } => {
                assert!(hint.allowed_scans().contains(algo), "{} used {algo:?}", hint.label())
            }
        });
        let result = execute(&db, &q, &plan).unwrap();
        let got = normalized(&db, &q, &result.rows, &result.layout);
        assert_eq!(got, expected, "hint {} diverged", hint.label());
    }
}
