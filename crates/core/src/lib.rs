//! # ml4db-core — the umbrella crate
//!
//! One entry point over the whole workspace, organized along the
//! tutorial's three themes:
//!
//! * **Foundations** — plan representation ([`ml4db_repr`]) and
//!   pretrained/unified models ([`ml4db_pretrain`]);
//! * **Paradigms** — replacement vs ML-enhanced, on indexes
//!   ([`ml4db_index`], [`ml4db_spatial`]) and the query optimizer
//!   ([`ml4db_optimizer`]); the [`paradigm`] module captures the pattern
//!   itself (guardrails, robustness reports);
//! * **Open problems** — model efficiency and drift ([`ml4db_card`]),
//!   training-data generation ([`ml4db_datagen`]), and deployment
//!   robustness ([`ml4db_guard`]: circuit-breaker fallbacks for every
//!   learned component, proven by deterministic fault injection;
//!   [`ml4db_lifecycle`]: versioned model registry with validation-gated
//!   promotion and auto-rollback under workload shift).
//!
//! [`pipeline`] has one-call end-to-end flows; [`matrix`] is the standing
//! evaluation matrix (every optimizer policy × every workload-zoo
//! scenario, scored against per-cell regression budgets); [`prelude`]
//! re-exports the common surface. The survey artifacts (Figure 1,
//! Table 1) live in [`ml4db_survey`].

#![warn(missing_docs)]

pub mod matrix;
pub mod paradigm;
pub mod pipeline;

pub use ml4db_card as card;
pub use ml4db_ctl as ctl;
pub use ml4db_datagen as datagen;
pub use ml4db_guard as guard;
pub use ml4db_index as index;
pub use ml4db_lifecycle as lifecycle;
pub use ml4db_nn as nn;
pub use ml4db_obs as obs;
pub use ml4db_optimizer as optimizer;
pub use ml4db_par as par;
pub use ml4db_plan as plan;
pub use ml4db_pretrain as pretrain;
pub use ml4db_repr as repr;
pub use ml4db_serve as serve;
pub use ml4db_spatial as spatial;
pub use ml4db_storage as storage;
pub use ml4db_survey as survey;

/// Curated re-exports for downstream users.
pub mod prelude {
    pub use crate::matrix::{run_matrix, MatrixConfig, MatrixReport, Policy};
    pub use crate::paradigm::{GuardedEstimator, ParadigmKind, RobustnessReport};
    pub use crate::pipeline::{demo_database, demo_workload, train_bao};
    pub use ml4db_card::{MscnEstimator, NngpEstimator};
    pub use ml4db_datagen::{SchemaGraph, WorkloadConfig, WorkloadGenerator};
    pub use ml4db_guard::{
        BreakerState, CircuitBreaker, GuardedCardEstimator, GuardedIndex, GuardedSpatial,
        GuardedSteering, LifecycleLink,
    };
    pub use ml4db_lifecycle::{GateConfig, LifecycleState, ModelRegistry};
    pub use ml4db_index::{AlexIndex, BPlusTree, DynamicPgm, MutableIndex, OrderedIndex, PgmIndex, RadixSpline, Rmi};
    pub use ml4db_optimizer::{AutoSteer, Balsa, Bao, Env, Leon, Neo, ParamTree, Rtos};
    pub use ml4db_par::{par_map, par_map_indexed, set_threads};
    pub use ml4db_plan::{
        bao_arms, CardEstimator, ClassicEstimator, CostModel, HintSet, PlanCache, PlanNode,
        Planner, Query, TrueCardinality,
    };
    pub use ml4db_repr::{featurize_plan, CostRegressor, FeatureConfig, PlanEncoder, TreeModelKind};
    pub use ml4db_spatial::{AiRTree, GuttmanPolicy, LisaIndex, PlatonPacker, RTree, RsmiIndex, ZmIndex};
    pub use ml4db_storage::{CmpOp, Database, Value};
    pub use ml4db_survey::{figure1_series, render_figure1, render_table1, table1};
}
