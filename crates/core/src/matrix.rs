//! The standing evaluation matrix: every optimizer policy × every
//! workload-zoo scenario, deterministically, with a per-cell regression
//! budget.
//!
//! Each scenario of [`ml4db_datagen::zoo`] contributes one row: a fresh
//! seeded `joblite` instance, a benign training stream (what the learned
//! policies see), the scenario's data transform, and an evaluation
//! stream drawn from the scenario's own regime. Each policy
//! ([`Policy`]) contributes one column: the classical expert planner,
//! Bao (trained on the benign stream, evaluated greedily), AutoSteer
//! (per-query hint-set discovery + the shared bandit posterior), and
//! guarded Bao (the same bandit behind [`GuardedSteering`]'s latency
//! budget and circuit breaker).
//!
//! Every cell is scored against an explicit [`CellBudget`] — p99 and
//! total latency relative to the classical cell, regression count,
//! guard trips, and oracle agreement of served results against the
//! brute-force reference executor. Budgets on the *unguarded* learned
//! policies are enforced only on benign scenarios: the adversarial
//! scenarios are *supposed* to break them (that is what
//! [`ProbeReport`] asserts), so those cells are recorded as canaries
//! rather than gates. The guarded policy's budget is enforced
//! everywhere, adversarial scenarios included — that asymmetry is the
//! point of the matrix.
//!
//! Everything is a pure function of [`MatrixConfig`]: databases,
//! workloads, training, and scoring all derive from salted seeds;
//! parallel sections use order-preserving `ml4db_par::par_map` only with
//! stateless planners, and every stateful guard runs serially — so
//! [`MatrixReport::to_canonical_json`] is byte-identical across
//! `ML4DB_THREADS` settings. The serving column runs each scenario's
//! evaluation stream through the real `ml4db-serve` closed loop
//! (admission control, virtual workers, virtual clock).

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml4db_card::{collect_samples, MscnEstimator};
use ml4db_datagen::zoo::{ScenarioKind, ScenarioSpec};
use ml4db_datagen::{key_stream, LoadGen, LoadSpec, TemplateMix};
use ml4db_guard::{GuardedCardEstimator, GuardedSteering};
use ml4db_index::{BPlusTree, KeyValue, OrderedIndex, PgmIndex};
use ml4db_obs as obs;
use ml4db_optimizer::harness::{dedup_by_fingerprint, evaluate, EvalReport};
use ml4db_optimizer::{discover_hint_sets, AutoSteer, Bao, Env};
use ml4db_plan::executor::{execute, naive_execute, normalize_row};
use ml4db_plan::{bao_arms, CardEstimator, HintSet, PlanNode, Query, TrueCardinality};
use ml4db_serve::{run_closed_loop, AdmissionConfig, SimConfig};
use ml4db_storage::datasets::{joblite, DatasetConfig};
use ml4db_storage::{Database, Row};
use serde_json::Value;

// Salts mixed into a scenario's seed so each training/serving stream is
// independent of the zoo's own data/workload streams.
const SALT_BAO: u64 = 0x4D41_5452_4958_0001;
const SALT_AUTOSTEER: u64 = 0x4D41_5452_4958_0002;
const SALT_MSCN: u64 = 0x4D41_5452_4958_0003;
const SALT_SERVE: u64 = 0x4D41_5452_4958_0004;
const SALT_DB: u64 = 0x4D41_5452_4958_0005;

/// Estimator cache tag for probe planning (distinct from the lifecycle
/// harness tags 0–3, though each scenario also gets a fresh `Env`).
const TAG_PROBE: u64 = 9;

/// ε of the probe PGM build; `ml4db_datagen::BOMB_CLUSTER` is sized as
/// `2ε + 2` against exactly this bound.
const PROBE_EPSILON: usize = 16;

/// Knobs of one matrix run. Every field is folded into the seeds, so the
/// report is a pure function of this struct.
#[derive(Clone, Copy, Debug)]
pub struct MatrixConfig {
    /// `joblite` base rows per scenario instance.
    pub base_rows: usize,
    /// Benign training-stream length (before fingerprint dedup).
    pub train_n: usize,
    /// Evaluation-stream length (before fingerprint dedup).
    pub eval_n: usize,
    /// Queries the plan-regression trap keeps (the top of the candidate
    /// pool by Bao-greedy latency over expert).
    pub trap_keep: usize,
    /// Requests the serving column issues per scenario.
    pub serve_requests: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self { base_rows: 200, train_n: 20, eval_n: 14, trap_keep: 8, serve_requests: 192, seed: 42 }
    }
}

/// The optimizer policies the matrix evaluates — the matrix's columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The classical expert planner (the baseline every ratio is
    /// measured against).
    Classical,
    /// Bao: fixed hint-set arms, bandit trained on the benign stream,
    /// greedy (posterior-mean) choices at evaluation time.
    Bao,
    /// AutoSteer: per-query hint-set discovery, scored under the shared
    /// bandit posterior.
    AutoSteer,
    /// Bao behind [`GuardedSteering`]: per-query latency budget with
    /// expert fallback and a circuit breaker.
    GuardedBao,
}

impl Policy {
    /// All policies in canonical column order.
    pub fn all() -> [Policy; 4] {
        [Policy::Classical, Policy::Bao, Policy::AutoSteer, Policy::GuardedBao]
    }

    /// Stable snake_case name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Classical => "classical",
            Policy::Bao => "bao",
            Policy::AutoSteer => "autosteer",
            Policy::GuardedBao => "guarded_bao",
        }
    }
}

/// The regression budget one cell is judged against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellBudget {
    /// Ceiling on cell p99 over the classical cell's p99.
    pub max_p99_ratio: f64,
    /// Ceiling on cell total latency over the classical cell's total.
    pub max_total_ratio: f64,
    /// Ceiling on >2×-expert regressions.
    pub max_regressions: usize,
    /// Ceiling on circuit-breaker trips charged to the cell.
    pub max_guard_trips: u64,
    /// Floor on oracle agreement of served results.
    pub min_oracle_agreement: f64,
    /// Whether a violation fails the matrix ([`MatrixReport::pass`]).
    /// Unenforced cells are canaries: recorded, reported, not gating.
    pub enforced: bool,
}

/// The budget for `policy` on a scenario, which is `adversarial` or not.
///
/// * `classical` is its own baseline: exact parity, always enforced.
/// * `bao`/`autosteer` get a generous benign budget, enforced only on
///   benign scenarios — adversarial scenarios are crafted to break them.
/// * `guarded_bao` is enforced *everywhere*: [`GuardedSteering`]'s
///   per-query abort bound (budget factor 1.2 → worst charge
///   2.2 × expert) makes ≤2.25× mathematically guaranteed, adversarial
///   workloads included.
pub fn budget_for(policy: Policy, adversarial: bool) -> CellBudget {
    match policy {
        Policy::Classical => CellBudget {
            max_p99_ratio: 1.0 + 1e-9,
            max_total_ratio: 1.0 + 1e-9,
            max_regressions: 0,
            max_guard_trips: 0,
            min_oracle_agreement: 1.0,
            enforced: true,
        },
        Policy::Bao | Policy::AutoSteer => CellBudget {
            max_p99_ratio: 5.0,
            max_total_ratio: 1.75,
            max_regressions: 3,
            max_guard_trips: 0,
            min_oracle_agreement: 1.0,
            enforced: !adversarial,
        },
        Policy::GuardedBao => CellBudget {
            max_p99_ratio: 2.25,
            max_total_ratio: 2.25,
            max_regressions: 64,
            max_guard_trips: 64,
            min_oracle_agreement: 1.0,
            enforced: true,
        },
    }
}

/// One scored cell of the matrix.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Zoo scenario name.
    pub scenario: &'static str,
    /// Policy name.
    pub policy: &'static str,
    /// Whether the scenario is adversarial.
    pub adversarial: bool,
    /// Cell p99 latency (µs).
    pub p99_us: f64,
    /// Cell total latency (µs).
    pub total_us: f64,
    /// `p99_us` over the classical cell's p99.
    pub p99_ratio: f64,
    /// `total_us` over the classical cell's total.
    pub total_ratio: f64,
    /// Queries >2× slower than the expert plan.
    pub regressions: usize,
    /// Circuit-breaker trips charged to the cell.
    pub guard_trips: u64,
    /// Oracle-agreement probes attempted.
    pub oracle_checked: u64,
    /// Probes whose served result multiset matched the brute-force
    /// reference.
    pub oracle_agreed: u64,
    /// The budget this cell was judged against.
    pub budget: CellBudget,
    /// Whether every budgeted metric was within bounds.
    pub within_budget: bool,
}

impl CellReport {
    /// Fraction of oracle probes that agreed (1.0 when none ran).
    pub fn oracle_agreement(&self) -> f64 {
        if self.oracle_checked == 0 {
            1.0
        } else {
            self.oracle_agreed as f64 / self.oracle_checked as f64
        }
    }
}

/// One scenario's pass through the real serving path: its evaluation
/// stream as a two-tenant template mix through admission control and the
/// closed-loop simulator.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// Zoo scenario name.
    pub scenario: &'static str,
    /// Requests the client population issued.
    pub submitted: u64,
    /// Requests executed to completion.
    pub completed: u64,
    /// Fraction of submissions shed by admission control.
    pub shed_rate: f64,
    /// p99 sojourn latency (virtual µs; 0 when nothing completed).
    pub p99_us: f64,
}

/// The negative control attached to one adversarial scenario: evidence
/// the scenario defeats a named *unguarded* learned component, plus
/// evidence the guarded configuration stays within its budget.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// Zoo scenario name.
    pub scenario: &'static str,
    /// The learned component under attack.
    pub component: &'static str,
    /// The unguarded damage metric (q-error blow-up ratio, segment
    /// blow-up ratio, regression count — see the scenario's probe).
    pub unguarded_metric: f64,
    /// `unguarded_metric` must reach this for the scenario to count as
    /// load-bearing.
    pub threshold: f64,
    /// Whether the unguarded component was demonstrably defeated.
    pub defeated: bool,
    /// The guarded configuration's damage metric (latency ratio or
    /// wrong-answer count).
    pub guarded_metric: f64,
    /// Ceiling on `guarded_metric`.
    pub guarded_budget: f64,
    /// Whether the guarded configuration stayed within budget.
    pub guarded_ok: bool,
}

/// The whole matrix: cells × scenarios, serving diagnostics, and the
/// adversarial negative controls.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Config echo.
    pub config: MatrixConfig,
    /// Scenario count (rows).
    pub scenarios: usize,
    /// Policy count (columns).
    pub policies: usize,
    /// All scored cells, scenario-major in canonical zoo order.
    pub cells: Vec<CellReport>,
    /// One serving diagnostic per scenario.
    pub serve: Vec<ServeCell>,
    /// One probe per adversarial scenario.
    pub probes: Vec<ProbeReport>,
}

impl MatrixReport {
    /// The one-bit verdict CI gates on: every *enforced* cell within its
    /// budget, and every adversarial probe both defeated-unguarded and
    /// within-budget-guarded.
    pub fn pass(&self) -> bool {
        self.cells.iter().all(|c| !c.budget.enforced || c.within_budget)
            && self.probes.iter().all(|p| p.defeated && p.guarded_ok)
    }

    /// The cell for `(scenario, policy)`, if present.
    pub fn cell(&self, scenario: &str, policy: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// Canonical JSON: sorted keys, no wall-clock, a pure function of
    /// [`MatrixConfig`] — byte-identical across `ML4DB_THREADS`.
    pub fn to_canonical_json(&self) -> Value {
        let num = Value::Number;
        let mut root: BTreeMap<String, Value> = BTreeMap::new();
        let mut cfg: BTreeMap<String, Value> = BTreeMap::new();
        cfg.insert("base_rows".into(), num(self.config.base_rows as f64));
        cfg.insert("train_n".into(), num(self.config.train_n as f64));
        cfg.insert("eval_n".into(), num(self.config.eval_n as f64));
        cfg.insert("trap_keep".into(), num(self.config.trap_keep as f64));
        cfg.insert("serve_requests".into(), num(self.config.serve_requests as f64));
        cfg.insert("seed".into(), num(self.config.seed as f64));
        root.insert("config".into(), Value::Object(cfg));
        root.insert("scenarios".into(), num(self.scenarios as f64));
        root.insert("policies".into(), num(self.policies as f64));
        root.insert(
            "cells".into(),
            Value::Array(
                self.cells
                    .iter()
                    .map(|c| {
                        let mut o: BTreeMap<String, Value> = BTreeMap::new();
                        o.insert("scenario".into(), Value::String(c.scenario.into()));
                        o.insert("policy".into(), Value::String(c.policy.into()));
                        o.insert("adversarial".into(), Value::Bool(c.adversarial));
                        o.insert("p99_us".into(), num(c.p99_us));
                        o.insert("total_us".into(), num(c.total_us));
                        o.insert("p99_ratio".into(), num(c.p99_ratio));
                        o.insert("total_ratio".into(), num(c.total_ratio));
                        o.insert("regressions".into(), num(c.regressions as f64));
                        o.insert("guard_trips".into(), num(c.guard_trips as f64));
                        o.insert("oracle_checked".into(), num(c.oracle_checked as f64));
                        o.insert("oracle_agreed".into(), num(c.oracle_agreed as f64));
                        let mut b: BTreeMap<String, Value> = BTreeMap::new();
                        b.insert("max_p99_ratio".into(), num(c.budget.max_p99_ratio));
                        b.insert("max_total_ratio".into(), num(c.budget.max_total_ratio));
                        b.insert("max_regressions".into(), num(c.budget.max_regressions as f64));
                        b.insert("max_guard_trips".into(), num(c.budget.max_guard_trips as f64));
                        b.insert(
                            "min_oracle_agreement".into(),
                            num(c.budget.min_oracle_agreement),
                        );
                        b.insert("enforced".into(), Value::Bool(c.budget.enforced));
                        o.insert("budget".into(), Value::Object(b));
                        o.insert("within_budget".into(), Value::Bool(c.within_budget));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "serve".into(),
            Value::Array(
                self.serve
                    .iter()
                    .map(|s| {
                        let mut o: BTreeMap<String, Value> = BTreeMap::new();
                        o.insert("scenario".into(), Value::String(s.scenario.into()));
                        o.insert("submitted".into(), num(s.submitted as f64));
                        o.insert("completed".into(), num(s.completed as f64));
                        o.insert("shed_rate".into(), num(s.shed_rate));
                        o.insert("p99_us".into(), num(s.p99_us));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "probes".into(),
            Value::Array(
                self.probes
                    .iter()
                    .map(|p| {
                        let mut o: BTreeMap<String, Value> = BTreeMap::new();
                        o.insert("scenario".into(), Value::String(p.scenario.into()));
                        o.insert("component".into(), Value::String(p.component.into()));
                        o.insert("unguarded_metric".into(), num(p.unguarded_metric));
                        o.insert("threshold".into(), num(p.threshold));
                        o.insert("defeated".into(), Value::Bool(p.defeated));
                        o.insert("guarded_metric".into(), num(p.guarded_metric));
                        o.insert("guarded_budget".into(), num(p.guarded_budget));
                        o.insert("guarded_ok".into(), Value::Bool(p.guarded_ok));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert("pass".into(), Value::Bool(self.pass()));
        Value::Object(root)
    }

    /// 64-bit fingerprint of the canonical JSON — two runs are "the
    /// same" iff their bits agree.
    pub fn bits(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.to_canonical_json().to_string().hash(&mut h);
        h.finish()
    }
}

/// Canonical sorted multiset of normalized output rows (the chaos
/// harness's comparison form).
fn multiset(db: &Database, query: &Query, rows: &[Row], layout: &[usize]) -> Vec<String> {
    let mut v: Vec<String> =
        rows.iter().map(|r| format!("{:?}", normalize_row(db, query, layout, r))).collect();
    v.sort_unstable();
    v
}

/// Executes up to 4 small (≤3-table) evaluation queries under `planner`
/// and multiset-compares the served rows against the brute-force
/// reference. Serial; a planner that abstains serves the expert plan.
fn oracle_agreement(
    db: &Database,
    env: &Env,
    eval: &[Query],
    planner: impl Fn(&Env, &Query) -> Option<PlanNode>,
) -> (u64, u64) {
    let mut checked = 0u64;
    let mut agreed = 0u64;
    for q in eval.iter().filter(|q| q.num_tables() <= 3).take(4) {
        let Some(plan) = planner(env, q).or_else(|| env.expert_plan(q)) else {
            continue;
        };
        checked += 1;
        let Ok(res) = execute(db, q, &plan) else {
            continue;
        };
        let identity: Vec<usize> = (0..q.num_tables()).collect();
        let truth =
            multiset(db, q, &naive_execute(db, q).expect("reference executes"), &identity);
        if multiset(db, q, &res.rows, &res.layout) == truth {
            agreed += 1;
        }
    }
    (checked, agreed)
}

/// Mean |ln q-error| of `est` against the true-cardinality oracle on the
/// full join of each query. Serial and deterministic.
fn qerr<E: CardEstimator>(db: &Database, est: &E, queries: &[Query]) -> f64 {
    let oracle = TrueCardinality::new();
    let sum: f64 = queries
        .iter()
        .map(|q| {
            let truth = oracle.estimate(db, q, q.full_mask()).max(1.0);
            let guess = est.estimate(db, q, q.full_mask()).max(1.0);
            (guess / truth).ln().abs()
        })
        .sum();
    sum / queries.len().max(1) as f64
}

/// Scores one `(scenario, policy)` evaluation into a [`CellReport`] and
/// emits the `matrix_cell` obs event.
#[allow(clippy::too_many_arguments)]
fn score_cell(
    spec: &ScenarioSpec,
    policy: Policy,
    report: &EvalReport,
    classical: &EvalReport,
    guard_trips: u64,
    oracle_checked: u64,
    oracle_agreed: u64,
) -> CellReport {
    let total_us: f64 = report.latencies.iter().sum();
    let classical_total: f64 = classical.latencies.iter().sum();
    let budget = budget_for(policy, spec.is_adversarial());
    let mut cell = CellReport {
        scenario: spec.name(),
        policy: policy.name(),
        adversarial: spec.is_adversarial(),
        p99_us: report.tail.p99,
        total_us,
        p99_ratio: report.tail.p99 / classical.tail.p99.max(1e-9),
        total_ratio: total_us / classical_total.max(1e-9),
        regressions: report.regressions,
        guard_trips,
        oracle_checked,
        oracle_agreed,
        budget,
        within_budget: false,
    };
    cell.within_budget = cell.p99_ratio <= budget.max_p99_ratio
        && cell.total_ratio <= budget.max_total_ratio
        && cell.regressions <= budget.max_regressions
        && cell.guard_trips <= budget.max_guard_trips
        && cell.oracle_agreement() >= budget.min_oracle_agreement;
    obs::emit_with(|| obs::Event::MatrixCell {
        scenario: cell.scenario,
        policy: cell.policy,
        p99_ratio: cell.p99_ratio,
        total_ratio: cell.total_ratio,
        regressions: cell.regressions as u64,
        guard_trips: cell.guard_trips,
        within_budget: cell.within_budget,
    });
    obs::counter_add(
        if cell.within_budget { "matrix.cells_within_budget" } else { "matrix.cells_over_budget" },
        1,
    );
    cell
}

/// Trains an MSCN on the benign stream and probes it on the scenario's
/// evaluation stream — the negative control shared by the
/// distribution-edge and correlation-trap scenarios. The unguarded
/// metric is a q-error blow-up ratio, with the denominator chosen by the
/// attack's shape: the distribution edge is a *query* attack (data
/// unchanged), so its control is the model's own training error; the
/// correlation trap is a *data* attack (queries held fixed), so its
/// control is the same model on the same queries against the unflipped
/// data — isolating exactly the joint-distribution change the classical
/// histograms cannot see. The guarded metric is the relative total
/// latency of planning with the same model behind
/// [`GuardedCardEstimator`]'s plausibility band (evaluated serially —
/// the guard is stateful).
fn mscn_probe(
    spec: &ScenarioSpec,
    base: &Database,
    applied: &Database,
    env: &Env,
    train: &[Query],
    eval: &[Query],
) -> ProbeReport {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ SALT_MSCN);
    let samples = collect_samples(base, train);
    let mut mscn = MscnEstimator::new(16, &mut rng);
    mscn.fit(base, &samples, 25, 0.005, &mut rng);
    let data_attack = matches!(spec.kind, ScenarioKind::CorrelationTrap);
    let control_err = if data_attack {
        qerr(base, &mscn, eval)
    } else {
        qerr(base, &mscn, train)
    };
    let eval_err = qerr(applied, &mscn, eval);
    let ratio = eval_err / control_err.max(1e-6);

    let guarded = GuardedCardEstimator::new(mscn, 8.0);
    let pairs: Vec<(f64, f64)> = eval
        .iter()
        .map(|q| {
            let expert = env.expert_latency(q).expect("expert always plans");
            let lat = match env.plan_with_estimator(q, HintSet::all(), &guarded, TAG_PROBE) {
                Some(p) => env.run(q, &p),
                None => expert,
            };
            (lat, expert)
        })
        .collect();
    let guarded_ratio = EvalReport::from_pairs(&pairs).relative_total;

    let threshold = 1.25;
    ProbeReport {
        scenario: spec.name(),
        component: "mscn_estimator",
        unguarded_metric: ratio,
        threshold,
        defeated: ratio >= threshold,
        guarded_metric: guarded_ratio,
        guarded_budget: 1.5,
        guarded_ok: guarded_ratio <= 1.5,
    }
}

/// The PGM segment-bomb negative control: build an ε-bounded PGM over
/// the bombed `title.id` stream and compare its segment count against a
/// uniform stream of the same length and span (what the compression
/// guarantee assumes). Guarded: a budget gate rejects the bloated index
/// and serves a B+Tree instead; the metric is wrong answers on point
/// and range probes (must be zero).
fn pgm_probe(spec: &ScenarioSpec, applied: &Database) -> ProbeReport {
    let keys = key_stream(applied, "title", "id");
    let entries: Vec<KeyValue> = keys.iter().map(|&k| (k, k)).collect();
    let pgm = PgmIndex::build(entries.clone(), PROBE_EPSILON);
    let bombed = pgm.num_segments();

    let (lo, hi, n) = (keys[0], *keys.last().expect("non-empty"), keys.len());
    let uniform: Vec<KeyValue> = (0..n)
        .map(|i| {
            let k = lo + ((hi - lo) as u128 * i as u128 / (n.max(2) - 1) as u128) as u64;
            (k, k)
        })
        .collect();
    debug_assert!(uniform.windows(2).all(|w| w[0].0 < w[1].0), "span ≫ count keeps keys distinct");
    let uniform_segs = PgmIndex::build(uniform, PROBE_EPSILON).num_segments();
    let ratio = bombed as f64 / uniform_segs.max(1) as f64;

    // The budget gate: a learned index whose segment count exceeds n/8
    // has lost its compression claim; fall back to the classical tree.
    let fallback = BPlusTree::bulk_load(&entries);
    let use_learned = bombed <= n / 8;
    let mut wrong = 0u64;
    for (i, &(k, v)) in entries.iter().enumerate().step_by(5) {
        let got = if use_learned { pgm.get(k) } else { fallback.get(k) };
        if got != Some(v) {
            wrong += 1;
        }
        // A key from inside the nearest void must miss.
        let missing = k + 1;
        if entries.binary_search_by_key(&missing, |e| e.0).is_err() {
            let got = if use_learned { pgm.get(missing) } else { fallback.get(missing) };
            if got.is_some() {
                wrong += 1;
            }
        }
        if i % 25 == 0 {
            let hi_k = entries[(i + 40).min(n - 1)].0;
            let want: Vec<KeyValue> =
                entries.iter().copied().filter(|&(key, _)| key >= k && key <= hi_k).collect();
            let got =
                if use_learned { pgm.range(k, hi_k) } else { fallback.range(k, hi_k) };
            if got != want {
                wrong += 1;
            }
        }
    }

    let threshold = 4.0;
    ProbeReport {
        scenario: spec.name(),
        component: "pgm_index",
        unguarded_metric: ratio,
        threshold,
        defeated: ratio >= threshold,
        guarded_metric: wrong as f64,
        guarded_budget: 0.0,
        guarded_ok: wrong == 0,
    }
}

/// Runs the full matrix. Serial over scenarios; parallel (order-
/// preserving, stateless) inside each policy evaluation.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    let _span = obs::span("matrix");
    let specs = ScenarioSpec::zoo(cfg.seed);
    let mut cells = Vec::with_capacity(specs.len() * Policy::all().len());
    let mut serve = Vec::with_capacity(specs.len());
    let mut probes = Vec::new();

    for (i, spec) in specs.iter().enumerate() {
        let db_seed =
            cfg.seed ^ SALT_DB ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(db_seed);
        let mut base = Database::analyze(
            joblite(&DatasetConfig { base_rows: cfg.base_rows, ..Default::default() }, &mut rng),
            &mut rng,
        );
        base.add_index("title", "year");

        let train = dedup_by_fingerprint(spec.train_workload(&base, cfg.train_n));
        let applied = spec.apply(&base);
        // The plan-regression trap *mines* the query space for bandit
        // mistakes: draw a pool several times the cell size, then (below)
        // keep the candidates where Bao is most confidently wrong.
        let pool_n = if matches!(spec.kind, ScenarioKind::PlanRegressionTrap) {
            cfg.eval_n.max(cfg.trap_keep) * 8
        } else {
            cfg.eval_n
        };
        let mut eval = dedup_by_fingerprint(spec.eval_workload(&applied, pool_n));

        // Learned policies train on the benign stream against the base
        // instance — exactly the "looked good in training" setup the
        // adversarial scenarios then attack.
        let train_env = Env::new(&base);
        let mut bao = Bao::new(bao_arms());
        let mut brng = StdRng::seed_from_u64(spec.seed ^ SALT_BAO);
        for q in &train {
            bao.step(&train_env, q, &mut brng);
        }
        let mut auto_steer = AutoSteer::new();
        let mut arng = StdRng::seed_from_u64(spec.seed ^ SALT_AUTOSTEER);
        for q in &train {
            auto_steer.step(&train_env, q, &mut arng);
        }

        let env = Env::new(&applied);

        // The plan-regression trap keeps the candidates where the
        // benign-trained bandit is most confidently wrong, so the trap's
        // bao cell regresses by construction if any candidate does.
        if matches!(spec.kind, ScenarioKind::PlanRegressionTrap) {
            let mut scored: Vec<(f64, Query)> = eval
                .iter()
                .map(|q| {
                    let lat = env.run(q, &bao.choose_greedy(&env, q).plan);
                    let expert = env.expert_latency(q).expect("expert always plans");
                    (lat / expert.max(1e-9), q.clone())
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.total_cmp(&a.0).then(a.1.fingerprint().cmp(&b.1.fingerprint()))
            });
            eval = scored.into_iter().take(cfg.trap_keep.max(1)).map(|(_, q)| q).collect();
        }

        // --- the four policy cells ---
        let classical = evaluate(&env, &eval, |e, q| e.expert_plan(q));
        let (cchk, cagr) = oracle_agreement(&applied, &env, &eval, |e, q| e.expert_plan(q));
        cells.push(score_cell(spec, Policy::Classical, &classical, &classical, 0, cchk, cagr));

        let bao_rep = evaluate(&env, &eval, |e, q| Some(bao.choose_greedy(e, q).plan));
        let (bchk, bagr) =
            oracle_agreement(&applied, &env, &eval, |e, q| Some(bao.choose_greedy(e, q).plan));
        cells.push(score_cell(spec, Policy::Bao, &bao_rep, &classical, 0, bchk, bagr));

        let auto_planner = |e: &Env, q: &Query| {
            let d = discover_hint_sets(e, q, auto_steer.cost_cap);
            Some(auto_steer.bandit.choose_greedy_among(e, q, &d.arms).plan)
        };
        let auto_rep = evaluate(&env, &eval, auto_planner);
        let (achk, aagr) = oracle_agreement(&applied, &env, &eval, auto_planner);
        cells.push(score_cell(spec, Policy::AutoSteer, &auto_rep, &classical, 0, achk, aagr));

        let guarded =
            GuardedSteering::new(|e: &Env, q: &Query| bao.arms[bao.choose_greedy(e, q).arm]);
        let guard_rep = guarded.evaluate(&env, &eval);
        let trips = guarded.breaker().trips();
        let (gchk, gagr) = oracle_agreement(&applied, &env, &eval, |e, q| {
            e.plan_with_hint(q, bao.arms[bao.choose_greedy(e, q).arm])
        });
        cells.push(score_cell(spec, Policy::GuardedBao, &guard_rep, &classical, trips, gchk, gagr));

        let bao_cell = &cells[cells.len() - 3];
        let guarded_cell = &cells[cells.len() - 1];

        // --- adversarial negative controls ---
        match spec.kind {
            ScenarioKind::DistributionEdge | ScenarioKind::CorrelationTrap => {
                probes.push(mscn_probe(spec, &base, &applied, &env, &train, &eval));
            }
            ScenarioKind::PgmSegmentBomb => probes.push(pgm_probe(spec, &applied)),
            ScenarioKind::PlanRegressionTrap => {
                let budget = guarded_cell.budget.max_total_ratio;
                probes.push(ProbeReport {
                    scenario: spec.name(),
                    component: "bao_steering",
                    unguarded_metric: bao_cell.regressions as f64,
                    threshold: 1.0,
                    defeated: bao_cell.regressions >= 1,
                    guarded_metric: guarded_cell.total_ratio,
                    guarded_budget: budget,
                    guarded_ok: guarded_cell.total_ratio <= budget,
                });
            }
            _ => {}
        }

        // --- the real serving path ---
        let tenants = 2usize.min(eval.len().max(1));
        let mut pools: Vec<Vec<Vec<Query>>> = vec![Vec::new(); tenants];
        for (j, q) in eval.iter().enumerate() {
            pools[j % tenants].push(vec![q.clone()]);
        }
        let mut gen = LoadGen::new(
            LoadSpec {
                clients: 48,
                classes: 3,
                mean_think_ns: 1_000_000,
                total_requests: cfg.serve_requests,
            },
            TemplateMix { pools },
            spec.seed ^ SALT_SERVE,
        );
        let sim = SimConfig {
            workers: 4,
            admission: AdmissionConfig {
                capacity: 64,
                soft_limit: 48,
                classes: 3,
                seed: spec.seed ^ SALT_SERVE,
            },
        };
        let sr = run_closed_loop(&env, &mut gen, &sim);
        serve.push(ServeCell {
            scenario: spec.name(),
            submitted: sr.submitted(),
            completed: sr.completed(),
            shed_rate: sr.shed_rate(),
            p99_us: sr.p99_us().unwrap_or(0.0),
        });
    }

    MatrixReport {
        config: *cfg,
        scenarios: specs.len(),
        policies: Policy::all().len(),
        cells,
        serve,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MatrixConfig {
        MatrixConfig {
            base_rows: 120,
            train_n: 10,
            eval_n: 8,
            trap_keep: 5,
            serve_requests: 48,
            seed: 7,
        }
    }

    #[test]
    fn matrix_covers_every_cell_with_a_budget() {
        let report = run_matrix(&tiny());
        assert_eq!(report.scenarios, 14);
        assert_eq!(report.policies, 4);
        assert_eq!(report.cells.len(), 14 * 4);
        assert_eq!(report.serve.len(), 14);
        assert_eq!(report.probes.len(), 4);
        for c in &report.cells {
            assert!(c.budget.max_p99_ratio >= 1.0, "{}/{}", c.scenario, c.policy);
        }
        // Classical is its own baseline: exact parity everywhere.
        for c in report.cells.iter().filter(|c| c.policy == "classical") {
            assert!((c.p99_ratio - 1.0).abs() < 1e-9);
            assert!(c.within_budget, "classical over budget on {}", c.scenario);
        }
    }

    #[test]
    fn canonical_json_is_deterministic() {
        let cfg = tiny();
        let a = run_matrix(&cfg);
        let b = run_matrix(&cfg);
        assert_eq!(a.to_canonical_json().to_string(), b.to_canonical_json().to_string());
        assert_eq!(a.bits(), b.bits());
    }
}
