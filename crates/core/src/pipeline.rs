//! End-to-end convenience pipelines used by the examples and the
//! integration tests: build a database, generate a workload, train a
//! component, evaluate it — in one call each.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml4db_datagen::{SchemaGraph, WorkloadConfig, WorkloadGenerator};
use ml4db_optimizer::{Bao, Env};
use ml4db_plan::{bao_arms, Query};
use ml4db_storage::datasets::{joblite, DatasetConfig};
use ml4db_storage::Database;

/// Builds the standard demo database (joblite with an index on
/// `title.year`), deterministically from a seed.
pub fn demo_database(base_rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::analyze(
        joblite(&DatasetConfig { base_rows, ..Default::default() }, &mut rng),
        &mut rng,
    );
    db.add_index("title", "year");
    db
}

/// Generates a standard demo workload over the demo database.
pub fn demo_workload(db: &Database, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    WorkloadGenerator::new(
        SchemaGraph::joblite(),
        WorkloadConfig { min_tables: 2, max_tables: 3, ..Default::default() },
    )
    .generate_many(db, n, &mut rng)
}

/// Trains a Bao bandit on a workload stream; returns the trained bandit
/// and the per-query latencies observed during training.
pub fn train_bao(db: &Database, queries: &[Query], seed: u64) -> (Bao, Vec<f64>) {
    let env = Env::new(db);
    let mut bao = Bao::new(bao_arms());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(queries.len());
    for q in queries {
        let (_, latency) = bao.step(&env, q, &mut rng);
        latencies.push(latency);
    }
    (bao, latencies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_pipeline_is_deterministic() {
        let a = demo_database(80, 7);
        let b = demo_database(80, 7);
        assert_eq!(a.table_stats("title").unwrap().rows, b.table_stats("title").unwrap().rows);
        let qa = demo_workload(&a, 5, 3);
        let qb = demo_workload(&b, 5, 3);
        assert_eq!(qa, qb);
    }

    #[test]
    fn train_bao_end_to_end() {
        let db = demo_database(80, 1);
        let queries = demo_workload(&db, 10, 2);
        let (bao, latencies) = train_bao(&db, &queries, 3);
        assert_eq!(latencies.len(), 10);
        assert_eq!(bao.window_len(), 10);
    }
}
