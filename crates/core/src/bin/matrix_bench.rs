//! Standing evaluation matrix benchmark: every optimizer policy × every
//! workload-zoo scenario, scored against per-cell regression budgets.
//!
//! Writes `BENCH_matrix.json` (canonical JSON — byte-identical across
//! `ML4DB_THREADS`, so CI can diff artifacts from both threading modes)
//! and prints the same document to stdout. Wall-clock drive rate goes to
//! stderr only, keeping the artifact reproducible.
//!
//! Knobs (env): `ML4DB_MATRIX_ROWS`, `ML4DB_MATRIX_TRAIN`,
//! `ML4DB_MATRIX_EVAL`, `ML4DB_MATRIX_REQUESTS`, `ML4DB_MATRIX_SEED`.

use std::time::Instant;

use ml4db_core::matrix::{run_matrix, MatrixConfig};
use ml4db_obs as obs;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    obs::set_mode(obs::Mode::Noop);
    let cfg = MatrixConfig {
        base_rows: env_u64("ML4DB_MATRIX_ROWS", 200) as usize,
        train_n: env_u64("ML4DB_MATRIX_TRAIN", 20) as usize,
        eval_n: env_u64("ML4DB_MATRIX_EVAL", 14) as usize,
        trap_keep: 8,
        serve_requests: env_u64("ML4DB_MATRIX_REQUESTS", 192),
        seed: env_u64("ML4DB_MATRIX_SEED", 42),
    };

    let start = Instant::now();
    let report = run_matrix(&cfg);
    let elapsed = start.elapsed().as_secs_f64();

    let json = report.to_canonical_json();
    std::fs::write("BENCH_matrix.json", format!("{json}\n")).expect("write BENCH_matrix.json");
    println!("{json}");

    let enforced_over: Vec<String> = report
        .cells
        .iter()
        .filter(|c| c.budget.enforced && !c.within_budget)
        .map(|c| format!("{}/{}", c.scenario, c.policy))
        .collect();
    let canary_over = report
        .cells
        .iter()
        .filter(|c| !c.budget.enforced && !c.within_budget)
        .count();
    eprintln!(
        "matrix: {} scenarios x {} policies = {} cells in {elapsed:.1}s (bits {:016x})",
        report.scenarios,
        report.policies,
        report.cells.len(),
        report.bits()
    );
    for p in &report.probes {
        eprintln!(
            "  probe {} vs {}: unguarded {:.2} (>= {:.2}: {}), guarded {:.2} (<= {:.2}: {})",
            p.scenario,
            p.component,
            p.unguarded_metric,
            p.threshold,
            if p.defeated { "defeated" } else { "SURVIVED" },
            p.guarded_metric,
            p.guarded_budget,
            if p.guarded_ok { "ok" } else { "OVER" },
        );
    }
    eprintln!(
        "  enforced over budget: {:?}; adversarial canaries over: {canary_over}; pass={}",
        enforced_over,
        report.pass()
    );
    if !report.pass() {
        std::process::exit(1);
    }
}
