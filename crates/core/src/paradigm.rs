//! The tutorial's conceptual contribution as an API: the two paradigms and
//! the guardrail pattern that makes "ML-enhanced" robust.
//!
//! A **replacement** component answers alone; an **ML-enhanced** component
//! wraps a classical one and only overrides it inside a guardrail — when
//! the learned answer disagrees too wildly or the model is undertrained,
//! the classical answer wins. [`GuardedEstimator`] instantiates the
//! pattern for cardinality estimation; the optimizer crate's LEON/Bao
//! follow the same shape for planning.

use ml4db_plan::{CardEstimator, ClassicEstimator, Query};
use ml4db_storage::Database;

/// Which paradigm a component follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParadigmKind {
    /// The learned model substitutes the classical component.
    Replacement,
    /// The learned model aids the classical component under a guardrail.
    MlEnhanced,
}

/// A cardinality estimator that guards a learned model with the classical
/// estimator: the learned estimate is used only while it stays within a
/// plausibility band around the classical one; otherwise the classical
/// estimate wins and the event is counted.
pub struct GuardedEstimator<M: CardEstimator> {
    /// The learned model.
    pub learned: M,
    /// Maximum allowed ratio between learned and classical estimates
    /// before the guardrail fires.
    pub max_ratio: f64,
    /// Number of times the guardrail fell back (interior mutability so the
    /// estimator keeps the trait's `&self` signature).
    fallbacks: std::cell::Cell<u64>,
    /// Number of estimates served overall.
    calls: std::cell::Cell<u64>,
}

impl<M: CardEstimator> GuardedEstimator<M> {
    /// Wraps a learned estimator with a guardrail of the given ratio.
    pub fn new(learned: M, max_ratio: f64) -> Self {
        assert!(max_ratio > 1.0, "guardrail ratio must exceed 1");
        Self {
            learned,
            max_ratio,
            fallbacks: std::cell::Cell::new(0),
            calls: std::cell::Cell::new(0),
        }
    }

    /// How often the guardrail fired, as a fraction of calls.
    pub fn fallback_rate(&self) -> f64 {
        let calls = self.calls.get();
        if calls == 0 {
            0.0
        } else {
            self.fallbacks.get() as f64 / calls as f64
        }
    }
}

impl<M: CardEstimator> CardEstimator for GuardedEstimator<M> {
    fn estimate(&self, db: &Database, query: &Query, mask: u64) -> f64 {
        self.calls.set(self.calls.get() + 1);
        let classical = ClassicEstimator.estimate(db, query, mask);
        let learned = self.learned.estimate(db, query, mask);
        let ratio = (learned / classical.max(1e-9)).max(classical / learned.max(1e-9));
        if ratio > self.max_ratio {
            self.fallbacks.set(self.fallbacks.get() + 1);
            classical
        } else {
            learned
        }
    }
}

/// A robustness comparison of a component on seen vs unseen workloads —
/// the measurement behind the tutorial's paradigm argument.
#[derive(Clone, Copy, Debug)]
pub struct RobustnessReport {
    /// Relative performance on the training distribution (1.0 = expert
    /// parity; lower is better).
    pub seen: f64,
    /// Relative performance on unseen templates.
    pub unseen: f64,
}

impl RobustnessReport {
    /// The degradation factor when leaving the training distribution.
    pub fn degradation(&self) -> f64 {
        self.unseen / self.seen.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deliberately broken "learned" estimator.
    struct WildEstimator;
    impl CardEstimator for WildEstimator {
        fn estimate(&self, _: &Database, _: &Query, mask: u64) -> f64 {
            if mask % 2 == 0 {
                1e12
            } else {
                50.0
            }
        }
    }

    fn db() -> Database {
        let mut rng = StdRng::seed_from_u64(1);
        Database::analyze(
            joblite(&DatasetConfig { base_rows: 100, ..Default::default() }, &mut rng),
            &mut rng,
        )
    }

    #[test]
    fn guardrail_catches_wild_estimates() {
        let db = db();
        let q = ml4db_plan::Query::new(&["title", "cast_info"]).join(0, "id", 1, "movie_id");
        let guarded = GuardedEstimator::new(WildEstimator, 8.0);
        // mask 0b10 (even) → wild 1e12 → fallback to classical.
        let classical = ClassicEstimator.estimate(&db, &q, 0b10);
        assert_eq!(guarded.estimate(&db, &q, 0b10), classical);
        assert!(guarded.fallback_rate() > 0.0);
    }

    #[test]
    fn guardrail_passes_plausible_estimates() {
        let db = db();
        let q = ml4db_plan::Query::new(&["title"]);
        // Classical estimate for a full scan is exact (100 rows); the wild
        // estimator says 50 for odd masks — within ratio 8.
        let guarded = GuardedEstimator::new(WildEstimator, 8.0);
        assert_eq!(guarded.estimate(&db, &q, 0b1), 50.0);
        assert_eq!(guarded.fallback_rate(), 0.0);
    }

    #[test]
    fn degradation_factor() {
        let r = RobustnessReport { seen: 1.1, unseen: 3.3 };
        assert!((r.degradation() - 3.0).abs() < 1e-9);
    }
}
