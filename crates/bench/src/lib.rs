//! Support library for the experiment benches.
//!
//! Every bench target regenerates one table or figure (see EXPERIMENTS.md
//! for the index): it prints the experiment's rows/series to stdout, then
//! registers a small Criterion group timing the core operation. Criterion
//! settings are kept light ([`quick_criterion`]) because the scientific
//! output is the printed series, not nanosecond timings.

use criterion::Criterion;

/// A Criterion instance with a small sample budget suitable for
/// experiment-style benches.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

/// Prints a section header for an experiment's regenerated output.
pub fn banner(id: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {claim}");
    println!("================================================================");
}

/// Formats a ratio as a "×" factor string.
pub fn factor(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b.max(1e-12))
}
