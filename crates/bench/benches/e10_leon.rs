//! **E10** — LEON \[4\]: ML-aided optimization with a mixed (expert +
//! pairwise-ranking) cost estimate and a fallback to the expert when the
//! model is untrained — the "never catastrophic" safety property.
//!
//! Expected shape: untrained LEON = expert exactly (fallback); trained
//! LEON ≤ expert in total with zero catastrophic (≥3x) regressions.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::optimizer::{evaluate, Env, Leon};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E10", "LEON: mixed ranking + fallback — aided, never catastrophic");
    let db = demo_database(150, 100);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(101);
    let train = demo_workload(&db, 15, 102);
    let test = demo_workload(&db, 12, 103);

    // Untrained: must fall back to pure expert cost.
    let untrained = Leon::new(&mut rng);
    let fell_back = test
        .iter()
        .filter(|q| matches!(untrained.plan(&env, q), Some((_, false))))
        .count();
    println!("untrained LEON fallback rate: {fell_back}/{}", test.len());

    // Train from executed plan pairs.
    let mut leon = Leon::new(&mut rng);
    let planner = Planner::default();
    let mut executions = Vec::new();
    for q in &train {
        for p in planner.random_plans(&db, q, &ClassicEstimator, 3, &mut rng) {
            let lat = env.run(q, &p);
            executions.push((q.clone(), p, lat));
        }
    }
    leon.train_from_executions(&env, &executions, 8, &mut rng);
    println!("trained on {} executions, model ready: {}", executions.len(), leon.model_ready());

    let report = evaluate(&env, &test, |env, q| leon.plan(env, q).map(|(p, _)| p));
    let catastrophic = test
        .iter()
        .filter(|q| {
            let (plan, _) = leon.plan(&env, q).expect("plans");
            let expert = env.expert_plan(q).expect("plans");
            env.run(q, &plan) > env.run(q, &expert) * 3.0
        })
        .count();
    println!("trained LEON relative total vs expert: {:.2}", report.relative_total);
    println!(
        "regressions ≥2x: {}/{}, catastrophic ≥3x: {catastrophic}/{}",
        report.regressions,
        test.len(),
        test.len()
    );
    println!(
        "shape check (fallback when untrained; trained never catastrophic): {}",
        if fell_back == test.len() && catastrophic == 0 && report.relative_total < 1.5 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let db = demo_database(120, 104);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(105);
    let leon = Leon::new(&mut rng);
    let q = &demo_workload(&db, 1, 106)[0];
    c.bench_function("e10/leon_plan_untrained_fallback", |b| {
        b.iter(|| leon.plan(&env, black_box(q)).map(|(p, _)| p.size()))
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
