//! **E15** — handling data & workload shifts (open problem 2): an
//! estimator trained on one regime degrades when the data changes; the
//! KS-based detector fires; Warper-style fast adaptation \[20\] and DDUp's
//! detect–distill–update \[19\] both restore accuracy, with DDUp retaining
//! old-regime knowledge.
//!
//! Expected shape: q-error spikes at the shift; detection delay is small;
//! both adapters recover on the new regime; DDUp stays better on the old
//! regime than Warper (distillation preserves it).

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::card::{
    collect_samples, CardSample, DdupAdapter, DriftDetector, MscnEstimator, WarperAdapter,
};
use ml4db_core::prelude::*;
use ml4db_core::storage::datasets::{joblite, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(base: i64, n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            Query::new(&["title"])
                .filter(0, "year", CmpOp::Ge, (base + (i as i64 * 7) % 25) as f64)
                .filter(0, "votes", CmpOp::Ge, (1000 + (i * 577) % 6000) as f64)
        })
        .collect()
}

fn median_qerr(db: &Database, est: &dyn CardEstimator, queries: &[Query]) -> f64 {
    let oracle = TrueCardinality::new();
    let errs: Vec<f64> = queries
        .iter()
        .map(|q| {
            ml4db_core::nn::metrics::q_error(est.estimate(db, q, 1), oracle.estimate(db, q, 1))
        })
        .collect();
    ml4db_core::nn::metrics::q_error_summary(&errs).expect("non-empty").median
}

fn regenerate() {
    banner("E15", "drift: degradation, detection, Warper and DDUp recovery");
    let mut rng = StdRng::seed_from_u64(150);
    let old_db = Database::analyze(
        joblite(&DatasetConfig { base_rows: 700, skew: 0.2, correlation: 0.9 }, &mut rng),
        &mut rng,
    );
    let new_db = Database::analyze(
        joblite(&DatasetConfig { base_rows: 700, skew: 1.5, correlation: 0.05 }, &mut rng),
        &mut rng,
    );
    let train = workload(1985, 50);
    let samples = collect_samples(&old_db, &train);
    let mut model = MscnEstimator::new(32, &mut rng);
    model.fit(&old_db, &samples, 60, 0.005, &mut rng);

    let old_eval = workload(1990, 15);
    let new_eval = workload(1990, 15);
    println!("median q-error of the old-regime model:");
    println!("  on old data: {:.2}", median_qerr(&old_db, &model, &old_eval));
    let degraded = median_qerr(&new_db, &model, &new_eval);
    println!("  on new data: {degraded:.2}  ← degradation");

    // Detection delay on the error stream.
    let oracle = TrueCardinality::new();
    let mut detector = DriftDetector::new(12, 0.45);
    let stream = workload(1985, 80);
    let mut delay = None;
    for (i, q) in stream.iter().enumerate() {
        let db = if i < 40 { &old_db } else { &new_db };
        let err =
            ml4db_core::nn::metrics::q_error(model.estimate(db, q, 1), oracle.estimate(db, q, 1))
                .ln();
        if detector.observe(err) && delay.is_none() {
            delay = Some(i as i64 - 40);
        }
    }
    println!(
        "detection delay after onset (query 40): {}",
        delay.map_or("not detected".to_string(), |d| format!("{d} queries"))
    );

    // Warper: fast retrain on a recent window.
    let mut warper_model = MscnEstimator::new(32, &mut rng);
    warper_model.fit(&old_db, &samples, 60, 0.005, &mut rng);
    let mut warper = WarperAdapter::new(60);
    for s in collect_samples(&new_db, &workload(1985, 40)) {
        warper.record(s);
    }
    warper.adapt(&new_db, &mut warper_model, 40, &mut rng);

    // DDUp: distill old knowledge + new samples into a fresh model.
    let old_queries: Vec<(Query, u64)> = train.iter().map(|q| (q.clone(), 1u64)).collect();
    let new_samples: Vec<CardSample> = collect_samples(&new_db, &workload(1985, 40));
    let ddup_model =
        DdupAdapter::update(&new_db, &model, &old_queries, &new_samples, 40, &mut rng);

    println!("\nmedian q-error after adaptation:");
    println!(
        "{:<10} {:>10} {:>10}",
        "adapter", "new data", "old data"
    );
    let w_new = median_qerr(&new_db, &warper_model, &new_eval);
    let w_old = median_qerr(&old_db, &warper_model, &old_eval);
    let d_new = median_qerr(&new_db, &ddup_model, &new_eval);
    let d_old = median_qerr(&old_db, &ddup_model, &old_eval);
    println!("{:<10} {:>10.2} {:>10.2}", "warper", w_new, w_old);
    println!("{:<10} {:>10.2} {:>10.2}", "ddup", d_new, d_old);
    println!(
        "shape check (both recover on new data; detection fires): {}",
        if w_new < degraded && d_new < degraded && delay.is_some() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let errors: Vec<f64> = (0..200).map(|i| if i < 100 { 0.5 } else { 3.0 }).collect();
    c.bench_function("e15/detector_stream_200", |b| {
        b.iter(|| {
            let mut d = DriftDetector::new(20, 0.5);
            errors.iter().filter(|&&e| d.observe(black_box(e))).count()
        })
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
