//! **Table 1**: summary of query-plan representation methods in ML4DB
//! studies — regenerated from the machine-readable registry, with every
//! row's tree model resolved to the workspace implementation and
//! instantiated as a proof of coverage.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("T1", "query plan representation methods (Table 1)");
    print!("{}", render_table1());
    // Prove every row is implemented: instantiate its encoder.
    let mut rng = StdRng::seed_from_u64(1);
    let mut covered = std::collections::BTreeSet::new();
    for row in table1() {
        let kind = TreeModelKind::all()
            .into_iter()
            .find(|k| k.label() == row.implementation)
            .expect("registry verified by tests");
        let enc = PlanEncoder::new(kind, 25, 16, &mut rng);
        covered.insert(format!("{} (out_dim {})", kind.label(), enc.out_dim()));
    }
    println!("\ninstantiated implementations:");
    for c in covered {
        println!("  {c}");
    }
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let encoders: Vec<PlanEncoder> = TreeModelKind::all()
        .into_iter()
        .map(|k| PlanEncoder::new(k, 8, 16, &mut rng))
        .collect();
    let tree = ml4db_core::nn::Tree::branch(
        vec![1.0; 8],
        Some(ml4db_core::nn::Tree::leaf(vec![0.5; 8])),
        Some(ml4db_core::nn::Tree::leaf(vec![0.2; 8])),
    );
    for enc in &encoders {
        c.bench_function(&format!("table1/encode_{}", enc.kind().label()), |b| {
            b.iter(|| enc.encode(black_box(&tree)))
        });
    }
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
