//! **E4** — ML-enhanced insertion: the RLR-tree \[9\] learns ChooseSubtree /
//! SplitNode with RL, the RW-tree \[7\] optimizes them for a historical
//! workload; both answer queries through the unchanged R-tree machinery.
//!
//! Expected shape: on a skewed workload the workload-aware RW-tree cuts
//! leaf accesses below Guttman; the RL policy improves or — thanks to its
//! validation guardrail — falls back to Guttman, never regressing.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, factor, quick_criterion};
use ml4db_core::spatial::data::{
    generate_points, generate_range_queries, workload_leaf_accesses, SpatialDistribution,
};
use ml4db_core::spatial::rlr::train_rlr;
use ml4db_core::spatial::rw::build_rw_tree;
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E4", "ML-enhanced insertion: RLR-tree / RW-tree vs Guttman");
    let mut rng = StdRng::seed_from_u64(4);
    let points =
        generate_points(SpatialDistribution::Clustered { clusters: 6 }, 1500, &mut rng);
    let history = generate_range_queries(80, 0.06, true, &mut rng);
    let future = generate_range_queries(80, 0.06, true, &mut rng);

    let mut guttman = GuttmanPolicy;
    let mut base = RTree::new();
    for e in &points {
        base.insert(*e, &mut guttman);
    }
    let base_cost = workload_leaf_accesses(&base, &future);

    let (mut policy, episode_costs) = train_rlr(&points, &history, 15, 4);
    policy.begin_episode();
    let mut rlr = RTree::new();
    for e in &points {
        rlr.insert(*e, &mut policy);
    }
    let rlr_cost = workload_leaf_accesses(&rlr, &future);
    let rw = build_rw_tree(&points, &history);
    let rw_cost = workload_leaf_accesses(&rw, &future);

    println!("avg leaf accesses per future query (hotspot workload):");
    println!("  guttman: {base_cost:.2}");
    println!("  rlr:     {rlr_cost:.2}  ({} vs guttman)", factor(rlr_cost, base_cost));
    println!("  rw:      {rw_cost:.2}  ({} vs guttman)", factor(rw_cost, base_cost));
    println!(
        "rlr training episodes (cost trace): {:?}",
        episode_costs.iter().map(|c| (c * 10.0).round() / 10.0).collect::<Vec<_>>()
    );
    println!(
        "shape check (ML-enhanced never regresses, RW improves): {}",
        if rlr_cost <= base_cost * 1.02 && rw_cost <= base_cost * 1.02 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let points =
        generate_points(SpatialDistribution::Clustered { clusters: 6 }, 800, &mut rng);
    let workload = generate_range_queries(40, 0.06, true, &mut rng);
    let mut g = c.benchmark_group("e4/build_800pts");
    g.bench_function("guttman_insert", |b| {
        b.iter(|| {
            let mut p = GuttmanPolicy;
            let mut t = RTree::new();
            for e in &points {
                t.insert(black_box(*e), &mut p);
            }
            t.len()
        })
    });
    g.bench_function("rw_insert", |b| {
        b.iter(|| build_rw_tree(black_box(&points), &workload).len())
    });
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
