//! **Figure 1**: publication trend in machine learning for index & query
//! optimizer, SIGMOD/VLDB 2018–2023, replacement vs ML-enhanced.
//!
//! Expected shape (per the tutorial): replacement counts concentrate
//! early; ML-enhanced counts rise sharply from 2021 — "a noticeable shift
//! from the replacement paradigm to the ML-enhanced paradigm".

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::survey::{
    corpus, figure1_from, figure1_series, late_share, render_figure1, Paradigm,
};

fn regenerate() {
    banner("F1", "publication trend, replacement vs ML-enhanced (Figure 1)");
    let series = figure1_series();
    print!("{}", render_figure1(&series));
    let enh = late_share(&series, Paradigm::MlEnhanced);
    let repl = late_share(&series, Paradigm::Replacement);
    println!("\nshare of publications in 2021-2023:");
    println!("  replacement: {:.0}%", repl * 100.0);
    println!("  ml-enhanced: {:.0}%", enh * 100.0);
    println!(
        "shape check (shift to ML-enhanced): {}",
        if enh > repl { "HOLDS" } else { "VIOLATED" }
    );
}

fn bench(c: &mut Criterion) {
    let publications = corpus();
    c.bench_function("fig1/aggregate_series", |b| {
        b.iter(|| figure1_from(black_box(&publications)))
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
