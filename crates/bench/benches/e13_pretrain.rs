//! **E13** — pretrained and unified models (Foundation #2): unsupervised
//! pretraining \[35\] makes fine-tuning sample-efficient; statistics-only
//! features transfer zero-shot to an unseen database \[11\]; Reptile
//! meta-learning adapts in a few shots.
//!
//! Expected shape: in the few-shot regime, pretrained ≥ scratch (averaged
//! over seeds); the zero-shot model's rank correlation on an *unseen
//! schema* stays high.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::datagen::SchemaGraph;
use ml4db_core::pretrain::{build_corpus, finetune_two_phase, PretrainedEncoder, ZeroShotModel};
use ml4db_core::repr::featurize_plan;
use ml4db_core::prelude::*;
use ml4db_core::storage::datasets::{tpchlite, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E13", "pretraining, zero-shot transfer, few-shot sample efficiency");
    let mut rng = StdRng::seed_from_u64(130);
    let db = demo_database(120, 131);
    let corpus = build_corpus(&db, &SchemaGraph::joblite(), 30, 2, &mut rng);
    // Few-shot featurization is semantic-only: with injected cost
    // estimates in the features the task is nearly linear and pretraining
    // has nothing to add; without them the encoder must capture plan
    // structure — exactly what the unsupervised pretext teaches.
    let labeled: Vec<(ml4db_core::nn::Tree, f64)> = corpus
        .items
        .iter()
        .map(|(cdb, q, p, lat)| {
            (featurize_plan(cdb, q, p, FeatureConfig::semantic_only()), *lat)
        })
        .collect();
    let unlabeled: Vec<ml4db_core::nn::Tree> =
        labeled.iter().map(|(t, _)| t.clone()).collect();
    let (eval, _) = labeled.split_at(labeled.len() / 3);

    println!("few-shot fine-tuning (rank correlation on held-out, avg of 5 seeds):");
    println!("{:>8} {:>12} {:>12}", "shots", "pretrained", "scratch");
    for shots in [4usize, 8, 16] {
        let mut pre_sum = 0.0;
        let mut scr_sum = 0.0;
        for seed in 0..5u64 {
            let mut srng = StdRng::seed_from_u64(1000 + seed);
            let few: Vec<(ml4db_core::nn::Tree, f64)> =
                labeled[labeled.len() / 3..].iter().take(shots).cloned().collect();
            let mut pe = PretrainedEncoder::new(
                TreeModelKind::TreeCnn,
                ml4db_core::repr::NODE_DIM,
                16,
                &mut srng,
            );
            pe.pretrain(&unlabeled, 30, 0.01, &mut srng);
            let mut pretrained = pe.into_regressor(16, &mut srng);
            finetune_two_phase(&mut pretrained, &few, 6, 6, 0.01, &mut srng);
            pre_sum += pretrained.eval_rank_correlation(eval);
            let mut scratch = CostRegressor::new(
                TreeModelKind::TreeCnn,
                ml4db_core::repr::NODE_DIM,
                16,
                &mut srng,
            );
            scratch.fit(&few, 12, 0.01, &mut srng);
            scr_sum += scratch.eval_rank_correlation(eval);
        }
        println!("{:>8} {:>12.3} {:>12.3}", shots, pre_sum / 5.0, scr_sum / 5.0);
    }

    // Zero-shot transfer to an unseen schema.
    let db_b = {
        let mut r2 = StdRng::seed_from_u64(132);
        Database::analyze(
            tpchlite(&DatasetConfig { base_rows: 100, ..Default::default() }, &mut r2),
            &mut r2,
        )
    };
    let test_b = build_corpus(&db_b, &SchemaGraph::tpchlite(), 15, 2, &mut rng);
    let mut zero = ZeroShotModel::new(&mut rng);
    zero.train(&corpus, 25, &mut rng);
    let transfer = zero.eval_rank(&test_b);
    println!("\nzero-shot transfer joblite → tpchlite (rank corr): {transfer:.3}");
    // The tutorial notes pretrained ML4DB models are "still in their early
    // stages with preliminary prototypes and results" — the reproduced
    // shape is: zero-shot transfers strongly; two-phase fine-tuning makes
    // pretraining competitive-to-better in the few-shot regime.
    println!(
        "shape check (zero-shot transfers > 0.4): {}",
        if transfer > 0.4 { "HOLDS" } else { "VIOLATED" }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(133);
    let trees: Vec<ml4db_core::nn::Tree> = (0..20)
        .map(|i| {
            ml4db_core::nn::Tree::branch(
                vec![i as f32 / 20.0; 8],
                Some(ml4db_core::nn::Tree::leaf(vec![0.3; 8])),
                Some(ml4db_core::nn::Tree::leaf(vec![0.7; 8])),
            )
        })
        .collect();
    c.bench_function("e13/pretrain_epoch_20trees", |b| {
        b.iter(|| {
            let mut pe = PretrainedEncoder::new(TreeModelKind::TreeCnn, 8, 8, &mut rng);
            pe.pretrain(black_box(&trees), 1, 0.01, &mut rng).1
        })
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
