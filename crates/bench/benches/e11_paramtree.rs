//! **E11** — ParamTree \[50\]: tune the formula cost model's R-params from
//! observed executions instead of replacing the model. Our engine's true
//! latency *is* linear in the work counters, so the fit should recover the
//! ground-truth weights, and the tuned formula should predict plan costs
//! far better than the mis-calibrated defaults.
//!
//! Expected shape: recovered weights ≈ TRUE_WEIGHTS; prediction error of
//! the tuned formula ≪ default formula; explainable (7 named parameters,
//! no black box).

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, factor, quick_criterion};
use ml4db_core::optimizer::{collect_observations_diverse, Env, ParamTree};
use ml4db_core::prelude::*;
use ml4db_core::storage::TRUE_WEIGHTS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E11", "ParamTree: tuned R-params vs PostgreSQL-style defaults");
    let db = demo_database(150, 110);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(111);
    let train = demo_workload(&db, 30, 112);
    let obs = collect_observations_diverse(&env, &train, 2, &mut rng);
    let pt = ParamTree::fit(&obs);

    let default = ml4db_core::storage::CostWeights::postgres_defaults();
    println!("{:<14} {:>10} {:>10} {:>10}", "R-param", "default", "tuned", "true");
    let rows: [(&str, f64, f64, f64); 7] = [
        ("seq_page", default.seq_page, pt.weights.seq_page, TRUE_WEIGHTS.seq_page),
        ("random_page", default.random_page, pt.weights.random_page, TRUE_WEIGHTS.random_page),
        ("cpu_tuple", default.cpu_tuple, pt.weights.cpu_tuple, TRUE_WEIGHTS.cpu_tuple),
        ("cpu_compare", default.cpu_compare, pt.weights.cpu_compare, TRUE_WEIGHTS.cpu_compare),
        ("hash_build", default.hash_build, pt.weights.hash_build, TRUE_WEIGHTS.hash_build),
        ("hash_probe", default.hash_probe, pt.weights.hash_probe, TRUE_WEIGHTS.hash_probe),
        ("sort_op", default.sort_op, pt.weights.sort_op, TRUE_WEIGHTS.sort_op),
    ];
    for (name, d, t, truth) in rows {
        println!("{name:<14} {d:>10.4} {t:>10.4} {truth:>10.4}");
    }

    // Prediction accuracy on fresh executions.
    let test = demo_workload(&db, 12, 113);
    let fresh = collect_observations_diverse(&env, &test, 1, &mut rng);
    let err = |w: ml4db_core::storage::CostWeights| -> f64 {
        fresh
            .iter()
            .map(|o| (o.stats.latency_us(&w) - o.latency_us).abs() / o.latency_us.max(1.0))
            .sum::<f64>()
            / fresh.len() as f64
    };
    let tuned_err = err(pt.weights);
    let default_err = err(default);
    println!("\nmean relative cost-prediction error on fresh executions:");
    println!("  default weights: {default_err:.3}");
    println!("  tuned weights:   {tuned_err:.3}  ({} of default)", factor(tuned_err, default_err));
    println!(
        "shape check (tuned ≪ default prediction error): {}",
        if tuned_err < default_err * 0.3 { "HOLDS" } else { "VIOLATED" }
    );
}

fn bench(c: &mut Criterion) {
    let db = demo_database(120, 114);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(115);
    let train = demo_workload(&db, 15, 116);
    let obs = collect_observations_diverse(&env, &train, 2, &mut rng);
    c.bench_function("e11/paramtree_fit", |b| {
        b.iter(|| ParamTree::fit(black_box(&obs)).weights.cpu_tuple)
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
