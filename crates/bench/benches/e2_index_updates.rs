//! **E2** — replacement-index robustness under updates: the static RMI
//! cannot absorb inserts (the original limitation), while ALEX \[6\] and the
//! dynamic PGM \[8\] adapt and the B+Tree is unconditionally stable.
//!
//! Expected shape: RMI becomes stale (misses every new key); ALEX/PGM stay
//! exact with bounded structural churn; insert throughput of the adaptive
//! learned indexes is within a small factor of the B+Tree.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::index::keys::{generate_entries, KeyDistribution};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn regenerate() {
    banner("E2", "updates: RMI degrades, ALEX/dynamic-PGM adapt, B+Tree stable");
    let mut rng = StdRng::seed_from_u64(2);
    let base = generate_entries(KeyDistribution::Uniform { max: 1 << 40 }, 50_000, &mut rng);
    let mut btree = BPlusTree::bulk_load(&base);
    let mut alex = AlexIndex::bulk_load(&base);
    let mut dpgm = DynamicPgm::from_sorted(base.clone(), 32);
    let rmi = Rmi::build(base.clone(), 1024);

    // Skewed insert burst into an unseen key region.
    let inserts: Vec<u64> =
        (0..50_000).map(|_| rng.gen_range(0u64..1 << 40) | 1 << 41).collect();
    for &k in &inserts {
        btree.insert(k, 7);
        alex.insert(k, 7);
        dpgm.insert(k, 7);
    }

    let recall = |f: &dyn Fn(u64) -> Option<u64>| {
        let hits = inserts.iter().step_by(97).filter(|&&k| f(k) == Some(7)).count();
        hits as f64 / inserts.iter().step_by(97).count() as f64
    };
    println!("{:<14} {:>16} {:>22}", "index", "new-key recall", "structural churn");
    println!("{:<14} {:>16.2} {:>22}", "b+tree", recall(&|k| btree.get(k)), "-");
    println!(
        "{:<14} {:>16.2} {:>22}",
        "alex",
        recall(&|k| alex.get(k)),
        format!("{} splits, {} expands", alex.splits, alex.expansions)
    );
    println!(
        "{:<14} {:>16.2} {:>22}",
        "dynamic pgm",
        recall(&|k| dpgm.get(k)),
        format!("{} runs", dpgm.num_runs())
    );
    println!("{:<14} {:>16.2} {:>22}", "static rmi", recall(&|k| rmi.get(k)), "stale (no insert)");
    println!(
        "\nshape check (adaptive learned stay exact, static RMI stale): {}",
        if recall(&|k| alex.get(k)) == 1.0
            && recall(&|k| dpgm.get(k)) == 1.0
            && recall(&|k| rmi.get(k)) == 0.0
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let base = generate_entries(KeyDistribution::Uniform { max: 1 << 40 }, 20_000, &mut rng);
    let keys: Vec<u64> = (0..2_000).map(|_| rng.gen_range(0u64..1 << 41)).collect();
    let mut g = c.benchmark_group("e2/insert_2k");
    g.bench_function("btree", |b| {
        b.iter(|| {
            let mut t = BPlusTree::bulk_load(&base);
            for &k in &keys {
                t.insert(black_box(k), 1);
            }
            t.len()
        })
    });
    g.bench_function("alex", |b| {
        b.iter(|| {
            let mut t = AlexIndex::bulk_load(&base);
            for &k in &keys {
                t.insert(black_box(k), 1);
            }
            t.len()
        })
    });
    g.bench_function("dynamic_pgm", |b| {
        b.iter(|| {
            let mut t = DynamicPgm::from_sorted(base.clone(), 32);
            for &k in &keys {
                t.insert(black_box(k), 1);
            }
            t.len()
        })
    });
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
