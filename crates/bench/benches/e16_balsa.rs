//! **E16** — Balsa \[51\]: learning an optimizer *without expert
//! demonstrations*. Phase 1 trains on the simulated cost model only (zero
//! executions); phase 2 fine-tunes on real executions under a safe
//! timeout that turns would-be stalls into bounded, pessimistically
//! labeled observations.
//!
//! Expected shape: simulation-only Balsa already avoids disasters;
//! fine-tuning improves it toward the expert; with tight budgets the
//! timeout path fires but per-query cost stays bounded.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::optimizer::{evaluate, Balsa, Env};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E16", "Balsa: sim-to-real without expert demonstrations + safe timeouts");
    let db = demo_database(150, 160);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(161);
    let train = demo_workload(&db, 20, 162);
    let test = demo_workload(&db, 10, 163);

    let mut balsa = Balsa::new(&mut rng);
    balsa.simulate(&env, &train, 3, 12, &mut rng);
    let sim_report = evaluate(&env, &test, |env, q| balsa.plan(env, q, &mut StdRng::seed_from_u64(1)));
    println!("after simulation only (0 executions):");
    println!(
        "  relative total vs expert {:.2}, regressions {}/{}",
        sim_report.relative_total,
        sim_report.regressions,
        test.len()
    );

    let mut total_timeouts = 0usize;
    for round in 0..3 {
        let observed = balsa.finetune(&env, &train, 8, &mut rng);
        let avg = observed.iter().sum::<f64>() / observed.len().max(1) as f64;
        println!(
            "  fine-tune round {round}: mean observed {avg:.0} µs, timeouts so far {}",
            balsa.timeouts
        );
        total_timeouts = balsa.timeouts;
    }
    let ft_report = evaluate(&env, &test, |env, q| balsa.plan(env, q, &mut StdRng::seed_from_u64(1)));
    println!("after fine-tuning:");
    println!(
        "  relative total vs expert {:.2}, regressions {}/{}",
        ft_report.relative_total,
        ft_report.regressions,
        test.len()
    );
    println!("  safe-execution timeouts during training: {total_timeouts}");
    println!(
        "shape check (no expert needed; fine-tuned ≤ sim-only * 1.2): {}",
        if ft_report.relative_total <= sim_report.relative_total * 1.2 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let db = demo_database(100, 164);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(165);
    let train = demo_workload(&db, 6, 166);
    let mut balsa = Balsa::new(&mut rng);
    balsa.simulate(&env, &train, 2, 5, &mut rng);
    let q = &train[0];
    c.bench_function("e16/balsa_plan", |b| {
        b.iter(|| balsa.plan(&env, black_box(q), &mut rng).map(|p| p.size()))
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
