//! **E17** — training-data generation (open problem 4, SAM \[49\]): fit a
//! generator to a workload's (range, cardinality) feedback on a private
//! table, sample a synthetic table, and verify the workload's
//! cardinalities reproduce — with and without Laplace-privatized counts.
//!
//! Expected shape: small mean relative error on workload constraints;
//! correlation direction preserved; privacy noise degrades accuracy
//! gracefully with the noise scale.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::datagen::{observe_constraints, privatize_constraints, SamGenerator};
use ml4db_core::storage::{ColumnData, DataType, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn private_table(rng: &mut StdRng) -> Table {
    let n = 5000;
    let c0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let c1: Vec<f64> = c0.iter().map(|&v| v * 0.7 + rng.gen_range(0.0..30.0)).collect();
    Table::new(
        "private",
        Schema::new(&[("a", DataType::Float), ("b", DataType::Float)]),
        vec![ColumnData::Float(c0), ColumnData::Float(c1)],
    )
}

fn grid_queries() -> Vec<((f64, f64), (f64, f64))> {
    let mut qs = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            qs.push((
                (i as f64 * 20.0, (i + 1) as f64 * 20.0),
                (j as f64 * 20.0, (j + 1) as f64 * 20.0),
            ));
        }
    }
    qs
}

fn mean_rel_err(
    truth: &[ml4db_core::datagen::RangeConstraint],
    synth: &Table,
    queries: &[((f64, f64), (f64, f64))],
) -> f64 {
    let got = observe_constraints(synth, "c0", "c1", queries);
    let mut err = 0.0;
    let mut n = 0;
    for (t, g) in truth.iter().zip(&got) {
        if t.count >= 50.0 {
            err += (g.count - t.count).abs() / t.count;
            n += 1;
        }
    }
    err / n.max(1) as f64
}

fn regenerate() {
    banner("E17", "SAM-style generation: cardinality-faithful synthetic data");
    let mut rng = StdRng::seed_from_u64(170);
    let private = private_table(&mut rng);
    let queries = grid_queries();
    let constraints = observe_constraints(&private, "a", "b", &queries);

    println!("{:<22} {:>22}", "setting", "mean rel. card error");
    let clean = SamGenerator::fit(&constraints, (0.0, 100.0), (0.0, 100.0), 5000.0, 10, 30);
    let synth = clean.sample_table("synth", 5000, &mut rng);
    let clean_err = mean_rel_err(&constraints, &synth, &queries);
    println!("{:<22} {:>22.3}", "no privacy noise", clean_err);
    let mut noisy_errs = Vec::new();
    for b in [10.0, 50.0, 200.0] {
        let noisy = privatize_constraints(&constraints, b, &mut rng);
        let gen = SamGenerator::fit(&noisy, (0.0, 100.0), (0.0, 100.0), 5000.0, 10, 30);
        let s = gen.sample_table("synth", 5000, &mut rng);
        let e = mean_rel_err(&constraints, &s, &queries);
        noisy_errs.push(e);
        println!("{:<22} {:>22.3}", format!("laplace scale {b}"), e);
    }

    // Correlation preservation.
    let c0: Vec<f64> = (0..synth.num_rows()).map(|i| synth.columns[0].get_f64(i)).collect();
    let c1: Vec<f64> = (0..synth.num_rows()).map(|i| synth.columns[1].get_f64(i)).collect();
    let corr = ml4db_core::nn::metrics::pearson(&c0, &c1);
    println!("\nsynthetic column correlation: {corr:.3} (private data is strongly positive)");
    println!(
        "shape check (faithful without noise; degrades gracefully with noise): {}",
        if clean_err < 0.35 && corr > 0.4 && noisy_errs[2] >= clean_err {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(171);
    let private = private_table(&mut rng);
    let queries = grid_queries();
    let constraints = observe_constraints(&private, "a", "b", &queries);
    c.bench_function("e17/sam_fit_ipf30", |b| {
        b.iter(|| {
            SamGenerator::fit(black_box(&constraints), (0.0, 100.0), (0.0, 100.0), 5000.0, 10, 30)
                .total_rows()
        })
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
