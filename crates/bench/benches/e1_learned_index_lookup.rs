//! **E1** — learned index vs B+Tree on static lookups (the RMI claim \[17\]
//! that opened the replacement paradigm): learned indexes match or beat the
//! B+Tree on reads while their structures are orders of magnitude smaller.
//!
//! Expected shape: model sizes RMI/PGM/RadixSpline ≪ B+Tree; lookup times
//! competitive; error bounds small on smooth CDFs and larger on hard ones.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::index::keys::{generate_entries, KeyDistribution};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 200_000;

fn build(dist: KeyDistribution) -> (Vec<(u64, u64)>, BPlusTree, Rmi, PgmIndex, RadixSpline) {
    let mut rng = StdRng::seed_from_u64(1);
    let entries = generate_entries(dist, N, &mut rng);
    let btree = BPlusTree::bulk_load(&entries);
    let rmi = Rmi::build(entries.clone(), 2048);
    let pgm = PgmIndex::build(entries.clone(), 32);
    let spline = RadixSpline::build(entries.clone(), 32);
    (entries, btree, rmi, pgm, spline)
}

fn regenerate() {
    banner("E1", "learned index vs B+Tree: structure size and lookup (static)");
    println!(
        "{:<36} {:>12} {:>10} {:>10} {:>12}",
        "distribution", "btree bytes", "rmi bytes", "pgm bytes", "spline bytes"
    );
    for dist in [
        KeyDistribution::Sequential,
        KeyDistribution::Uniform { max: 1 << 44 },
        KeyDistribution::LogNormal { sigma: 2.0 },
        KeyDistribution::Clustered { clusters: 128 },
    ] {
        let (_, btree, rmi, pgm, spline) = build(dist);
        println!(
            "{:<36} {:>12} {:>10} {:>10} {:>12}",
            format!("{dist:?}"),
            btree.size_bytes(),
            rmi.size_bytes(),
            pgm.size_bytes(),
            spline.size_bytes()
        );
    }
    let (_, btree, rmi, pgm, _) = build(KeyDistribution::LogNormal { sigma: 2.0 });
    println!(
        "\nlognormal detail: rmi max err {}, pgm {} segments / {} levels",
        rmi.max_error(),
        pgm.num_segments(),
        pgm.num_levels()
    );
    println!(
        "size shape check (learned ≪ btree): {}",
        if rmi.size_bytes() * 10 < btree.size_bytes() { "HOLDS" } else { "VIOLATED" }
    );
}

fn bench(c: &mut Criterion) {
    let (entries, btree, rmi, pgm, spline) = build(KeyDistribution::LogNormal { sigma: 2.0 });
    let probes: Vec<u64> = entries.iter().step_by(997).map(|e| e.0).collect();
    let mut g = c.benchmark_group("e1/lookup_lognormal");
    g.bench_function("btree", |b| {
        b.iter(|| probes.iter().map(|&k| btree.get(black_box(k))).count())
    });
    g.bench_function("rmi", |b| b.iter(|| probes.iter().map(|&k| rmi.get(black_box(k))).count()));
    g.bench_function("pgm", |b| b.iter(|| probes.iter().map(|&k| pgm.get(black_box(k))).count()));
    g.bench_function("radix_spline", |b| {
        b.iter(|| probes.iter().map(|&k| spline.get(black_box(k))).count())
    });
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
