//! **E5** — ML-enhanced bulk loading: PLATON \[48\] packs the R-tree
//! top-down with an MCTS-learned partition policy that optimizes the given
//! data + workload instance, under a per-decision simulation budget (the
//! paper's linear-time optimization).
//!
//! Expected shape: PLATON ≤ STR on the optimized workload (its guardrail
//! enforces this); a larger MCTS budget does not hurt; packing time grows
//! roughly linearly in the simulation budget.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, factor, quick_criterion};
use ml4db_core::spatial::data::{
    generate_points, generate_range_queries, workload_leaf_accesses, SpatialDistribution,
};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E5", "ML-enhanced bulk loading: PLATON (MCTS packing) vs STR");
    let mut rng = StdRng::seed_from_u64(6);
    let points = generate_points(SpatialDistribution::Skewed, 3000, &mut rng);
    let history = generate_range_queries(60, 0.06, true, &mut rng);
    let future = generate_range_queries(60, 0.06, true, &mut rng);

    let str_tree = RTree::bulk_load_str(&points);
    // PLATON's objective is the *given* data + workload instance, so the
    // headline table reports the optimized workload; the fresh draw shows
    // generalization.
    let str_hist = workload_leaf_accesses(&str_tree, &history);
    let str_fut = workload_leaf_accesses(&str_tree, &future);
    println!(
        "{:<24} {:>16} {:>10} {:>14}",
        "packer", "given workload", "vs STR", "fresh draw"
    );
    println!("{:<24} {:>16.2} {:>10} {:>14.2}", "str", str_hist, "1.00x", str_fut);
    for sims in [16usize, 64, 256] {
        let platon = PlatonPacker { simulations: sims, ..Default::default() }
            .pack(&points, &history, 7);
        let hist = workload_leaf_accesses(&platon, &history);
        let fut = workload_leaf_accesses(&platon, &future);
        println!(
            "{:<24} {:>16.2} {:>10} {:>14.2}",
            format!("platon (sims={sims})"),
            hist,
            factor(hist, str_hist),
            fut
        );
    }
    let platon =
        PlatonPacker { simulations: 256, ..Default::default() }.pack(&points, &history, 7);
    println!(
        "\nshape check (PLATON ≤ STR on its workload): {}",
        if workload_leaf_accesses(&platon, &history)
            <= workload_leaf_accesses(&str_tree, &history) + 1e-9
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let points = generate_points(SpatialDistribution::Skewed, 1000, &mut rng);
    let workload = generate_range_queries(30, 0.06, true, &mut rng);
    let mut g = c.benchmark_group("e5/pack_1000pts");
    g.bench_function("str", |b| b.iter(|| RTree::bulk_load_str(black_box(&points)).len()));
    for sims in [16usize, 64] {
        g.bench_function(format!("platon_sims{sims}"), |b| {
            b.iter(|| {
                PlatonPacker { simulations: sims, ..Default::default() }
                    .pack(black_box(&points), &workload, 1)
                    .len()
            })
        });
    }
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
