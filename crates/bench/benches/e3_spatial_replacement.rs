//! **E3** — replacement learned spatial indexes vs the R-tree: ZM \[43\],
//! LISA \[25\], and the rank-space RSMI \[36\] answer ranges exactly, but the
//! Z-interval scan pays false positives (ZM's weakness), LISA's learned
//! direct mapping avoids them, rank space reduces model size on skew
//! (RSMI's improvement), and z-order kNN is only approximate.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::spatial::data::{
    generate_points, generate_range_queries, unit_domain, SpatialDistribution,
};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Vec<ml4db_core::spatial::Entry>, Vec<ml4db_core::spatial::Rect>) {
    let mut rng = StdRng::seed_from_u64(3);
    let points = generate_points(SpatialDistribution::Skewed, 20_000, &mut rng);
    let queries = generate_range_queries(100, 0.05, false, &mut rng);
    (points, queries)
}

fn regenerate() {
    banner("E3", "learned spatial (ZM/LISA/RSMI) vs R-tree: scans, size, kNN recall");
    let (points, queries) = setup();
    let rtree = RTree::bulk_load_str(&points);
    let zm = ZmIndex::build(points.clone(), unit_domain(), 32);
    let lisa = LisaIndex::build(points.clone(), 128);
    let rsmi = RsmiIndex::build(points.clone(), 32);

    let mut r_access = 0u64;
    let mut z_scan = 0u64;
    let mut l_scan = 0u64;
    let mut s_scan = 0u64;
    let mut results = 0u64;
    for q in &queries {
        let (ids, st) = rtree.range_query(q);
        results += ids.len() as u64;
        r_access += st.leaf_accesses * 8; // entries per leaf ~ MAX_ENTRIES
        z_scan += zm.range_query(q).1;
        l_scan += lisa.range_query(q).1;
        s_scan += rsmi.range_query(q).1;
    }
    println!("{} range queries, {results} total results", queries.len());
    println!("{:<10} {:>16} {:>14}", "index", "entries touched", "model bytes");
    println!("{:<10} {:>16} {:>14}", "r-tree", r_access, "-");
    println!("{:<10} {:>16} {:>14}", "zm", z_scan, zm.size_bytes());
    println!("{:<10} {:>16} {:>14}", "lisa", l_scan, lisa.size_bytes());
    println!("{:<10} {:>16} {:>14}", "rsmi", s_scan, rsmi.size_bytes());
    println!(
        "\nzm vs rsmi segments on skew: {} vs {} (rank space flattens the CDF)",
        zm.num_segments(),
        rsmi.num_segments()
    );

    // Approximate kNN recall — the ZM robustness limitation.
    let mut recall_sum = 0.0;
    let mut trials = 0;
    for q in queries.iter().take(20) {
        let p = q.center();
        let (exact, _) = rtree.knn(&p, 10);
        let approx = zm.knn_approximate(&p, 10, 64);
        let set: std::collections::BTreeSet<usize> = exact.into_iter().collect();
        recall_sum += approx.iter().filter(|id| set.contains(id)).count() as f64 / 10.0;
        trials += 1;
    }
    let recall = recall_sum / trials as f64;
    println!("zm approximate kNN recall@10: {recall:.3} (r-tree: 1.000 exact)");
    println!(
        "shape checks: lisa scans ≤ zm scans: {} | zm kNN approximate (<1): {}",
        if l_scan <= z_scan { "HOLDS" } else { "VIOLATED" },
        if recall < 1.0 { "HOLDS" } else { "(exact on this draw)" }
    );
}

fn bench(c: &mut Criterion) {
    let (points, queries) = setup();
    let rtree = RTree::bulk_load_str(&points);
    let zm = ZmIndex::build(points.clone(), unit_domain(), 32);
    let lisa = LisaIndex::build(points.clone(), 128);
    let rsmi = RsmiIndex::build(points, 32);
    let qs: Vec<_> = queries.into_iter().take(20).collect();
    let mut g = c.benchmark_group("e3/range_100q");
    g.bench_function("rtree", |b| {
        b.iter(|| qs.iter().map(|q| rtree.range_query(black_box(q)).0.len()).sum::<usize>())
    });
    g.bench_function("zm", |b| {
        b.iter(|| qs.iter().map(|q| zm.range_query(black_box(q)).0.len()).sum::<usize>())
    });
    g.bench_function("lisa", |b| {
        b.iter(|| qs.iter().map(|q| lisa.range_query(black_box(q)).0.len()).sum::<usize>())
    });
    g.bench_function("rsmi", |b| {
        b.iter(|| qs.iter().map(|q| rsmi.range_query(black_box(q)).0.len()).sum::<usize>())
    });
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
