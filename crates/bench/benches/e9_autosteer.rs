//! **E9** — AutoSteer \[3\]: removes Bao's hand-crafted hint-set collection
//! by greedily discovering effective hint sets per query (single toggles,
//! then merges of composable toggles).
//!
//! Expected shape: discovery finds ≥ the hand-crafted arms' coverage
//! (every Bao arm that changes the plan is rediscovered or subsumed), and
//! the steered latency matches Bao's.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::optimizer::{discover_hint_sets, Env};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E9", "AutoSteer: dynamic hint-set discovery vs hand-crafted arms");
    let db = demo_database(150, 90);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(91);
    let queries = demo_workload(&db, 20, 92);

    // Discovery statistics across the workload.
    let mut discovered_counts = Vec::new();
    let mut plans_covered = 0usize;
    let mut plans_total = 0usize;
    for q in &queries {
        let d = discover_hint_sets(&env, q, 10.0);
        discovered_counts.push(d.arms.len());
        // Coverage: every distinct plan reachable via the hand-crafted Bao
        // arms should be reachable via discovered arms too.
        let hand: std::collections::BTreeSet<String> = bao_arms()
            .iter()
            .filter_map(|&h| env.plan_with_hint(q, h).map(|p| p.signature()))
            .collect();
        let auto: std::collections::BTreeSet<String> = d
            .arms
            .iter()
            .filter_map(|&h| env.plan_with_hint(q, h).map(|p| p.signature()))
            .collect();
        plans_total += hand.len();
        plans_covered += hand.iter().filter(|s| auto.contains(*s)).count();
    }
    let avg_arms =
        discovered_counts.iter().sum::<usize>() as f64 / discovered_counts.len() as f64;
    println!("discovered arms per query: avg {avg_arms:.1} (hand-crafted: {})", bao_arms().len());
    println!(
        "plan coverage of hand-crafted arms: {plans_covered}/{plans_total} ({:.0}%)",
        100.0 * plans_covered as f64 / plans_total.max(1) as f64
    );

    // Steering quality: AutoSteer vs Bao on the same stream.
    let mut auto = AutoSteer::new();
    let mut bao = Bao::new(bao_arms());
    let mut auto_total = 0.0;
    let mut bao_total = 0.0;
    for q in &queries {
        auto_total += auto.step(&env, q, &mut rng).1;
        bao_total += bao.step(&env, q, &mut rng).1;
    }
    println!("\ntraining-stream total latency: autosteer {auto_total:.0} µs, bao {bao_total:.0} µs");
    println!(
        "shape check (coverage ≥ 90% and latency within 1.5x of Bao): {}",
        if plans_covered * 10 >= plans_total * 9 && auto_total <= bao_total * 1.5 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let db = demo_database(120, 93);
    let env = Env::new(&db);
    let q = &demo_workload(&db, 1, 94)[0];
    c.bench_function("e9/discover_hint_sets", |b| {
        b.iter(|| discover_hint_sets(&env, black_box(q), 10.0).arms.len())
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
