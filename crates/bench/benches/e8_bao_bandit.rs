//! **E8** — Bao \[27\]: hint-set steering as a contextual bandit. The claims
//! the tutorial highlights: low training overhead (it reuses the expert),
//! improved tail performance, and adaptation to workload shift via the
//! sliding experience window.
//!
//! Expected shape: Bao's relative-to-expert total ≤ ~1 after training;
//! regressions stay rare; after a sudden workload shift Bao's rolling mean
//! recovers within a window of queries.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::datagen::{DriftSchedule, SchemaGraph};
use ml4db_core::optimizer::{evaluate, Env};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E8", "Bao: tail performance and adaptation under workload shift");
    let db = demo_database(150, 80);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(81);

    // Train, then evaluate greedily against the expert.
    let train = demo_workload(&db, 35, 82);
    let mut bao = Bao::new(bao_arms());
    for q in &train {
        bao.step(&env, q, &mut rng);
    }
    let test = demo_workload(&db, 15, 83);
    let report = evaluate(&env, &test, |env, q| Some(bao.choose_greedy(env, q).plan));
    println!("steady state (15 test queries):");
    println!("  relative total vs expert: {:.2}", report.relative_total);
    println!(
        "  tails: p50 {:.0}  p90 {:.0}  p99 {:.0} µs, regressions {}/{}",
        report.tail.p50,
        report.tail.p90,
        report.tail.p99,
        report.regressions,
        test.len()
    );

    // Workload shift: relative-to-expert cost per phase.
    let stream = DriftSchedule::sudden(30, 30).generate(&db, &SchemaGraph::joblite(), &mut rng);
    let mut bao2 = Bao::new(bao_arms());
    let mut rel = Vec::new();
    for q in &stream {
        let (_, lat) = bao2.step(&env, q, &mut rng);
        let expert = env.run(q, &env.expert_plan(q).expect("plans"));
        rel.push(lat / expert.max(1e-9));
    }
    let mean = |r: std::ops::Range<usize>| rel[r].iter().sum::<f64>() / 10.0;
    println!("\nworkload shift at query 30 (relative latency vs expert, mean of 10):");
    println!("  queries 20..30 (pre-shift):    {:.2}", mean(20..30));
    println!("  queries 30..40 (post-shift):   {:.2}", mean(30..40));
    println!("  queries 50..60 (re-adapted):   {:.2}", mean(50..60));
    println!(
        "\nshape check (tracks expert; re-adapted ≤ ~post-shift): {}",
        if report.relative_total < 1.3 && mean(50..60) <= mean(30..40) * 1.2 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let db = demo_database(120, 84);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(85);
    let queries = demo_workload(&db, 10, 86);
    let mut bao = Bao::new(bao_arms());
    for q in &queries {
        bao.step(&env, q, &mut rng);
    }
    let q = &queries[0];
    c.bench_function("e8/bao_choose_thompson", |b| {
        b.iter(|| bao.choose(&env, black_box(q), &mut rng).arm)
    });
    c.bench_function("e8/bao_choose_greedy", |b| {
        b.iter(|| bao.choose_greedy(&env, black_box(q)).arm)
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
