//! **E7** — replacement learned optimizers (Neo \[28\], RTOS \[52\]): trained
//! on one template family they track the expert; on *unseen* templates
//! their value networks extrapolate and tail latencies degrade — the
//! robustness/cold-start limitation the tutorial uses to motivate the
//! ML-enhanced paradigm.
//!
//! Expected shape: relative-to-expert total near 1 on seen templates, and
//! a larger factor plus more ≥2x regressions on unseen templates.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::datagen::{SchemaGraph, WorkloadConfig, WorkloadGenerator};
use ml4db_core::optimizer::{evaluate, Env, Neo, Rtos};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate() {
    banner("E7", "replacement optimizers: seen vs unseen template robustness");
    let db = demo_database(150, 70);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(71);

    // Seen: 2-table joins over the joblite core. Unseen: wider joins with
    // more predicates — templates the value nets never trained on.
    let seen_gen = WorkloadGenerator::new(
        SchemaGraph::joblite(),
        WorkloadConfig { min_tables: 2, max_tables: 2, max_predicates: 1, ..Default::default() },
    );
    let unseen_gen = WorkloadGenerator::new(
        SchemaGraph::joblite(),
        WorkloadConfig { min_tables: 3, max_tables: 4, max_predicates: 3, ..Default::default() },
    );
    let train = seen_gen.generate_many(&db, 25, &mut rng);
    let seen_test = seen_gen.generate_many(&db, 12, &mut rng);
    let unseen_test = unseen_gen.generate_many(&db, 12, &mut rng);

    let mut neo = Neo::new(&mut rng);
    neo.bootstrap(&env, &train, 12, &mut rng);
    neo.train_iteration(&env, &train, 8, &mut rng);
    let mut rtos = Rtos::new(&mut rng);
    rtos.warmup_with_cost(&env, &train, 10, &mut rng);
    rtos.finetune_with_latency(&env, &train, 8, &mut rng);

    println!(
        "{:<8} {:<8} {:>14} {:>12} {:>12}",
        "system", "split", "rel. total", "p99 (µs)", "regressions"
    );
    let mut degradations = Vec::new();
    for (name, planner) in [
        ("neo", Box::new(|env: &Env, q: &Query| neo.plan(env, q))
            as Box<dyn Fn(&Env, &Query) -> Option<PlanNode> + Sync>),
        ("rtos", Box::new(|env: &Env, q: &Query| rtos.plan(env, q))),
    ] {
        let seen = evaluate(&env, &seen_test, &planner);
        let unseen = evaluate(&env, &unseen_test, &planner);
        println!(
            "{:<8} {:<8} {:>14.2} {:>12.0} {:>9}/{}",
            name, "seen", seen.relative_total, seen.tail.p99, seen.regressions, seen_test.len()
        );
        println!(
            "{:<8} {:<8} {:>14.2} {:>12.0} {:>9}/{}",
            name,
            "unseen",
            unseen.relative_total,
            unseen.tail.p99,
            unseen.regressions,
            unseen_test.len()
        );
        degradations.push(unseen.relative_total / seen.relative_total.max(1e-9));
    }
    println!(
        "\nshape check (unseen degrades vs seen for at least one system): {}",
        if degradations.iter().any(|&d| d > 1.1) { "HOLDS" } else { "VIOLATED" }
    );
}

fn bench(c: &mut Criterion) {
    let db = demo_database(100, 72);
    let env = Env::new(&db);
    let mut rng = StdRng::seed_from_u64(73);
    let queries = demo_workload(&db, 8, 74);
    let mut neo = Neo::new(&mut rng);
    neo.bootstrap(&env, &queries, 6, &mut rng);
    let q = &queries[0];
    c.bench_function("e7/neo_plan_one_query", |b| {
        b.iter(|| neo.plan(&env, black_box(q)))
    });
    c.bench_function("e7/expert_plan_one_query", |b| {
        b.iter(|| env.expert_plan(black_box(q)))
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
