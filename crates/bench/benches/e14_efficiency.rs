//! **E14** — model efficiency (open problem 1): the NNGP estimator \[55\]
//! trains in closed form ("a few seconds" at paper scale, microseconds
//! here) where gradient-trained models need epochs; learned index models
//! are orders of magnitude smaller than the structures they replace.
//!
//! Expected shape: NNGP training time ≪ MLP training time at comparable
//! accuracy; model-size table shows learned ≪ classical.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, factor, quick_criterion};
use ml4db_core::card::{collect_samples, MscnEstimator, NngpEstimator};
use ml4db_core::index::keys::{generate_entries, KeyDistribution};
use ml4db_core::prelude::*;
use ml4db_core::storage::datasets::{joblite, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            Query::new(&["title"])
                .filter(0, "year", CmpOp::Ge, (1985 + (i * 7) % 30) as f64)
                .filter(0, "votes", CmpOp::Ge, (1000 + (i * 577) % 6000) as f64)
        })
        .collect()
}

fn regenerate() {
    banner("E14", "model efficiency: training time, accuracy, and model size");
    let mut rng = StdRng::seed_from_u64(140);
    let db = Database::analyze(
        joblite(&DatasetConfig { base_rows: 800, skew: 0.3, correlation: 0.85 }, &mut rng),
        &mut rng,
    );
    let samples = collect_samples(&db, &workload(60));
    let oracle = TrueCardinality::new();
    let test = workload(90).split_off(60);
    let median_qerr = |est: &dyn CardEstimator| -> f64 {
        let errs: Vec<f64> = test
            .iter()
            .map(|q| {
                ml4db_core::nn::metrics::q_error(
                    est.estimate(&db, q, 1),
                    oracle.estimate(&db, q, 1),
                )
            })
            .collect();
        ml4db_core::nn::metrics::q_error_summary(&errs).expect("non-empty").median
    };

    let t0 = std::time::Instant::now();
    let mut mscn = MscnEstimator::new(32, &mut rng);
    mscn.fit(&db, &samples, 60, 0.005, &mut rng);
    let mscn_time = t0.elapsed();
    let mut nngp = NngpEstimator::new();
    let nngp_time = nngp.fit(&db, &samples);

    println!("cardinality estimation ({} samples):", samples.len());
    println!(
        "{:<10} {:>14} {:>14} {:>16}",
        "model", "train time", "median qerr", "size proxy"
    );
    println!(
        "{:<10} {:>14} {:>14.2} {:>16}",
        "mscn",
        format!("{mscn_time:?}"),
        median_qerr(&mscn),
        format!("{} params", mscn.num_params())
    );
    println!(
        "{:<10} {:>14} {:>14.2} {:>16}",
        "nngp",
        format!("{nngp_time:?}"),
        median_qerr(&nngp),
        format!("{} pts", nngp.train_size())
    );
    println!(
        "{:<10} {:>14} {:>14.2} {:>16}",
        "classic", "0 (analytic)", median_qerr(&ClassicEstimator), "-"
    );
    println!(
        "nngp training speedup over mscn: {}",
        factor(mscn_time.as_secs_f64(), nngp_time.as_secs_f64())
    );

    // Index model sizes (the space side of model efficiency).
    let entries = generate_entries(KeyDistribution::LogNormal { sigma: 2.0 }, 200_000, &mut rng);
    let btree = BPlusTree::bulk_load(&entries);
    let pgm = PgmIndex::build(entries.clone(), 32);
    println!("\nindex structure sizes (200k keys):");
    println!("  b+tree: {} bytes, pgm: {} bytes ({} smaller)",
        btree.size_bytes(), pgm.size_bytes(), factor(btree.size_bytes() as f64, pgm.size_bytes() as f64));
    println!(
        "shape check (NNGP much faster to train; learned index much smaller): {}",
        if nngp_time < mscn_time && pgm.size_bytes() * 10 < btree.size_bytes() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(141);
    let db = Database::analyze(
        joblite(&DatasetConfig { base_rows: 300, ..Default::default() }, &mut rng),
        &mut rng,
    );
    let samples = collect_samples(&db, &workload(30));
    let mut g = c.benchmark_group("e14/train");
    g.bench_function("nngp_fit", |b| {
        b.iter(|| {
            let mut gp = NngpEstimator::new();
            gp.fit(&db, black_box(&samples))
        })
    });
    g.bench_function("mscn_fit_10_epochs", |b| {
        b.iter(|| {
            let mut m = MscnEstimator::new(32, &mut rng);
            m.fit(&db, black_box(&samples), 10, 0.005, &mut rng)
        })
    });
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
