//! **E12** — the comparative study of query-plan representation components
//! (\[57\]): interchange feature encodings and tree models on the same cost
//! task; report absolute (median q-error) and relative (rank correlation)
//! metrics, and decompose the grid variance into encoding- vs
//! model-explained spreads.
//!
//! Expected shape (\[57\]'s headline): the encoding factor's spread is at
//! least comparable to — and typically exceeds — the tree-model factor's,
//! even though the literature focuses on tree models.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, quick_criterion};
use ml4db_core::repr::study::{factor_spreads, factor_spreads_rank, run_study, LabeledPlan, StudyConfig};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_corpus(db: &Database, n_queries: usize, rng: &mut StdRng) -> Vec<LabeledPlan> {
    let queries = demo_workload(db, n_queries, 121);
    let planner = Planner::default();
    let cost_model = CostModel::default();
    let mut corpus = Vec::new();
    for q in &queries {
        let mut plans = Vec::new();
        if let Some(p) = planner.best_plan(db, q, &ClassicEstimator) {
            plans.push(p);
        }
        plans.extend(planner.random_plans(db, q, &ClassicEstimator, 2, rng));
        for mut p in plans {
            cost_model.cost_plan(db, q, &mut p, &ClassicEstimator);
            let latency = ml4db_core::plan::execute(db, q, &p).expect("valid").latency_us;
            corpus.push(LabeledPlan { query: q.clone(), plan: p, latency_us: latency });
        }
    }
    corpus
}

fn regenerate() {
    banner("E12", "representation study: encodings x tree models (after [57])");
    let mut rng = StdRng::seed_from_u64(120);
    let db = demo_database(200, 122);
    let corpus = build_corpus(&db, 40, &mut rng);
    println!("corpus: {} labeled plans", corpus.len());
    let config = StudyConfig { epochs: 20, ..Default::default() };
    let cells = run_study(&db, &corpus, &config, &mut rng);

    println!(
        "\n{:<16} {:<12} {:>12} {:>12}",
        "encoding", "model", "median qerr", "rank corr"
    );
    for c in &cells {
        println!(
            "{:<16} {:<12} {:>12.2} {:>12.3}",
            c.encoding.label(),
            c.model.label(),
            c.median_q_error,
            c.rank_correlation
        );
    }
    let (enc, model) = factor_spreads(&cells);
    let (enc_r, model_r) = factor_spreads_rank(&cells);
    println!("\nfactor spreads:");
    println!("  absolute metric (log q-error): encoding {enc:.3}, model {model:.3}");
    println!("  relative metric (rank corr):   encoding {enc_r:.3}, model {model_r:.3}");
    println!(
        "shape check ([57]: encoding matters — dominates on at least one metric, \
         material on both): {}",
        if (enc_r >= model_r || enc >= model) && enc * 2.0 >= model {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(123);
    let db = demo_database(100, 124);
    let corpus = build_corpus(&db, 8, &mut rng);
    let config = StudyConfig {
        encodings: vec![FeatureConfig::full()],
        models: vec![TreeModelKind::TreeCnn],
        epochs: 2,
        ..Default::default()
    };
    c.bench_function("e12/one_grid_cell_2epochs", |b| {
        b.iter(|| run_study(&db, black_box(&corpus), &config, &mut rng).len())
    });
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
