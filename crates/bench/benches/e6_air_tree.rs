//! **E6** — ML-enhanced search: the AI+R tree \[2\] routes high-overlap
//! range queries through learned per-leaf classifiers (skipping extraneous
//! leaf accesses) and low-overlap queries through the plain R-tree.
//!
//! Expected shape: on high-overlap queries AI+R touches fewer leaves than
//! the R-tree at high (but not perfect) recall; low-overlap queries are
//! untouched (exact, same cost) — the balanced-performance claim.

use criterion::{black_box, Criterion};
use ml4db_bench::{banner, factor, quick_criterion};
use ml4db_core::spatial::air::Route;
use ml4db_core::spatial::data::{
    generate_points, generate_range_queries, SpatialDistribution,
};
use ml4db_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (AiRTree, Vec<ml4db_core::spatial::Rect>, Vec<ml4db_core::spatial::Rect>) {
    let mut rng = StdRng::seed_from_u64(8);
    let points =
        generate_points(SpatialDistribution::Clustered { clusters: 16 }, 6000, &mut rng);
    let tree = RTree::bulk_load_str(&points);
    let train_high = generate_range_queries(100, 0.25, false, &mut rng);
    let air = AiRTree::build(tree, &train_high, 6);
    let high = generate_range_queries(50, 0.25, false, &mut rng);
    let low = generate_range_queries(50, 0.02, false, &mut rng);
    (air, high, low)
}

fn regenerate() {
    banner("E6", "ML-enhanced search: AI+R routing vs plain R-tree");
    let (air, high, low) = setup();
    let mut table = |name: &str, queries: &[ml4db_core::spatial::Rect]| {
        let mut air_acc = 0u64;
        let mut rtree_acc = 0u64;
        let mut ai_routed = 0usize;
        for q in queries {
            let (_, stats, route) = air.range_query(q);
            air_acc += stats.leaf_accesses;
            rtree_acc += air.rtree().range_query(q).1.leaf_accesses;
            if route == Route::AiTree {
                ai_routed += 1;
            }
        }
        println!(
            "{:<14} ai-routed {:>3}/{:<3} | leaf accesses: r-tree {:>6}, ai+r {:>6} ({})",
            name,
            ai_routed,
            queries.len(),
            rtree_acc,
            air_acc,
            factor(air_acc as f64, rtree_acc as f64)
        );
        (air_acc, rtree_acc, ai_routed)
    };
    let (high_air, high_rtree, high_routed) = table("high-overlap", &high);
    let (_, _, low_routed) = table("low-overlap", &low);
    let recall = air.ai_recall(&high);
    println!("ai-path recall on high-overlap queries: {recall:.3}");
    println!(
        "shape check (high-overlap saves leaves via AI path, low-overlap mostly classical): {}",
        if high_air < high_rtree
            && high_routed * 2 > high.len()
            && low_routed * 2 < low.len()
            && recall > 0.8
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn bench(c: &mut Criterion) {
    let (air, high, low) = setup();
    let mut g = c.benchmark_group("e6/range");
    g.bench_function("air_high_overlap", |b| {
        b.iter(|| high.iter().map(|q| air.range_query(black_box(q)).0.len()).sum::<usize>())
    });
    g.bench_function("rtree_high_overlap", |b| {
        b.iter(|| {
            high.iter().map(|q| air.rtree().range_query(black_box(q)).0.len()).sum::<usize>()
        })
    });
    g.bench_function("air_low_overlap", |b| {
        b.iter(|| low.iter().map(|q| air.range_query(black_box(q)).0.len()).sum::<usize>())
    });
    g.finish();
}

fn main() {
    regenerate();
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
