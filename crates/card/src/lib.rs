//! # ml4db-card — cardinality estimation and drift handling
//!
//! The estimation side of the tutorial's open problems: the classical
//! baseline lives in `ml4db-plan` ([`ml4db_plan::ClassicEstimator`]); this
//! crate adds the learned estimators behind the same
//! [`ml4db_plan::CardEstimator`] trait —
//!
//! * [`mscn::MscnEstimator`] — MSCN-style MLP over a set featurization
//!   (accurate, training-hungry);
//! * [`nngp::NngpEstimator`] — the lightweight Bayesian NNGP of Zhao et
//!   al. \[55\] (closed-form training, calibrated uncertainty; E14);
//!
//! and the machinery for **data & workload shifts** (E15):
//! [`drift::DriftDetector`] (KS-test alarm), [`drift::WarperAdapter`]
//! (recent-window fast adaptation \[20\]), and [`drift::DdupAdapter`]
//! (detect–distill–update \[19\]).

#![warn(missing_docs)]

pub mod drift;
pub mod features;
pub mod mscn;
pub mod nngp;

pub use drift::{DdupAdapter, DriftDetector, WarperAdapter};
pub use features::{query_features, QUERY_DIM};
pub use mscn::{collect_samples, CardSample, MscnEstimator};
pub use nngp::NngpEstimator;
