//! Handling data & workload shifts (open problem 2): drift detection via a
//! two-sample Kolmogorov–Smirnov test over prediction errors, Warper-style
//! fast adaptation on a recent window \[20\], and DDUp-style
//! detect–distill–update \[19\] that preserves old knowledge while absorbing
//! the new distribution.

use std::collections::VecDeque;

use rand::Rng;

use ml4db_plan::{CardEstimator, Query};
use ml4db_storage::Database;

use crate::mscn::{CardSample, MscnEstimator};

/// Two-sample Kolmogorov–Smirnov statistic (sup CDF distance).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        // Advance past ties on both sides together so equal samples never
        // create a spurious CDF gap.
        match sa[i].partial_cmp(&sb[j]).unwrap_or(std::cmp::Ordering::Equal) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let v = sa[i];
                while i < sa.len() && sa[i] == v {
                    i += 1;
                }
                while j < sb.len() && sb[j] == v {
                    j += 1;
                }
            }
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Online drift detector over a stream of model errors (log q-errors).
///
/// Keeps a frozen reference window from the stable period and a sliding
/// recent window; flags drift when the KS distance between them exceeds the
/// threshold.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    reference: Vec<f64>,
    recent: VecDeque<f64>,
    window: usize,
    /// KS distance above which drift is reported.
    pub threshold: f64,
}

impl DriftDetector {
    /// Creates a detector with the given window size and threshold.
    pub fn new(window: usize, threshold: f64) -> Self {
        Self {
            reference: Vec::new(),
            recent: VecDeque::with_capacity(window),
            window: window.max(4),
            threshold,
        }
    }

    /// Observes one error; returns `true` when drift is detected.
    pub fn observe(&mut self, error: f64) -> bool {
        if self.reference.len() < self.window {
            self.reference.push(error);
            return false;
        }
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(error);
        if self.recent.len() < self.window {
            return false;
        }
        let recent: Vec<f64> = self.recent.iter().copied().collect();
        ks_statistic(&self.reference, &recent) > self.threshold
    }

    /// Resets after adaptation: the recent window becomes the new reference.
    pub fn reset(&mut self) {
        self.reference = self.recent.iter().copied().collect();
        self.recent.clear();
    }

    /// Rebaselines from scratch: clears **both** windows, so the next
    /// `window` observations define a fresh reference. Unlike
    /// [`DriftDetector::reset`] — which promotes the drifted recent window
    /// to reference — this is the hook for a model that was *retrained*:
    /// its error distribution has nothing in common with either window,
    /// and keeping stale errors around would re-trip the alarm on a now
    /// healthy model.
    pub fn rebaseline(&mut self) {
        self.reference.clear();
        self.recent.clear();
    }
}

/// Warper-style adaptation \[20\]: keep a bounded buffer of the most recent
/// labeled queries and quickly refit the estimator on them when drift
/// fires, weighting recent experience only.
pub struct WarperAdapter {
    /// Recent labeled samples (the adaptation set).
    pub buffer: VecDeque<CardSample>,
    capacity: usize,
}

impl WarperAdapter {
    /// Creates an adapter holding at most `capacity` recent samples.
    pub fn new(capacity: usize) -> Self {
        Self { buffer: VecDeque::with_capacity(capacity), capacity: capacity.max(8) }
    }

    /// Records a freshly labeled sample.
    pub fn record(&mut self, sample: CardSample) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(sample);
    }

    /// Refits the estimator on the recent window (fast adaptation).
    pub fn adapt<R: Rng + ?Sized>(
        &self,
        db: &Database,
        model: &mut MscnEstimator,
        epochs: usize,
        rng: &mut R,
    ) {
        let samples: Vec<CardSample> = self.buffer.iter().cloned().collect();
        if samples.is_empty() {
            return;
        }
        model.fit(db, &samples, epochs, 0.005, rng);
    }
}

/// DDUp-style detect–distill–update \[19\]: when drift fires, train a fresh
/// model on the union of (a) new labeled samples and (b) *distilled*
/// samples — old-regime queries re-labeled by the old model — so knowledge
/// of the unchanged region survives the update.
pub struct DdupAdapter;

impl DdupAdapter {
    /// Produces distilled samples: `old_queries` labeled by `old_model`.
    pub fn distill(
        db: &Database,
        old_model: &MscnEstimator,
        old_queries: &[(Query, u64)],
    ) -> Vec<CardSample> {
        old_queries
            .iter()
            .map(|(q, mask)| CardSample {
                query: q.clone(),
                mask: *mask,
                card: old_model.estimate(db, q, *mask),
            })
            .collect()
    }

    /// Runs the full update: distill + union + retrain a new model.
    pub fn update<R: Rng + ?Sized>(
        db: &Database,
        old_model: &MscnEstimator,
        old_queries: &[(Query, u64)],
        new_samples: &[CardSample],
        epochs: usize,
        rng: &mut R,
    ) -> MscnEstimator {
        let mut data = Self::distill(db, old_model, old_queries);
        data.extend_from_slice(new_samples);
        let mut fresh = MscnEstimator::new(32, rng);
        fresh.fit(db, &data, epochs, 0.005, rng);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ks_zero_for_identical() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!(ks_statistic(&a, &a) < 1e-9);
    }

    #[test]
    fn ks_large_for_shifted() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..100).map(|i| 5.0 + i as f64 / 100.0).collect();
        assert!(ks_statistic(&a, &b) > 0.9);
    }

    #[test]
    fn detector_quiet_on_stationary_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = DriftDetector::new(30, 0.5);
        for _ in 0..200 {
            let e: f64 = rng.gen_range(0.0..1.0);
            assert!(!det.observe(e), "false positive on stationary stream");
        }
    }

    #[test]
    fn detector_fires_on_shift() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = DriftDetector::new(30, 0.5);
        for _ in 0..100 {
            det.observe(rng.gen_range(0.0..1.0));
        }
        let mut fired = false;
        for _ in 0..60 {
            if det.observe(rng.gen_range(4.0..6.0)) {
                fired = true;
                break;
            }
        }
        assert!(fired, "detector missed a large shift");
    }

    #[test]
    fn detector_reset_rebaselines() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = DriftDetector::new(20, 0.5);
        for _ in 0..60 {
            det.observe(rng.gen_range(0.0..1.0));
        }
        for _ in 0..40 {
            det.observe(rng.gen_range(4.0..5.0));
        }
        det.reset();
        // The shifted regime is now the baseline: no more alarms on it.
        let mut fired = false;
        for _ in 0..60 {
            fired |= det.observe(rng.gen_range(4.0..5.0));
        }
        assert!(!fired, "alarm after rebaselining");
    }

    #[test]
    fn rebaseline_clears_stale_errors_and_does_not_retrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut det = DriftDetector::new(20, 0.5);
        // Stable regime, then a shift that trips the detector.
        for _ in 0..40 {
            det.observe(rng.gen_range(0.0..1.0));
        }
        let mut fired = false;
        for _ in 0..40 {
            fired |= det.observe(rng.gen_range(4.0..5.0));
        }
        assert!(fired, "setup: shift must trip first");
        // The model retrains: its fresh errors are small again, matching
        // *neither* old window. After rebaseline the detector relearns its
        // reference from the new stream and stays quiet.
        det.rebaseline();
        let mut refired = false;
        for _ in 0..80 {
            refired |= det.observe(rng.gen_range(0.0..0.5));
        }
        assert!(!refired, "post-rebaseline observations must not re-trip");
    }

    #[test]
    fn warper_buffer_is_bounded() {
        let mut w = WarperAdapter::new(10);
        for i in 0..25 {
            w.record(CardSample {
                query: ml4db_plan::Query::new(&["t"]),
                mask: 1,
                card: i as f64,
            });
        }
        assert_eq!(w.buffer.len(), 10);
        assert_eq!(w.buffer.front().unwrap().card, 15.0);
    }
}
