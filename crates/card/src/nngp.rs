//! The lightweight NNGP cardinality estimator (Zhao et al. \[55\]): exact
//! Gaussian-process regression with the arc-cosine (infinite-width ReLU
//! network) kernel. Training is a single Cholesky factorization — "model
//! training in a few seconds" is the tutorial's model-efficiency point —
//! and the posterior variance gives calibrated uncertainty for free.

use ml4db_nn::bayes::{GaussianProcess, Kernel};
use ml4db_plan::{CardEstimator, Query};
use ml4db_storage::Database;

use crate::features::{card_to_target, query_features, target_to_card};
use crate::mscn::CardSample;

/// The NNGP estimator.
pub struct NngpEstimator {
    gp: GaussianProcess,
}

impl Default for NngpEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl NngpEstimator {
    /// Creates an unfitted estimator.
    pub fn new() -> Self {
        Self { gp: GaussianProcess::new(Kernel::ArcCos, 1e-3) }
    }

    /// Fits in closed form. Returns the wall-clock training time.
    pub fn fit(&mut self, db: &Database, samples: &[CardSample]) -> std::time::Duration {
        let start = std::time::Instant::now();
        let x: Vec<Vec<f32>> = samples
            .iter()
            .map(|s| query_features(db, &s.query, s.mask))
            .collect();
        let y: Vec<f32> = samples.iter().map(|s| card_to_target(s.card)).collect();
        self.gp.fit(&x, &y);
        start.elapsed()
    }

    /// Prediction with uncertainty: `(cardinality, std in log-target space)`.
    pub fn estimate_with_uncertainty(
        &self,
        db: &Database,
        query: &Query,
        mask: u64,
    ) -> (f64, f64) {
        let f = query_features(db, query, mask);
        let (mean, var) = self.gp.predict_with_variance(&f);
        (target_to_card(mean as f32).max(1.0), var.sqrt())
    }

    /// Number of stored training points (the "model size" of a GP).
    pub fn train_size(&self) -> usize {
        self.gp.train_size()
    }
}

impl CardEstimator for NngpEstimator {
    fn estimate(&self, db: &Database, query: &Query, mask: u64) -> f64 {
        self.estimate_with_uncertainty(db, query, mask).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mscn::collect_samples;
    use ml4db_nn::metrics::{q_error, q_error_summary};
    use ml4db_plan::TrueCardinality;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use ml4db_storage::CmpOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Database, Vec<Query>, Vec<Query>) {
        let mut rng = StdRng::seed_from_u64(9);
        let db = Database::analyze(
            joblite(&DatasetConfig { base_rows: 600, skew: 0.3, correlation: 0.8 }, &mut rng),
            &mut rng,
        );
        let mk = |i: usize| {
            ml4db_plan::Query::new(&["title"])
                .filter(0, "year", CmpOp::Ge, (1985 + (i * 11) % 35) as f64)
                .filter(0, "votes", CmpOp::Le, (2000 + (i * 517) % 9000) as f64)
        };
        let train: Vec<Query> = (0..50).map(mk).collect();
        let test: Vec<Query> = (50..75).map(mk).collect();
        (db, train, test)
    }

    #[test]
    fn trains_fast_and_predicts_well() {
        let (db, train, test) = setup();
        let samples = collect_samples(&db, &train);
        let mut gp = NngpEstimator::new();
        let dt = gp.fit(&db, &samples);
        assert!(dt.as_millis() < 2000, "NNGP training took {dt:?}");
        let oracle = TrueCardinality::new();
        let errs: Vec<f64> = test
            .iter()
            .map(|q| q_error(gp.estimate(&db, q, 1), oracle.estimate(&db, q, 1)))
            .collect();
        let s = q_error_summary(&errs).unwrap();
        assert!(s.median < 3.0, "median q-error {}", s.median);
    }

    #[test]
    fn uncertainty_larger_off_distribution() {
        let (db, train, _) = setup();
        let samples = collect_samples(&db, &train);
        let mut gp = NngpEstimator::new();
        gp.fit(&db, &samples);
        // In-distribution query.
        let q_in = ml4db_plan::Query::new(&["title"])
            .filter(0, "year", CmpOp::Ge, 2000.0)
            .filter(0, "votes", CmpOp::Le, 5000.0);
        // A structurally different query (join) never seen in training.
        let q_out = ml4db_plan::Query::new(&["title", "cast_info"])
            .join(0, "id", 1, "movie_id");
        let (_, s_in) = gp.estimate_with_uncertainty(&db, &q_in, 1);
        let (_, s_out) = gp.estimate_with_uncertainty(&db, &q_out, 0b11);
        assert!(
            s_out > s_in,
            "uncertainty should grow off-distribution: {s_out} !> {s_in}"
        );
    }
}
