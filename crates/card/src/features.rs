//! Query featurization for learned cardinality estimators — the MSCN-style
//! (table set, join set, predicate set) encoding, aggregated into a fixed
//! width so one model serves any sub-join of any query.

use ml4db_plan::{CardEstimator, ClassicEstimator, Query};
use ml4db_storage::{CmpOp, Database};

/// Hashed table-identity buckets.
const TABLE_BUCKETS: usize = 12;
/// Fixed feature width.
pub const QUERY_DIM: usize = TABLE_BUCKETS + 3 + 5 + 1;

fn table_bucket(name: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % TABLE_BUCKETS as u64) as usize
}

/// Featurizes the sub-query selected by `mask`.
///
/// Layout: table one-hots, [#tables, #joins, #predicates] (normalized),
/// predicate aggregates [mean sel, min sel, eq fraction, lt fraction,
/// gt fraction], and the classical estimate in log space — the "injected
/// statistics" channel that lets learned models start from the textbook
/// estimate and learn its correction.
pub fn query_features(db: &Database, query: &Query, mask: u64) -> Vec<f32> {
    let mut f = vec![0.0f32; QUERY_DIM];
    let mut n_tables = 0;
    for (t, tref) in query.tables.iter().enumerate() {
        if mask & (1 << t) != 0 {
            f[table_bucket(&tref.table)] = 1.0;
            n_tables += 1;
        }
    }
    let joins = query.edges_within(mask).len();
    let preds: Vec<_> = query
        .predicates
        .iter()
        .filter(|p| mask & (1 << p.table) != 0)
        .collect();
    let base = TABLE_BUCKETS;
    f[base] = n_tables as f32 / 6.0;
    f[base + 1] = joins as f32 / 5.0;
    f[base + 2] = preds.len() as f32 / 6.0;
    if !preds.is_empty() {
        let sels: Vec<f64> = preds
            .iter()
            .map(|p| ClassicEstimator::predicate_selectivity(db, query, p))
            .collect();
        f[base + 3] = (sels.iter().sum::<f64>() / sels.len() as f64) as f32;
        f[base + 4] = sels.iter().copied().fold(1.0, f64::min) as f32;
        let frac = |pred: fn(CmpOp) -> bool| {
            preds.iter().filter(|p| pred(p.op)).count() as f32 / preds.len() as f32
        };
        f[base + 5] = frac(|op| op == CmpOp::Eq);
        f[base + 6] = frac(|op| matches!(op, CmpOp::Lt | CmpOp::Le));
        f[base + 7] = frac(|op| matches!(op, CmpOp::Gt | CmpOp::Ge));
    }
    let classic = ClassicEstimator.estimate(db, query, mask);
    f[base + 8] = ((classic + 1.0).log10() / 7.0) as f32;
    f
}

/// Log-space target used by all learned estimators.
pub fn card_to_target(card: f64) -> f32 {
    ((card.max(0.0) + 1.0).log10() / 7.0) as f32
}

/// Inverse of [`card_to_target`].
pub fn target_to_card(t: f32) -> f64 {
    (10f64.powf(t as f64 * 7.0) - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> Database {
        let mut rng = StdRng::seed_from_u64(1);
        Database::analyze(
            joblite(&DatasetConfig { base_rows: 100, ..Default::default() }, &mut rng),
            &mut rng,
        )
    }

    #[test]
    fn feature_width_fixed() {
        let db = db();
        let q = ml4db_plan::Query::new(&["title", "cast_info"])
            .join(0, "id", 1, "movie_id")
            .filter(0, "year", CmpOp::Ge, 2000.0);
        assert_eq!(query_features(&db, &q, 0b11).len(), QUERY_DIM);
        assert_eq!(query_features(&db, &q, 0b01).len(), QUERY_DIM);
    }

    #[test]
    fn different_masks_different_features() {
        let db = db();
        let q = ml4db_plan::Query::new(&["title", "cast_info"]).join(0, "id", 1, "movie_id");
        assert_ne!(query_features(&db, &q, 0b01), query_features(&db, &q, 0b11));
    }

    #[test]
    fn target_roundtrip() {
        for c in [0.0, 1.0, 500.0, 1e6] {
            let back = target_to_card(card_to_target(c));
            assert!((back - c).abs() / (c + 1.0) < 0.01);
        }
    }
}
