//! An MSCN-style learned cardinality estimator: an MLP over the set-style
//! query featurization, trained on (sub-query, true cardinality) samples —
//! the "sophisticated, accurate, but training-hungry" end of the
//! model-efficiency spectrum the tutorial contrasts with NNGP (E14).

use rand::Rng;

use ml4db_nn::layers::{Activation, Mlp};
use ml4db_nn::optim::{Adam, Optimizer};
use ml4db_nn::{loss, Matrix, Trainable};
use ml4db_plan::{CardEstimator, Query};
use ml4db_storage::Database;

use crate::features::{card_to_target, query_features, target_to_card, QUERY_DIM};

/// A labeled training sample.
#[derive(Clone, Debug)]
pub struct CardSample {
    /// The query.
    pub query: Query,
    /// Sub-join mask.
    pub mask: u64,
    /// True cardinality.
    pub card: f64,
}

/// Collects training samples by executing sub-joins with the true-
/// cardinality oracle — the expensive trace collection the tutorial's
/// open-problem 4 wants to avoid.
pub fn collect_samples(db: &Database, queries: &[Query]) -> Vec<CardSample> {
    let oracle = ml4db_plan::TrueCardinality::new();
    let mut out = Vec::new();
    for q in queries {
        let full = q.full_mask();
        // All connected masks (queries are small).
        for mask in 1..=full {
            if q.is_connected(mask) {
                let card = oracle.estimate(db, q, mask);
                out.push(CardSample { query: q.clone(), mask, card });
            }
        }
    }
    out
}

/// The learned estimator.
pub struct MscnEstimator {
    model: Mlp,
}

impl MscnEstimator {
    /// Creates an untrained estimator.
    pub fn new<R: Rng + ?Sized>(hidden: usize, rng: &mut R) -> Self {
        Self { model: Mlp::new(&[QUERY_DIM, hidden, hidden, 1], Activation::LeakyRelu, rng) }
    }

    /// Trains on samples; returns the final epoch's mean loss.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        db: &Database,
        samples: &[CardSample],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        let feats: Vec<Vec<f32>> = samples
            .iter()
            .map(|s| query_features(db, &s.query, s.mask))
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| card_to_target(s.card)).collect();
        let mut opt = Adam::new(lr);
        let mut last = f32::MAX;
        for _ in 0..epochs {
            let mut order: Vec<usize> = (0..samples.len()).collect();
            use rand::seq::SliceRandom;
            order.shuffle(rng);
            let mut total = 0.0;
            for chunk in order.chunks(16) {
                self.model.zero_grad();
                let x = Matrix::from_rows(
                    &chunk.iter().map(|&i| feats[i].clone()).collect::<Vec<_>>(),
                );
                let t = Matrix::from_rows(
                    &chunk.iter().map(|&i| vec![targets[i]]).collect::<Vec<_>>(),
                );
                let (y, cache) = self.model.forward(&x);
                let (l, dy) = loss::huber(&y, &t, 0.1);
                total += l * chunk.len() as f32;
                self.model.backward(&cache, &dy);
                opt.step(&mut self.model.params_mut());
            }
            last = total / samples.len().max(1) as f32;
        }
        last
    }

    /// Number of scalar parameters.
    pub fn num_params(&mut self) -> usize {
        self.model.num_params()
    }
}

impl CardEstimator for MscnEstimator {
    fn estimate(&self, db: &Database, query: &Query, mask: u64) -> f64 {
        let f = query_features(db, query, mask);
        let y = self.model.predict(&Matrix::row(f));
        target_to_card(y[(0, 0)]).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4db_nn::metrics::{q_error, q_error_summary};
    use ml4db_plan::{ClassicEstimator, TrueCardinality};
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use ml4db_storage::CmpOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlated_db(rng: &mut StdRng) -> Database {
        Database::analyze(
            joblite(&DatasetConfig { base_rows: 800, skew: 0.2, correlation: 0.9 }, rng),
            rng,
        )
    }

    fn workload(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                let year = 1990 + (i * 7) % 30;
                let votes = 1000 + (i * 931) % 8000;
                ml4db_plan::Query::new(&["title"])
                    .filter(0, "year", CmpOp::Ge, year as f64)
                    .filter(0, "votes", CmpOp::Ge, votes as f64)
            })
            .collect()
    }

    #[test]
    fn learns_correlated_predicates_better_than_classic() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = correlated_db(&mut rng);
        let train = workload(60);
        let test = workload(97).split_off(60);
        let samples = collect_samples(&db, &train);
        let mut model = MscnEstimator::new(32, &mut rng);
        model.fit(&db, &samples, 60, 0.005, &mut rng);
        let oracle = TrueCardinality::new();
        let mut learned_err = Vec::new();
        let mut classic_err = Vec::new();
        for q in &test {
            let truth = oracle.estimate(&db, q, 1);
            learned_err.push(q_error(model.estimate(&db, q, 1), truth));
            classic_err.push(q_error(ClassicEstimator.estimate(&db, q, 1), truth));
        }
        let lq = q_error_summary(&learned_err).unwrap();
        let cq = q_error_summary(&classic_err).unwrap();
        assert!(
            lq.median <= cq.median,
            "learned median {} should beat classic {} on correlated data",
            lq.median,
            cq.median
        );
        assert!(lq.median < 3.0, "learned median q-error too high: {}", lq.median);
    }

    #[test]
    fn collect_samples_covers_connected_masks() {
        let mut rng = StdRng::seed_from_u64(6);
        let db = Database::analyze(
            joblite(&DatasetConfig { base_rows: 80, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let q = ml4db_plan::Query::new(&["title", "cast_info"]).join(0, "id", 1, "movie_id");
        let samples = collect_samples(&db, std::slice::from_ref(&q));
        // Masks: {title}, {cast_info}, {both}.
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|s| s.card >= 1.0));
    }
}
