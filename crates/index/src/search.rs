//! Last-mile search routines: error-bounded binary search around a model
//! prediction, a branch-free fixed-window search for small error bounds
//! (the phase-2 half of the two-phase lookup API), and exponential search
//! (the correction step ALEX \[6\] uses).

use crate::KeyValue;

/// Window width at or below which [`last_mile_search`] switches from
/// binary narrowing to a branch-free linear count. Two cache lines of
/// `KeyValue` entries: small enough that the counting loop (no
/// unpredictable branches, no loop-carried dependence on the comparison
/// result) beats the branchy binary tail.
pub const FIXED_WINDOW: usize = 16;

/// Binary search for `key` restricted to `entries[lo..=hi]` (clamped).
///
/// Returns `Ok(index)` when found, `Err(insertion_index)` otherwise — the
/// same contract as `slice::binary_search`.
pub fn bounded_binary_search(
    entries: &[KeyValue],
    key: u64,
    lo: usize,
    hi: usize,
) -> Result<usize, usize> {
    if entries.is_empty() {
        return Err(0);
    }
    let lo = lo.min(entries.len() - 1);
    let hi = hi.min(entries.len() - 1);
    let (lo, hi) = (lo.min(hi), lo.max(hi));
    match entries[lo..=hi].binary_search_by_key(&key, |e| e.0) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Branch-free search of the half-open window `entries[lo..hi]`: counts
/// entries below `key` with data-independent control flow (the comparison
/// result feeds an add, never a branch), then checks the landing slot.
///
/// Correct **only** when the window is a valid bracket — everything
/// before `lo` is `< key` and everything at or after `hi` is `> key` —
/// which is exactly the guarantee `predict_range` windows carry. Returns
/// the `slice::binary_search` contract over the *whole* array.
#[inline]
pub fn branchfree_window_search(
    entries: &[KeyValue],
    key: u64,
    lo: usize,
    hi: usize,
) -> Result<usize, usize> {
    let mut below = 0usize;
    for e in &entries[lo..hi] {
        below += usize::from(e.0 < key);
    }
    let pos = lo + below;
    if pos < hi && entries[pos].0 == key {
        Ok(pos)
    } else {
        Err(pos)
    }
}

/// Phase-2 search of a `predict_range` window `[lo, hi)`: binary-narrows
/// the window until it fits [`FIXED_WINDOW`], then finishes with the
/// branch-free count. Same bracket precondition and return contract as
/// [`branchfree_window_search`]; never allocates.
#[inline]
pub fn last_mile_search(
    entries: &[KeyValue],
    key: u64,
    lo: usize,
    hi: usize,
) -> Result<usize, usize> {
    let (mut lo, mut hi) = (lo.min(entries.len()), hi.min(entries.len()));
    while hi - lo > FIXED_WINDOW {
        let mid = lo + (hi - lo) / 2;
        match entries[mid].0.cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            // Entries are strictly sorted (unique keys), so a hit ends it.
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    branchfree_window_search(entries, key, lo, hi)
}

/// [`branchfree_window_search`] over a bare key column (no payloads) — the
/// layout secondary-index key arrays use. Same bracket precondition and
/// return contract.
#[inline]
pub fn branchfree_window_search_keys(
    keys: &[u64],
    key: u64,
    lo: usize,
    hi: usize,
) -> Result<usize, usize> {
    let mut below = 0usize;
    for &k in &keys[lo..hi] {
        below += usize::from(k < key);
    }
    let pos = lo + below;
    if pos < hi && keys[pos] == key {
        Ok(pos)
    } else {
        Err(pos)
    }
}

/// [`last_mile_search`] over a bare key column (no payloads).
#[inline]
pub fn last_mile_search_keys(
    keys: &[u64],
    key: u64,
    lo: usize,
    hi: usize,
) -> Result<usize, usize> {
    let (mut lo, mut hi) = (lo.min(keys.len()), hi.min(keys.len()));
    while hi - lo > FIXED_WINDOW {
        let mid = lo + (hi - lo) / 2;
        match keys[mid].cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    branchfree_window_search_keys(keys, key, lo, hi)
}

/// Exponential search outward from a predicted position.
///
/// Doubles the probe radius until the key is bracketed, then searches the
/// bracket. Cost is `O(log error)` rather than `O(log n)` — the reason
/// learned indexes with small model error beat plain binary search.
///
/// Every probe compares before widening: the right-hand walk clamps the
/// probe to `n - 1` and tests it, so a prediction far left of a large
/// array brackets `[last_failed_probe, first_passing_probe]` instead of
/// degrading to `[lo, n - 1]` (a near-full-window binary search), and a
/// key above every entry closes the bracket to width zero in `O(log n)`
/// probes with no binary tail at all.
///
/// Returns the same contract as `slice::binary_search`, plus the total
/// number of key comparisons performed — probe steps *and* the final
/// bracket's search — for instrumentation and regression tests.
pub fn exponential_search(
    entries: &[KeyValue],
    key: u64,
    predicted: usize,
) -> (Result<usize, usize>, usize) {
    if entries.is_empty() {
        return (Err(0), 0);
    }
    let n = entries.len();
    let pos = predicted.min(n - 1);
    let mut steps = 1usize;
    let at = entries[pos].0;
    if at == key {
        return (Ok(pos), steps);
    }
    let (mut lo, mut hi);
    if at < key {
        // Search right: clamp the probe into range and compare *before*
        // deciding the boundary, so the final bracket is always between
        // two compared probes.
        let mut radius = 1usize;
        lo = pos + 1;
        loop {
            steps += 1;
            let probe = pos.saturating_add(radius).min(n - 1);
            if entries[probe].0 >= key {
                hi = probe + 1;
                break;
            }
            lo = probe + 1;
            if probe == n - 1 {
                // Key above every entry: empty bracket at the end.
                hi = n;
                break;
            }
            radius *= 2;
        }
    } else {
        // Search left.
        let mut radius = 1usize;
        hi = pos;
        loop {
            steps += 1;
            let probe = pos - radius.min(pos);
            if entries[probe].0 <= key {
                lo = probe;
                break;
            }
            hi = probe;
            if probe == 0 {
                lo = 0;
                break;
            }
            radius *= 2;
        }
    }
    // Binary search the bracket, counting comparisons.
    while lo < hi {
        steps += 1;
        let mid = lo + (hi - lo) / 2;
        match entries[mid].0.cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return (Ok(mid), steps),
        }
    }
    (Err(lo), steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entries(n: u64) -> Vec<KeyValue> {
        (0..n).map(|k| (k * 2, k)).collect()
    }

    #[test]
    fn bounded_search_finds_in_window() {
        let e = entries(100);
        assert_eq!(bounded_binary_search(&e, 40, 15, 25), Ok(20));
        assert_eq!(bounded_binary_search(&e, 41, 15, 25), Err(21));
    }

    #[test]
    fn bounded_search_clamps_window() {
        let e = entries(10);
        assert_eq!(bounded_binary_search(&e, 4, 0, 10_000), Ok(2));
    }

    #[test]
    fn branchfree_window_matches_binary() {
        let e = entries(100);
        for key in 0..210u64 {
            let expected = e.binary_search_by_key(&key, |x| x.0);
            // Build a valid bracket around the answer.
            let at = match expected {
                Ok(i) => i,
                Err(i) => i,
            };
            let lo = at.saturating_sub(5);
            let hi = (at + 5).min(e.len());
            assert_eq!(branchfree_window_search(&e, key, lo, hi), expected, "key {key}");
        }
    }

    #[test]
    fn last_mile_handles_wide_and_empty_windows() {
        let e = entries(10_000);
        assert_eq!(last_mile_search(&e, 5000, 0, e.len()), Ok(2500));
        assert_eq!(last_mile_search(&e, 5001, 0, e.len()), Err(2501));
        // Empty window at the end: key above everything.
        assert_eq!(last_mile_search(&e, u64::MAX, e.len(), e.len()), Err(e.len()));
    }

    #[test]
    fn exponential_search_exact_prediction() {
        let e = entries(1000);
        let (r, steps) = exponential_search(&e, 500, 250);
        assert_eq!(r, Ok(250));
        assert_eq!(steps, 1);
    }

    #[test]
    fn exponential_search_off_prediction() {
        let e = entries(1000);
        // True position 250, predict 600 → must search left.
        let (r, _) = exponential_search(&e, 500, 600);
        assert_eq!(r, Ok(250));
        // Predict 0 → must search right.
        let (r, _) = exponential_search(&e, 500, 0);
        assert_eq!(r, Ok(250));
    }

    #[test]
    fn exponential_search_missing_key() {
        let e = entries(100);
        let (r, _) = exponential_search(&e, 41, 10);
        assert_eq!(r, Err(21));
    }

    #[test]
    fn exponential_search_fewer_steps_for_better_prediction() {
        let e = entries(100_000);
        let (_, near) = exponential_search(&e, 100_000, 50_010);
        let (_, far) = exponential_search(&e, 100_000, 10);
        assert!(near < far, "near {near} !< far {far}");
    }

    #[test]
    fn right_probe_compares_before_widening() {
        // Regression for the unclamped right probe: predicting 0 for a
        // key above every entry used to break to `hi = n - 1` without
        // comparing, leaving a [n/2, n-1] bracket to binary-search. With
        // compare-before-widen the bracket closes to width zero, so total
        // comparisons stay within the doubling probes plus a constant.
        let n = 1u64 << 16;
        let e = entries(n);
        let (r, steps) = exponential_search(&e, 2 * n + 100, 0);
        assert_eq!(r, Err(n as usize));
        let probe_budget = (n as f64).log2().ceil() as usize + 3;
        assert!(
            steps <= probe_budget,
            "steps {steps} exceed probe budget {probe_budget}: the final \
             bracket degraded to a wide binary search"
        );
    }

    #[test]
    fn right_probe_bracket_is_tight_for_interior_keys() {
        // Prediction far left, true position interior: the bracket binary
        // search must cost O(log distance), not O(log n). Distance 1000
        // from prediction 0 needs ~10 doubling probes and ~10 bracket
        // comparisons; the pre-fix worst case paid ~16 extra on the
        // [lo, n-1] bracket when the doubling overran the array end.
        let e = entries(1 << 16);
        let (r, steps) = exponential_search(&e, 2 * 1000, 0);
        assert_eq!(r, Ok(1000));
        assert!(steps <= 25, "steps {steps} not O(log distance)");
    }

    proptest! {
        /// Exponential search from any starting position agrees with plain
        /// binary search.
        #[test]
        fn matches_binary_search(
            keys in proptest::collection::btree_set(0u64..10_000, 1..300),
            probe in 0u64..10_000,
            start in 0usize..400,
        ) {
            let e: Vec<KeyValue> = keys.iter().map(|&k| (k, k)).collect();
            let expected = e.binary_search_by_key(&probe, |x| x.0);
            let (got, _) = exponential_search(&e, probe, start);
            prop_assert_eq!(got, expected);
        }

        /// The branch-free last mile agrees with binary search for any
        /// valid bracket around the answer.
        #[test]
        fn last_mile_matches_binary_search(
            keys in proptest::collection::btree_set(0u64..10_000, 1..300),
            probe in 0u64..10_000,
            slack in 0usize..40,
        ) {
            let e: Vec<KeyValue> = keys.iter().map(|&k| (k, k)).collect();
            let expected = e.binary_search_by_key(&probe, |x| x.0);
            let at = match expected { Ok(i) | Err(i) => i };
            let lo = at.saturating_sub(slack);
            let hi = (at + slack + 1).min(e.len()).max(at);
            prop_assert_eq!(last_mile_search(&e, probe, lo, hi), expected);
        }
    }
}
