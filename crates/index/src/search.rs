//! Last-mile search routines: error-bounded binary search around a model
//! prediction and exponential search (the correction step ALEX \[6\] uses).

use crate::KeyValue;

/// Binary search for `key` restricted to `entries[lo..=hi]` (clamped).
///
/// Returns `Ok(index)` when found, `Err(insertion_index)` otherwise — the
/// same contract as `slice::binary_search`.
pub fn bounded_binary_search(
    entries: &[KeyValue],
    key: u64,
    lo: usize,
    hi: usize,
) -> Result<usize, usize> {
    if entries.is_empty() {
        return Err(0);
    }
    let lo = lo.min(entries.len() - 1);
    let hi = hi.min(entries.len() - 1);
    let (lo, hi) = (lo.min(hi), lo.max(hi));
    match entries[lo..=hi].binary_search_by_key(&key, |e| e.0) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Exponential search outward from a predicted position.
///
/// Doubles the probe radius until the key is bracketed, then binary-searches
/// the bracket. Cost is `O(log error)` rather than `O(log n)` — the reason
/// learned indexes with small model error beat plain binary search.
///
/// Returns the same contract as `slice::binary_search`, plus the number of
/// probe steps taken (for instrumentation).
pub fn exponential_search(
    entries: &[KeyValue],
    key: u64,
    predicted: usize,
) -> (Result<usize, usize>, usize) {
    if entries.is_empty() {
        return (Err(0), 0);
    }
    let n = entries.len();
    let pos = predicted.min(n - 1);
    let mut steps = 1usize;
    let at = entries[pos].0;
    if at == key {
        return (Ok(pos), steps);
    }
    let (mut lo, mut hi);
    if at < key {
        // Search right.
        let mut radius = 1usize;
        lo = pos;
        loop {
            steps += 1;
            let probe = pos.saturating_add(radius);
            if probe >= n - 1 {
                hi = n - 1;
                break;
            }
            if entries[probe].0 >= key {
                hi = probe;
                break;
            }
            lo = probe;
            radius *= 2;
        }
    } else {
        // Search left.
        let mut radius = 1usize;
        hi = pos;
        loop {
            steps += 1;
            if radius > pos {
                lo = 0;
                break;
            }
            let probe = pos - radius;
            if entries[probe].0 <= key {
                lo = probe;
                break;
            }
            hi = probe;
            radius *= 2;
        }
    }
    (bounded_binary_search(entries, key, lo, hi), steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entries(n: u64) -> Vec<KeyValue> {
        (0..n).map(|k| (k * 2, k)).collect()
    }

    #[test]
    fn bounded_search_finds_in_window() {
        let e = entries(100);
        assert_eq!(bounded_binary_search(&e, 40, 15, 25), Ok(20));
        assert_eq!(bounded_binary_search(&e, 41, 15, 25), Err(21));
    }

    #[test]
    fn bounded_search_clamps_window() {
        let e = entries(10);
        assert_eq!(bounded_binary_search(&e, 4, 0, 10_000), Ok(2));
    }

    #[test]
    fn exponential_search_exact_prediction() {
        let e = entries(1000);
        let (r, steps) = exponential_search(&e, 500, 250);
        assert_eq!(r, Ok(250));
        assert_eq!(steps, 1);
    }

    #[test]
    fn exponential_search_off_prediction() {
        let e = entries(1000);
        // True position 250, predict 600 → must search left.
        let (r, _) = exponential_search(&e, 500, 600);
        assert_eq!(r, Ok(250));
        // Predict 0 → must search right.
        let (r, _) = exponential_search(&e, 500, 0);
        assert_eq!(r, Ok(250));
    }

    #[test]
    fn exponential_search_missing_key() {
        let e = entries(100);
        let (r, _) = exponential_search(&e, 41, 10);
        assert_eq!(r, Err(21));
    }

    #[test]
    fn exponential_search_fewer_steps_for_better_prediction() {
        let e = entries(100_000);
        let (_, near) = exponential_search(&e, 100_000, 50_010);
        let (_, far) = exponential_search(&e, 100_000, 10);
        assert!(near < far, "near {near} !< far {far}");
    }

    proptest! {
        /// Exponential search from any starting position agrees with plain
        /// binary search.
        #[test]
        fn matches_binary_search(
            keys in proptest::collection::btree_set(0u64..10_000, 1..300),
            probe in 0u64..10_000,
            start in 0usize..400,
        ) {
            let e: Vec<KeyValue> = keys.iter().map(|&k| (k, k)).collect();
            let expected = e.binary_search_by_key(&probe, |x| x.0);
            let (got, _) = exponential_search(&e, probe, start);
            prop_assert_eq!(got, expected);
        }
    }
}
