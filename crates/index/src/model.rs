//! Linear key→position models — the atoms of every learned index.
//!
//! Models are anchored at a base key (`key0`) and fit/predict in
//! **key-offset space**: `pos ≈ slope * (key - key0) + intercept`. The
//! offset `key - key0` is computed exactly in `u64` before the `f64`
//! conversion, so segments over large-magnitude keys (near `2^53` and
//! beyond, where `key as f64` rounds) keep full precision as long as the
//! segment's key *span* fits in a `f64` mantissa — which it does for any
//! segment a learned index would build.

use crate::KeyValue;

/// A linear model `pos ≈ slope * (key - key0) + intercept` over `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearModel {
    /// Slope, in positions per key unit.
    pub slope: f64,
    /// Predicted position at `key == key0`.
    pub intercept: f64,
    /// Anchor key; predictions are computed in offsets from it.
    pub key0: u64,
}

impl LinearModel {
    /// Identity-ish model mapping everything to position 0.
    pub fn flat() -> Self {
        Self { slope: 0.0, intercept: 0.0, key0: 0 }
    }

    /// Signed `f64` offset of `key` from the anchor, exact whenever the
    /// magnitude of the difference fits a mantissa.
    #[inline]
    fn offset(&self, key: u64) -> f64 {
        if key >= self.key0 {
            (key - self.key0) as f64
        } else {
            -((self.key0 - key) as f64)
        }
    }

    /// Least-squares fit of positions `0..n` against the given sorted keys,
    /// anchored at `keys[0]`.
    pub fn fit_positions(keys: &[u64]) -> Self {
        let n = keys.len();
        if n == 0 {
            return Self::flat();
        }
        let key0 = keys[0];
        if n == 1 {
            return Self { slope: 0.0, intercept: 0.0, key0 };
        }
        // Offsets from the first key are exact in u64, then convert.
        let xs: Vec<f64> = keys.iter().map(|&k| (k - key0) as f64).collect();
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = (n as f64 - 1.0) / 2.0;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            cov += (x - mean_x) * (i as f64 - mean_y);
            var += (x - mean_x) * (x - mean_x);
        }
        if var == 0.0 {
            return Self { slope: 0.0, intercept: mean_y, key0 };
        }
        let slope = cov / var;
        Self { slope, intercept: mean_y - slope * mean_x, key0 }
    }

    /// Fits the line through two `(key, position)` anchor points.
    pub fn through(a: (u64, f64), b: (u64, f64)) -> Self {
        if a.0 == b.0 {
            return Self { slope: 0.0, intercept: a.1, key0: a.0 };
        }
        let (lo, hi) = if a.0 < b.0 { (a, b) } else { (b, a) };
        let slope = (hi.1 - lo.1) / ((hi.0 - lo.0) as f64);
        Self { slope, intercept: lo.1, key0: lo.0 }
    }

    /// Predicted (unclamped, real-valued) position for a key.
    #[inline]
    pub fn predict_f(&self, key: u64) -> f64 {
        self.slope * self.offset(key) + self.intercept
    }

    /// Predicted position clamped to `[0, n)`.
    ///
    /// The clamp-to-`n - 1` is an *array access* guard, not a search
    /// bound: a key above every trained key predicts `n - 1` here, and
    /// two-phase windows built from it must extend one past the clamp
    /// (`hi = pred + err + 1`, half-open) so the insertion point `n`
    /// stays inside the window — see `TwoPhaseIndex::predict_range`.
    #[inline]
    pub fn predict(&self, key: u64, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let p = self.predict_f(key);
        if p <= 0.0 {
            0
        } else if p >= (n - 1) as f64 {
            n - 1
        } else {
            p as usize
        }
    }

    /// Maximum absolute prediction error over sorted keys at their true
    /// positions. The error bound learned indexes search within.
    pub fn max_error(&self, keys: &[u64]) -> usize {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| {
                let p = self.predict(k, keys.len());
                p.abs_diff(i)
            })
            .max()
            .unwrap_or(0)
    }
}

/// Extracts the sorted key column from key-value entries.
pub fn keys_of(entries: &[KeyValue]) -> Vec<u64> {
    entries.iter().map(|e| e.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_perfectly_linear_keys() {
        let keys: Vec<u64> = (0..100).map(|i| 10 + i * 5).collect();
        let m = LinearModel::fit_positions(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.predict(k, keys.len()), i, "key {k}");
        }
        assert_eq!(m.max_error(&keys), 0);
    }

    #[test]
    fn fit_handles_duplicated_plateau() {
        let keys = vec![5u64; 10];
        let m = LinearModel::fit_positions(&keys);
        let p = m.predict(5, 10);
        assert!(p < 10);
    }

    #[test]
    fn predict_clamps() {
        let keys: Vec<u64> = (100..200).collect();
        let m = LinearModel::fit_positions(&keys);
        assert_eq!(m.predict(0, keys.len()), 0);
        assert_eq!(m.predict(10_000, keys.len()), keys.len() - 1);
    }

    #[test]
    fn through_two_points() {
        let m = LinearModel::through((10, 0.0), (20, 10.0));
        assert!((m.predict_f(15) - 5.0).abs() < 1e-9);
        // Reversed anchor order fits the same line.
        let r = LinearModel::through((20, 10.0), (10, 0.0));
        assert!((r.predict_f(15) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn max_error_reflects_curvature() {
        // A quadratic CDF has non-zero linear-fit error.
        let keys: Vec<u64> = (0..100u64).map(|i| i * i).collect();
        let m = LinearModel::fit_positions(&keys);
        assert!(m.max_error(&keys) > 0);
    }

    #[test]
    fn large_magnitude_keys_keep_precision() {
        // Keys near u64::MAX with unit spacing: `key as f64` rounds to
        // multiples of 2048 up there, which made the pre-offset-space fit
        // degenerate (all xs identical → flat model, error ≈ n). In
        // offset space the fit is exact.
        let base = u64::MAX - 1000;
        let keys: Vec<u64> = (0..500).map(|i| base + i * 2).collect();
        let m = LinearModel::fit_positions(&keys);
        assert_eq!(
            m.max_error(&keys),
            0,
            "offset-space fit must be exact on large-magnitude linear keys"
        );
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.predict(k, keys.len()), i, "key {k}");
        }
    }

    #[test]
    fn large_magnitude_keys_near_2_pow_53() {
        // The boundary where f64 loses integer exactness.
        let base = (1u64 << 53) + 12_345;
        let keys: Vec<u64> = (0..300).map(|i| base + i * 3).collect();
        let m = LinearModel::fit_positions(&keys);
        assert_eq!(m.max_error(&keys), 0);
        // `through` anchored in offset space is exact too.
        let t = LinearModel::through((keys[0], 0.0), (keys[299], 299.0));
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.predict(k, keys.len()), i);
        }
    }
}
