//! Linear key→position models — the atoms of every learned index.

use crate::KeyValue;

/// A linear model `pos ≈ slope * key + intercept` over `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearModel {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
}

impl LinearModel {
    /// Identity-ish model mapping everything to position 0.
    pub fn flat() -> Self {
        Self { slope: 0.0, intercept: 0.0 }
    }

    /// Least-squares fit of positions `0..n` against the given sorted keys.
    pub fn fit_positions(keys: &[u64]) -> Self {
        let n = keys.len();
        if n == 0 {
            return Self::flat();
        }
        if n == 1 {
            return Self { slope: 0.0, intercept: 0.0 };
        }
        let xs: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = (n as f64 - 1.0) / 2.0;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            cov += (x - mean_x) * (i as f64 - mean_y);
            var += (x - mean_x) * (x - mean_x);
        }
        if var == 0.0 {
            return Self { slope: 0.0, intercept: mean_y };
        }
        let slope = cov / var;
        Self { slope, intercept: mean_y - slope * mean_x }
    }

    /// Fits the line through two `(key, position)` anchor points.
    pub fn through(a: (u64, f64), b: (u64, f64)) -> Self {
        if a.0 == b.0 {
            return Self { slope: 0.0, intercept: a.1 };
        }
        let slope = (b.1 - a.1) / (b.0 as f64 - a.0 as f64);
        Self { slope, intercept: a.1 - slope * a.0 as f64 }
    }

    /// Predicted (unclamped, real-valued) position for a key.
    #[inline]
    pub fn predict_f(&self, key: u64) -> f64 {
        self.slope * key as f64 + self.intercept
    }

    /// Predicted position clamped to `[0, n)`.
    #[inline]
    pub fn predict(&self, key: u64, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let p = self.predict_f(key);
        if p <= 0.0 {
            0
        } else if p >= (n - 1) as f64 {
            n - 1
        } else {
            p as usize
        }
    }

    /// Maximum absolute prediction error over sorted keys at their true
    /// positions. The error bound learned indexes search within.
    pub fn max_error(&self, keys: &[u64]) -> usize {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| {
                let p = self.predict(k, keys.len());
                p.abs_diff(i)
            })
            .max()
            .unwrap_or(0)
    }
}

/// Extracts the sorted key column from key-value entries.
pub fn keys_of(entries: &[KeyValue]) -> Vec<u64> {
    entries.iter().map(|e| e.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_perfectly_linear_keys() {
        let keys: Vec<u64> = (0..100).map(|i| 10 + i * 5).collect();
        let m = LinearModel::fit_positions(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.predict(k, keys.len()), i, "key {k}");
        }
        assert_eq!(m.max_error(&keys), 0);
    }

    #[test]
    fn fit_handles_duplicated_plateau() {
        let keys = vec![5u64; 10];
        let m = LinearModel::fit_positions(&keys);
        let p = m.predict(5, 10);
        assert!(p < 10);
    }

    #[test]
    fn predict_clamps() {
        let keys: Vec<u64> = (100..200).collect();
        let m = LinearModel::fit_positions(&keys);
        assert_eq!(m.predict(0, keys.len()), 0);
        assert_eq!(m.predict(10_000, keys.len()), keys.len() - 1);
    }

    #[test]
    fn through_two_points() {
        let m = LinearModel::through((10, 0.0), (20, 10.0));
        assert!((m.predict_f(15) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn max_error_reflects_curvature() {
        // A quadratic CDF has non-zero linear-fit error.
        let keys: Vec<u64> = (0..100u64).map(|i| i * i).collect();
        let m = LinearModel::fit_positions(&keys);
        assert!(m.max_error(&keys) > 0);
    }
}
