//! A from-scratch B+Tree — the classical structure the first learned index
//! (RMI \[17\]) proposed to replace, and the baseline of experiments E1/E2.

use crate::{KeyValue, MutableIndex, OrderedIndex};

/// Maximum number of keys per node (fan-out − 1).
const ORDER: usize = 32;

#[derive(Clone, Debug)]
enum Node {
    Internal { keys: Vec<u64>, children: Vec<Box<Node>> },
    Leaf { entries: Vec<KeyValue> },
}

/// An in-memory B+Tree over `u64` keys with `u64` payloads.
///
/// Keys are unique: inserting an existing key overwrites its value, as in a
/// primary-key index.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    root: Box<Node>,
    len: usize,
    height: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self { root: Box::new(Node::Leaf { entries: Vec::new() }), len: 0, height: 1 }
    }

    /// Bulk-loads a tree from sorted, deduplicated `(key, value)` pairs.
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not strictly sorted by key.
    pub fn bulk_load(entries: &[KeyValue]) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "bulk_load: unsorted input");
        let mut tree = Self::new();
        if entries.is_empty() {
            return tree;
        }
        // Fill leaves at ~2/3 occupancy, then build internal levels.
        let per_leaf = (ORDER * 2 / 3).max(1);
        let mut level: Vec<(u64, Box<Node>)> = entries
            .chunks(per_leaf)
            .map(|chunk| (chunk[0].0, Box::new(Node::Leaf { entries: chunk.to_vec() })))
            .collect();
        let mut height = 1;
        while level.len() > 1 {
            let per_node = (ORDER * 2 / 3).max(2);
            level = level
                .chunks(per_node)
                .map(|group| {
                    let min_key = group[0].0;
                    let keys = group[1..].iter().map(|(k, _)| *k).collect();
                    let children = group.iter().map(|(_, n)| n.clone()).collect();
                    (min_key, Box::new(Node::Internal { keys, children }))
                })
                .collect();
            height += 1;
        }
        tree.root = level.pop().expect("non-empty level").1;
        tree.len = entries.len();
        tree.height = height;
        tree
    }

    /// Tree height (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    fn insert_rec(node: &mut Node, key: u64, value: u64) -> (bool, Option<(u64, Box<Node>)>) {
        match node {
            Node::Leaf { entries } => {
                match entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        entries[i].1 = value;
                        (false, None)
                    }
                    Err(i) => {
                        entries.insert(i, (key, value));
                        if entries.len() > ORDER {
                            let right = entries.split_off(entries.len() / 2);
                            let sep = right[0].0;
                            (true, Some((sep, Box::new(Node::Leaf { entries: right }))))
                        } else {
                            (true, None)
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let (inserted, split) = Self::insert_rec(&mut children[idx], key, value);
                if let Some((sep, new_child)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, new_child);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let up_key = keys[mid];
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove up_key from the left node
                        let right_children = children.split_off(mid + 1);
                        let right = Box::new(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        return (inserted, Some((up_key, right)));
                    }
                }
                (inserted, None)
            }
        }
    }

    fn collect_range(node: &Node, lo: u64, hi: u64, out: &mut Vec<KeyValue>) {
        match node {
            Node::Leaf { entries } => {
                let start = entries.partition_point(|e| e.0 < lo);
                for e in &entries[start..] {
                    if e.0 > hi {
                        break;
                    }
                    out.push(*e);
                }
            }
            Node::Internal { keys, children } => {
                let start = keys.partition_point(|&k| k <= lo);
                // Descend into every child whose key range intersects [lo, hi].
                let start = start.min(children.len() - 1);
                for (i, child) in children.iter().enumerate().skip(start) {
                    if i > 0 && keys[i - 1] > hi {
                        break;
                    }
                    Self::collect_range(child, lo, hi, out);
                }
            }
        }
    }

    /// Validates B+Tree invariants (sorted keys, separator correctness).
    /// Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        fn check(node: &Node, lo: Option<u64>, hi: Option<u64>) -> Result<(), String> {
            match node {
                Node::Leaf { entries } => {
                    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
                        return Err("unsorted leaf".into());
                    }
                    for e in entries {
                        if lo.is_some_and(|l| e.0 < l) || hi.is_some_and(|h| e.0 >= h) {
                            return Err(format!("leaf key {} outside ({lo:?},{hi:?})", e.0));
                        }
                    }
                    Ok(())
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return Err("child/key count mismatch".into());
                    }
                    if !keys.windows(2).all(|w| w[0] < w[1]) {
                        return Err("unsorted internal keys".into());
                    }
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                        check(child, clo, chi)?;
                    }
                    Ok(())
                }
            }
        }
        check(&self.root, None, None)
    }
}

impl OrderedIndex for BPlusTree {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: u64) -> Option<u64> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|i| entries[i].1);
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(&key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        let mut out = Vec::new();
        if lo <= hi {
            Self::collect_range(&self.root, lo, hi, &mut out);
        }
        out
    }

    fn size_bytes(&self) -> usize {
        fn node_size(node: &Node) -> usize {
            match node {
                Node::Leaf { entries } => {
                    std::mem::size_of::<Node>() + entries.capacity() * std::mem::size_of::<KeyValue>()
                }
                Node::Internal { keys, children } => {
                    std::mem::size_of::<Node>()
                        + keys.capacity() * 8
                        + children.capacity() * std::mem::size_of::<Box<Node>>()
                        + children.iter().map(|c| node_size(c)).sum::<usize>()
                }
            }
        }
        node_size(&self.root)
    }
}

impl MutableIndex for BPlusTree {
    fn insert(&mut self, key: u64, value: u64) {
        let (inserted, split) = BPlusTree::insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(
                &mut self.root,
                Box::new(Node::Leaf { entries: Vec::new() }),
            );
            self.root = Box::new(Node::Internal { keys: vec![sep], children: vec![old_root, right] });
            self.height += 1;
        }
        if inserted {
            self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(4), None);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut t = BPlusTree::new();
        t.insert(1, 10);
        t.insert(1, 20);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(20));
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<KeyValue> = (0..1000u64).map(|k| (k * 3, k)).collect();
        let bulk = BPlusTree::bulk_load(&entries);
        bulk.validate().unwrap();
        let mut inc = BPlusTree::new();
        for &(k, v) in &entries {
            inc.insert(k, v);
        }
        inc.validate().unwrap();
        for &(k, v) in &entries {
            assert_eq!(bulk.get(k), Some(v));
            assert_eq!(inc.get(k), Some(v));
            assert_eq!(bulk.get(k + 1), None);
        }
        assert_eq!(bulk.len(), 1000);
    }

    #[test]
    fn range_scan() {
        let entries: Vec<KeyValue> = (0..500u64).map(|k| (k * 2, k)).collect();
        let t = BPlusTree::bulk_load(&entries);
        let r = t.range(10, 20);
        assert_eq!(r, vec![(10, 5), (12, 6), (14, 7), (16, 8), (18, 9), (20, 10)]);
        assert!(t.range(999_999, 1_000_000).is_empty());
        assert!(t.range(20, 10).is_empty(), "inverted range is empty");
    }

    #[test]
    fn height_grows_logarithmically() {
        let entries: Vec<KeyValue> = (0..100_000u64).map(|k| (k, k)).collect();
        let t = BPlusTree::bulk_load(&entries);
        assert!(t.height() <= 5, "height {} too tall", t.height());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The B+Tree must agree with the standard-library BTreeMap oracle
        /// under random insert workloads, and keep its invariants.
        #[test]
        fn matches_btreemap_oracle(ops in proptest::collection::vec((0u64..2000, 0u64..1000), 1..400)) {
            let mut tree = BPlusTree::new();
            let mut oracle = BTreeMap::new();
            for (k, v) in ops {
                tree.insert(k, v);
                oracle.insert(k, v);
            }
            tree.validate().unwrap();
            prop_assert_eq!(tree.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(tree.get(k), Some(v));
            }
            // Ranges agree too.
            let r = tree.range(250, 750);
            let expected: Vec<KeyValue> =
                oracle.range(250..=750).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(r, expected);
        }
    }
}
