//! RadixSpline (Kipf et al. \[16\]): a single-pass learned index made of an
//! error-bounded greedy spline over the CDF plus a radix table over key
//! prefixes that narrows the spline-segment search.

use crate::{KeyValue, OrderedIndex, TwoPhaseIndex};

/// A spline knot: a `(key, position)` point the spline interpolates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Knot {
    /// Key coordinate.
    pub key: u64,
    /// Position coordinate.
    pub pos: usize,
}

/// Builds an error-bounded greedy spline: between consecutive knots, linear
/// interpolation of any member key's position errs by at most `epsilon`.
///
/// Single pass, maintaining the cone of feasible slopes from the last knot
/// (the GreedySplineCorridor algorithm).
pub fn build_spline(keys: &[u64], epsilon: usize) -> Vec<Knot> {
    let n = keys.len();
    let mut knots = Vec::new();
    if n == 0 {
        return knots;
    }
    knots.push(Knot { key: keys[0], pos: 0 });
    if n == 1 {
        return knots;
    }
    let eps = epsilon as f64;
    let mut base = 0usize; // index of the last knot
    let (mut slope_lo, mut slope_hi) = (f64::NEG_INFINITY, f64::INFINITY);
    let mut prev = 0usize;
    for i in 1..n {
        let dx = (keys[i] - keys[base]) as f64;
        if dx == 0.0 {
            continue;
        }
        let dy = (i - base) as f64;
        let lo = (dy - eps) / dx;
        let hi = (dy + eps) / dx;
        let new_lo = slope_lo.max(lo);
        let new_hi = slope_hi.min(hi);
        if new_lo > new_hi {
            // The previous point becomes a knot; restart the corridor.
            knots.push(Knot { key: keys[prev], pos: prev });
            base = prev;
            let dx2 = (keys[i] - keys[base]) as f64;
            let dy2 = (i - base) as f64;
            if dx2 > 0.0 {
                slope_lo = (dy2 - eps) / dx2;
                slope_hi = (dy2 + eps) / dx2;
            } else {
                slope_lo = f64::NEG_INFINITY;
                slope_hi = f64::INFINITY;
            }
        } else {
            slope_lo = new_lo;
            slope_hi = new_hi;
        }
        prev = i;
    }
    let last = Knot { key: keys[n - 1], pos: n - 1 };
    if knots.last() != Some(&last) {
        knots.push(last);
    }
    knots
}

/// A RadixSpline index over a static sorted array.
///
/// Knots are stored as two parallel arrays (keys, positions) so the radix
/// narrowing and the knot binary search stream through dense `u64`s rather
/// than 16-byte AoS records.
#[derive(Clone, Debug)]
pub struct RadixSpline {
    entries: Vec<KeyValue>,
    knot_keys: Vec<u64>,
    knot_pos: Vec<u32>,
    epsilon: usize,
    /// Radix table: for prefix `p`, `radix[p]` is the index of the first
    /// knot whose shifted key is `>= p`.
    radix: Vec<u32>,
    shift: u32,
    min_key: u64,
}

/// Number of radix bits for the prefix table.
const RADIX_BITS: u32 = 12;

impl RadixSpline {
    /// Builds the index with error bound `epsilon` from sorted entries.
    pub fn build(entries: Vec<KeyValue>, epsilon: usize) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "RadixSpline::build: unsorted input"
        );
        assert!(entries.len() <= u32::MAX as usize, "RadixSpline: > u32::MAX entries");
        let epsilon = epsilon.max(1);
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let knots = build_spline(&keys, epsilon);
        // The greedy corridor keeps chords *close* to ε but a chord can
        // slightly exceed it; measure the true bound so search is always
        // correct.
        let epsilon = {
            let mut ki = 0usize;
            let mut max_err = epsilon;
            for (i, &k) in keys.iter().enumerate() {
                while ki + 1 < knots.len() && knots[ki + 1].key <= k {
                    ki += 1;
                }
                let a = knots[ki];
                let pred = if ki + 1 < knots.len() && knots[ki + 1].key > a.key {
                    let b = knots[ki + 1];
                    a.pos as f64
                        + (k - a.key) as f64 / (b.key - a.key) as f64 * (b.pos - a.pos) as f64
                } else {
                    a.pos as f64
                };
                let err = (pred - i as f64).abs().ceil() as usize;
                max_err = max_err.max(err);
            }
            max_err
        };
        let min_key = keys.first().copied().unwrap_or(0);
        let max_key = keys.last().copied().unwrap_or(0);
        let domain = max_key.saturating_sub(min_key).max(1);
        // Shift so the domain fits RADIX_BITS bits.
        let needed_bits = 64 - domain.leading_zeros();
        let shift = needed_bits.saturating_sub(RADIX_BITS);
        let table_size = ((domain >> shift) + 2) as usize;
        let mut radix = vec![0u32; table_size + 1];
        {
            // radix[p] = first knot index with prefix(key) >= p.
            let mut knot_idx = 0usize;
            for (p, slot) in radix.iter_mut().enumerate() {
                while knot_idx < knots.len()
                    && (((knots[knot_idx].key - min_key) >> shift) as usize) < p
                {
                    knot_idx += 1;
                }
                *slot = knot_idx as u32;
            }
        }
        let knot_keys = knots.iter().map(|k| k.key).collect();
        let knot_pos = knots.iter().map(|k| k.pos as u32).collect();
        Self { entries, knot_keys, knot_pos, epsilon, radix, shift, min_key }
    }

    /// Number of spline knots.
    pub fn num_knots(&self) -> usize {
        self.knot_keys.len()
    }

    /// Predicts the position of `key` by spline interpolation.
    fn predict(&self, key: u64) -> usize {
        if self.knot_keys.is_empty() {
            return 0;
        }
        let nk = self.knot_keys.len();
        let key_c = key.clamp(self.min_key, self.knot_keys[nk - 1]);
        let prefix = ((key_c - self.min_key) >> self.shift) as usize;
        // Knot range for this prefix: [radix[prefix], radix[prefix+1]].
        let lo = self.radix[prefix.min(self.radix.len() - 1)] as usize;
        let hi = self.radix[(prefix + 1).min(self.radix.len() - 1)] as usize;
        let lo = lo.saturating_sub(1);
        let hi = hi.min(nk - 1);
        // Binary search the knot bracket within [lo, hi].
        let i = match self.knot_keys[lo..=hi].binary_search(&key_c) {
            Ok(i) => lo + i,
            Err(0) => lo,
            Err(i) => lo + i - 1,
        };
        let i = i.min(nk - 1);
        let (ak, ap) = (self.knot_keys[i], self.knot_pos[i] as usize);
        if i + 1 >= nk {
            return ap;
        }
        let (bk, bp) = (self.knot_keys[i + 1], self.knot_pos[i + 1] as usize);
        if bk == ak {
            return ap;
        }
        let t = (key_c.saturating_sub(ak)) as f64 / (bk - ak) as f64;
        (ap as f64 + t * (bp - ap) as f64).round() as usize
    }

    /// First position whose key is `>= key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        match self.lookup_pos(key) {
            Ok(i) => i,
            Err(i) => i,
        }
    }
}

impl OrderedIndex for RadixSpline {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.lookup(key)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi || self.entries.is_empty() {
            return Vec::new();
        }
        let start = self.lower_bound(lo);
        self.entries[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
    }

    fn size_bytes(&self) -> usize {
        self.knot_keys.len() * (8 + 4) + self.radix.len() * 4
    }
}

impl TwoPhaseIndex for RadixSpline {
    fn entries(&self) -> &[KeyValue] {
        &self.entries
    }

    fn predict_range(&self, key: u64) -> (usize, usize) {
        let n = self.entries.len();
        if n == 0 {
            return (0, 0);
        }
        let pred = self.predict(key);
        // The measured ε bounds member-key error; +1 for absent keys between
        // members (interpolation is monotone: knot positions ascend), +1 for
        // the `.round()`. Keys outside the key domain clamp to the end
        // knots, whose predictions are exact.
        let w = self.epsilon + 2;
        let lo = pred.saturating_sub(w);
        let hi = (pred + w + 1).min(n);
        (lo, hi.max(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_entries, KeyDistribution};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spline_error_bound_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let entries =
            generate_entries(KeyDistribution::LogNormal { sigma: 2.0 }, 5000, &mut rng);
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        for eps in [8usize, 32] {
            let knots = build_spline(&keys, eps);
            let mut ki = 0usize;
            for (i, &k) in keys.iter().enumerate() {
                while ki + 1 < knots.len() && knots[ki + 1].key <= k {
                    ki += 1;
                }
                let a = knots[ki];
                let pred = if ki + 1 < knots.len() {
                    let b = knots[ki + 1];
                    a.pos as f64
                        + (k - a.key) as f64 / (b.key - a.key) as f64 * (b.pos - a.pos) as f64
                } else {
                    a.pos as f64
                };
                // The greedy chord stays near the corridor but may overshoot
                // it slightly; 2ε is the practical bound we rely on.
                assert!(
                    (pred - i as f64).abs() <= 2.0 * eps as f64 + 2.0,
                    "eps={eps} key {k}: pred {pred} true {i}"
                );
            }
        }
    }

    #[test]
    fn lookup_all_present_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform { max: 1 << 44 },
            KeyDistribution::LogNormal { sigma: 2.0 },
            KeyDistribution::Clustered { clusters: 12 },
        ] {
            let entries = generate_entries(dist, 8000, &mut rng);
            let rs = RadixSpline::build(entries.clone(), 16);
            for &(k, v) in &entries {
                assert_eq!(rs.get(k), Some(v), "{dist:?} key {k}");
            }
        }
    }

    #[test]
    fn absent_and_out_of_domain_keys() {
        let entries: Vec<KeyValue> = (100..1100u64).map(|k| (k * 10, k)).collect();
        let rs = RadixSpline::build(entries, 8);
        assert_eq!(rs.get(0), None);
        assert_eq!(rs.get(1005), None);
        assert_eq!(rs.get(u64::MAX), None);
    }

    #[test]
    fn range_matches_filter() {
        let mut rng = StdRng::seed_from_u64(3);
        let entries = generate_entries(KeyDistribution::Uniform { max: 100_000 }, 2000, &mut rng);
        let rs = RadixSpline::build(entries.clone(), 16);
        let got = rs.range(20_000, 50_000);
        let expected: Vec<KeyValue> = entries
            .iter()
            .filter(|e| e.0 >= 20_000 && e.0 <= 50_000)
            .copied()
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn fewer_knots_than_keys() {
        let entries: Vec<KeyValue> = (0..50_000u64).map(|k| (k * 3, k)).collect();
        let rs = RadixSpline::build(entries, 32);
        assert!(rs.num_knots() < 100, "{} knots for a straight line", rs.num_knots());
    }

    #[test]
    fn predict_range_contains_position_or_insertion_point() {
        let mut rng = StdRng::seed_from_u64(4);
        let entries =
            generate_entries(KeyDistribution::LogNormal { sigma: 2.0 }, 10_000, &mut rng);
        let rs = RadixSpline::build(entries.clone(), 16);
        let probe = |k: u64| {
            let (lo, hi) = rs.predict_range(k);
            let p = match entries.binary_search_by_key(&k, |e| e.0) {
                Ok(i) => i,
                Err(i) => i,
            };
            assert!(lo <= p && p <= hi, "key {k}: pos {p} outside [{lo}, {hi})");
            assert!(hi <= entries.len());
        };
        for &(k, _) in entries.iter().step_by(13) {
            probe(k);
            probe(k.wrapping_add(1));
            probe(k.saturating_sub(1));
        }
        probe(0);
        probe(u64::MAX);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// RadixSpline agrees with a sorted-vec oracle.
        #[test]
        fn oracle_agreement(
            keys in proptest::collection::btree_set(0u64..1_000_000, 2..400),
            probes in proptest::collection::vec(0u64..1_000_000, 40),
        ) {
            let entries: Vec<KeyValue> =
                keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
            let rs = RadixSpline::build(entries.clone(), 8);
            for p in probes {
                let expected = entries
                    .binary_search_by_key(&p, |e| e.0)
                    .ok()
                    .map(|i| entries[i].1);
                prop_assert_eq!(rs.get(p), expected);
                let lb = entries.partition_point(|e| e.0 < p);
                prop_assert_eq!(rs.lower_bound(p), lb);
            }
        }
    }
}
