//! The PGM-index (Ferragina & Vinciguerra \[8\]): a multi-level piecewise
//! linear index with a provable per-level error bound ε, built in a single
//! streaming pass, plus a dynamic LSM-style variant supporting inserts.
//!
//! The lookup path is split two-phase (jdb_pgm-style): [`PgmCore`] owns only
//! the models and answers [`PgmCore::predict_range`] with a half-open window
//! guaranteed to contain the key's position (or insertion point); the caller
//! finishes with a last-mile search over its own borrowed slice. The data
//! level is stored flattened (structure-of-arrays) so the per-probe walk
//! touches dense `u64`/`f64` arrays instead of pointer-sized AoS records.

use crate::model::LinearModel;
use crate::search::last_mile_search;
use crate::{KeyValue, MutableIndex, OrderedIndex, TwoPhaseIndex};

/// One ε-bounded linear segment covering keys `>= first_key`.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// Smallest key covered by this segment.
    pub first_key: u64,
    /// The key→position model of this segment.
    pub model: LinearModel,
    /// First position (in the indexed array) covered by this segment.
    /// Predictions are clamped to `[start, next.start)` so keys falling in
    /// the gap between segments cannot extrapolate arbitrarily far.
    pub start: usize,
}

/// Builds an ε-bounded piecewise linear approximation of `(key, position)`
/// using the shrinking-cone algorithm (single pass, O(n)): a new segment is
/// opened whenever no line through the segment origin can keep every point
/// within ±ε.
///
/// Models are anchored at the segment origin (`key0 = first_key`,
/// `intercept = start`), matching the cone construction exactly and keeping
/// full precision for large-magnitude keys. Slopes are never negative: keys
/// and positions both ascend, and whenever the cone midpoint dips below
/// zero the cone still contains zero (every upper constraint is positive),
/// so clamping stays feasible — monotone models are what lets two-phase
/// windows cover absent keys in segment gaps.
pub fn build_segments(keys: &[u64], epsilon: usize) -> Vec<Segment> {
    let eps = epsilon as f64;
    let mut segments = Vec::new();
    if keys.is_empty() {
        return segments;
    }
    let close = |start: usize, slope: f64| Segment {
        first_key: keys[start],
        model: LinearModel { slope, intercept: start as f64, key0: keys[start] },
        start,
    };
    let mut start = 0usize;
    let (mut slope_lo, mut slope_hi) = (f64::NEG_INFINITY, f64::INFINITY);
    for i in 1..keys.len() {
        let dx = (keys[i] - keys[start]) as f64;
        if dx == 0.0 {
            continue; // duplicate keys share a position estimate
        }
        let dy = (i - start) as f64;
        let lo = (dy - eps) / dx;
        let hi = (dy + eps) / dx;
        let new_lo = slope_lo.max(lo);
        let new_hi = slope_hi.min(hi);
        if new_lo > new_hi {
            // Close the segment with a feasible slope.
            segments.push(close(start, feasible_slope(slope_lo, slope_hi)));
            start = i;
            slope_lo = f64::NEG_INFINITY;
            slope_hi = f64::INFINITY;
        } else {
            slope_lo = new_lo;
            slope_hi = new_hi;
        }
    }
    segments.push(close(start, feasible_slope(slope_lo, slope_hi)));
    segments
}

fn feasible_slope(lo: f64, hi: f64) -> f64 {
    let mid = match (lo.is_finite(), hi.is_finite()) {
        (true, true) => 0.5 * (lo + hi),
        (true, false) => lo,
        (false, true) => hi,
        (false, false) => 0.0, // single-point segment
    };
    // Every finite upper constraint (dy + ε)/dx is positive, so when the
    // midpoint is negative the cone still contains 0.
    mid.max(0.0)
}

/// Flattened structure-of-arrays layout of the data-level segments: four
/// parallel dense arrays instead of a `Vec<Segment>`, so a probe's segment
/// walk and model evaluation stream through contiguous same-typed memory.
#[derive(Clone, Debug, Default)]
pub struct FlatSegments {
    first_keys: Vec<u64>,
    slopes: Vec<f64>,
    intercepts: Vec<f64>,
    starts: Vec<u32>,
}

impl FlatSegments {
    fn from_segments(segs: &[Segment]) -> Self {
        Self {
            first_keys: segs.iter().map(|s| s.first_key).collect(),
            slopes: segs.iter().map(|s| s.model.slope).collect(),
            intercepts: segs.iter().map(|s| s.model.intercept).collect(),
            starts: segs.iter().map(|s| s.start as u32).collect(),
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.first_keys.len()
    }

    /// True when no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.first_keys.is_empty()
    }

    fn model(&self, i: usize) -> LinearModel {
        LinearModel {
            slope: self.slopes[i],
            intercept: self.intercepts[i],
            key0: self.first_keys[i],
        }
    }

    fn size_bytes(&self) -> usize {
        self.len() * (8 + 8 + 8 + 4)
    }
}

/// The model half of a PGM-index: recursive ε-bounded segment levels over a
/// sorted key array it does **not** own. Phase 1 of a lookup asks
/// [`PgmCore::predict_range`] for a window; phase 2 is the caller's
/// last-mile search over its own slice — no per-probe allocation, and the
/// same core can serve any storage of the keys it was built from.
#[derive(Clone, Debug)]
pub struct PgmCore {
    n: usize,
    epsilon: usize,
    /// Data-level segments, flattened.
    data: FlatSegments,
    /// `upper[0]` indexes the data segments' first keys; `upper[k+1]`
    /// indexes `upper[k]`. The last level has at most `BASE_FANOUT` entries.
    upper: Vec<Vec<Segment>>,
}

const BASE_FANOUT: usize = 8;

/// Rightmost index in `0..below_len` whose first key is `<= key` (0 when
/// every first key is above `key`), found by walking outward from the
/// model's clamped guess. The walk length is bounded by the model's actual
/// misprediction (≤ ε + 2 by the cone bound and monotone slopes), and
/// unlike a fixed ±ε window it is *always* correct, so window-containment
/// guarantees never rest on the guess being good.
fn refine_segment<F: Fn(usize) -> u64>(
    first_key_at: F,
    below_len: usize,
    seg: &Segment,
    key: u64,
    range_end: usize,
) -> usize {
    let guess = seg
        .model
        .predict(key, below_len)
        .clamp(seg.start, range_end.saturating_sub(1).max(seg.start));
    let mut j = guess;
    while j + 1 < below_len && first_key_at(j + 1) <= key {
        j += 1;
    }
    while j > 0 && first_key_at(j) > key {
        j -= 1;
    }
    j
}

impl PgmCore {
    /// Builds the recursive segment hierarchy with error bound `epsilon`
    /// over a strictly sorted key array.
    pub fn build(keys: &[u64], epsilon: usize) -> Self {
        let epsilon = epsilon.max(1);
        if keys.is_empty() {
            return Self { n: 0, epsilon, data: FlatSegments::default(), upper: Vec::new() };
        }
        assert!(keys.len() <= u32::MAX as usize, "PgmCore: > u32::MAX keys");
        let mut segs = build_segments(keys, epsilon);
        let data = FlatSegments::from_segments(&segs);
        let mut upper = Vec::new();
        while segs.len() > BASE_FANOUT {
            let level_keys: Vec<u64> = segs.iter().map(|s| s.first_key).collect();
            segs = build_segments(&level_keys, epsilon);
            upper.push(segs.clone());
        }
        Self { n: keys.len(), epsilon, data, upper }
    }

    /// Number of keys the core was built over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when built over no keys.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The error bound ε.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Number of levels (1 = segments directly over the data).
    pub fn num_levels(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            1 + self.upper.len()
        }
    }

    /// Total number of segments across levels.
    pub fn num_segments(&self) -> usize {
        self.data.len() + self.upper.iter().map(|l| l.len()).sum::<usize>()
    }

    /// Structural footprint in bytes (models only; the key array belongs to
    /// the caller).
    pub fn size_bytes(&self) -> usize {
        self.data.size_bytes()
            + self
                .upper
                .iter()
                .map(|l| l.len() * std::mem::size_of::<Segment>())
                .sum::<usize>()
    }

    /// Index of the data-level segment responsible for `key`: the rightmost
    /// segment with `first_key <= key`, or 0 when `key` precedes them all.
    pub fn locate_data_segment(&self, key: u64) -> usize {
        debug_assert!(self.n > 0, "locate on empty core");
        let mut idx = match self.upper.last() {
            None => {
                // Few data segments: find directly.
                return self.data.first_keys.partition_point(|&k| k <= key).saturating_sub(1);
            }
            Some(top) => top.partition_point(|s| s.first_key <= key).saturating_sub(1),
        };
        // Descend: upper[d] predicts into upper[d-1], upper[0] into the
        // flattened data level.
        for d in (1..self.upper.len()).rev() {
            let seg = &self.upper[d][idx];
            let below = &self.upper[d - 1];
            let range_end = self.upper[d].get(idx + 1).map_or(below.len(), |s| s.start);
            idx = refine_segment(|j| below[j].first_key, below.len(), seg, key, range_end);
        }
        let seg = &self.upper[0][idx];
        let range_end = self.upper[0].get(idx + 1).map_or(self.data.len(), |s| s.start);
        refine_segment(|j| self.data.first_keys[j], self.data.len(), seg, key, range_end)
    }

    /// True when data segment `idx` is the one [`Self::locate_data_segment`]
    /// would return for `key` — the cheap check that lets sorted batch
    /// lookups reuse the previous probe's segment.
    pub fn segment_covers(&self, idx: usize, key: u64) -> bool {
        if idx >= self.data.len() {
            return false;
        }
        (idx == 0 || self.data.first_keys[idx] <= key)
            && (idx + 1 == self.data.len() || key < self.data.first_keys[idx + 1])
    }

    /// Phase-1 window for `key` given its covering data segment: a half-open
    /// `[lo, hi)` with `hi <= len()` that contains `key`'s position when
    /// present and its insertion point otherwise (`hi` itself may *be* the
    /// insertion point for keys above every indexed key).
    pub fn predict_range_in(&self, idx: usize, key: u64) -> (usize, usize) {
        let s = self.data.starts[idx] as usize;
        let e = if idx + 1 < self.data.len() {
            self.data.starts[idx + 1] as usize
        } else {
            self.n
        };
        let pred = self
            .data
            .model(idx)
            .predict(key, self.n)
            .clamp(s, e.saturating_sub(1).max(s));
        // ε from the cone, +1 for gap keys between members (monotone
        // models), +1 for integer rounding in `predict`.
        let w = self.epsilon + 2;
        let lo = pred.saturating_sub(w);
        let hi = (pred + w + 1).min(self.n);
        (lo, hi.max(lo))
    }

    /// Phase-1 window for `key`: locate + [`Self::predict_range_in`].
    pub fn predict_range(&self, key: u64) -> (usize, usize) {
        if self.n == 0 {
            return (0, 0);
        }
        let idx = self.locate_data_segment(key);
        self.predict_range_in(idx, key)
    }
}

/// A static PGM-index: a [`PgmCore`] plus ownership of the sorted entries it
/// indexes. Every level guarantees its predictions are within ±ε of the
/// true position, so each lookup searches an `O(ε)` window.
#[derive(Clone, Debug)]
pub struct PgmIndex {
    entries: Vec<KeyValue>,
    core: PgmCore,
}

impl PgmIndex {
    /// Builds a PGM-index with error bound `epsilon` over sorted entries.
    ///
    /// # Panics
    /// Panics (in debug builds) if input is not strictly sorted.
    pub fn build(entries: Vec<KeyValue>, epsilon: usize) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "PgmIndex::build: unsorted input"
        );
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let core = PgmCore::build(&keys, epsilon);
        Self { entries, core }
    }

    /// The error bound ε.
    pub fn epsilon(&self) -> usize {
        self.core.epsilon()
    }

    /// Number of levels (1 = segments directly over the data).
    pub fn num_levels(&self) -> usize {
        self.core.num_levels()
    }

    /// Total number of segments across levels.
    pub fn num_segments(&self) -> usize {
        self.core.num_segments()
    }

    /// Borrow the model half (for callers doing phase 2 over their own copy
    /// of the data).
    pub fn core(&self) -> &PgmCore {
        &self.core
    }

    /// First position whose key is `>= key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        let (lo, hi) = self.core.predict_range(key);
        match last_mile_search(&self.entries, key, lo, hi) {
            Ok(i) => i,
            Err(i) => i,
        }
    }

    /// Borrow the underlying sorted entries.
    pub fn entries(&self) -> &[KeyValue] {
        &self.entries
    }
}

impl OrderedIndex for PgmIndex {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.lookup(key)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi || self.entries.is_empty() {
            return Vec::new();
        }
        let start = self.lower_bound(lo);
        self.entries[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
    }

    fn size_bytes(&self) -> usize {
        self.core.size_bytes()
    }
}

impl TwoPhaseIndex for PgmIndex {
    fn entries(&self) -> &[KeyValue] {
        &self.entries
    }

    fn predict_range(&self, key: u64) -> (usize, usize) {
        self.core.predict_range(key)
    }

    /// Sorted probes reuse the previous probe's data segment (checked with
    /// one key comparison, no re-descent) and floor-narrow each window to
    /// the previous landing position.
    fn lookup_batch_sorted(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted probe batch");
        out.clear();
        out.reserve(keys.len());
        if self.entries.is_empty() {
            out.extend(keys.iter().map(|_| None));
            return;
        }
        let mut seg = 0usize;
        let mut floor = 0usize;
        for &key in keys {
            if !self.core.segment_covers(seg, key) {
                // Sorted probes usually step into the adjacent segment.
                seg = if self.core.segment_covers(seg + 1, key) {
                    seg + 1
                } else {
                    self.core.locate_data_segment(key)
                };
            }
            let (lo, hi) = self.core.predict_range_in(seg, key);
            let lo = lo.max(floor);
            let hi = hi.max(lo);
            match last_mile_search(&self.entries, key, lo, hi) {
                Ok(i) => {
                    out.push(Some(self.entries[i].1));
                    floor = i;
                }
                Err(i) => {
                    out.push(None);
                    floor = i;
                }
            }
        }
    }
}

/// A dynamic PGM: LSM-style logarithmic collection of static PGM runs plus
/// an unsorted insert buffer, as in the fully-dynamic PGM-index.
#[derive(Clone, Debug)]
pub struct DynamicPgm {
    buffer: Vec<KeyValue>,
    buffer_cap: usize,
    /// Runs in increasing size order; each run's length is at most half the
    /// next run's.
    runs: Vec<PgmIndex>,
    epsilon: usize,
    len: usize,
}

impl DynamicPgm {
    /// Creates an empty dynamic PGM with error bound `epsilon`.
    pub fn new(epsilon: usize) -> Self {
        Self { buffer: Vec::new(), buffer_cap: 256, runs: Vec::new(), epsilon, len: 0 }
    }

    /// Builds from sorted entries (one static run).
    pub fn from_sorted(entries: Vec<KeyValue>, epsilon: usize) -> Self {
        let len = entries.len();
        Self {
            buffer: Vec::new(),
            buffer_cap: 256,
            runs: vec![PgmIndex::build(entries, epsilon)],
            epsilon,
            len,
        }
    }

    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_unstable_by_key(|e| e.0);
        self.buffer.dedup_by_key(|e| e.0);
        let mut merged: Vec<KeyValue> = std::mem::take(&mut self.buffer);
        // Merge with runs smaller than the merged result (geometric policy),
        // newest runs shadow older values for duplicate keys.
        while let Some(last) = self.runs.last() {
            if last.len() <= merged.len() * 2 {
                let run = self.runs.pop().expect("checked non-empty");
                merged = merge_shadowing(&merged, run.entries());
            } else {
                break;
            }
        }
        self.runs.push(PgmIndex::build(merged, self.epsilon));
        self.runs.sort_by_key(|r| std::cmp::Reverse(r.len()));
        self.len = self.runs.iter().map(|r| r.len()).sum();
    }

    /// Number of static runs currently held.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }
}

/// Merges two sorted runs; entries of `newer` shadow `older` on key ties.
fn merge_shadowing(newer: &[KeyValue], older: &[KeyValue]) -> Vec<KeyValue> {
    let mut out = Vec::with_capacity(newer.len() + older.len());
    let (mut i, mut j) = (0, 0);
    while i < newer.len() && j < older.len() {
        match newer[i].0.cmp(&older[j].0) {
            std::cmp::Ordering::Less => {
                out.push(newer[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(older[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(newer[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&newer[i..]);
    out.extend_from_slice(&older[j..]);
    out
}

impl OrderedIndex for DynamicPgm {
    fn len(&self) -> usize {
        // Upper bound: duplicate keys across runs/buffer are counted once at
        // flush time; the buffer may shadow run keys until then.
        self.len + self.buffer.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        // Newest first: buffer, then runs from smallest (newest) to largest.
        if let Some(e) = self.buffer.iter().rev().find(|e| e.0 == key) {
            return Some(e.1);
        }
        for run in self.runs.iter().rev() {
            if let Some(v) = run.get(key) {
                return Some(v);
            }
        }
        None
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi {
            return Vec::new();
        }
        // Gather from newest to oldest so the first occurrence of a key wins.
        let mut seen = std::collections::BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run.range(lo, hi) {
                seen.insert(k, v);
            }
        }
        for &(k, v) in &self.buffer {
            if k >= lo && k <= hi {
                seen.insert(k, v);
            }
        }
        seen.into_iter().collect()
    }

    fn size_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.size_bytes()).sum::<usize>()
            + self.buffer.capacity() * std::mem::size_of::<KeyValue>()
    }
}

impl MutableIndex for DynamicPgm {
    fn insert(&mut self, key: u64, value: u64) {
        self.buffer.retain(|e| e.0 != key);
        self.buffer.push((key, value));
        if self.buffer.len() >= self.buffer_cap {
            self.flush_buffer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_entries, KeyDistribution};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn segments_respect_epsilon() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 2.0 },
            KeyDistribution::Clustered { clusters: 8 },
        ] {
            let entries = generate_entries(dist, 5000, &mut rng);
            let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
            for eps in [4usize, 16, 64] {
                let segs = build_segments(&keys, eps);
                // Verify: every key's predicted position is within eps of truth.
                let mut seg_idx = 0;
                for (i, &k) in keys.iter().enumerate() {
                    while seg_idx + 1 < segs.len() && segs[seg_idx + 1].first_key <= k {
                        seg_idx += 1;
                    }
                    let pred = segs[seg_idx].model.predict_f(k);
                    let err = (pred - i as f64).abs();
                    assert!(
                        err <= eps as f64 + 1.0,
                        "{dist:?} eps={eps} key {k}: err {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn segments_have_nonnegative_slopes() {
        let mut rng = StdRng::seed_from_u64(7);
        let entries =
            generate_entries(KeyDistribution::LogNormal { sigma: 2.5 }, 20_000, &mut rng);
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        for eps in [1usize, 4, 64] {
            for s in build_segments(&keys, eps) {
                assert!(s.model.slope >= 0.0, "eps={eps}: negative slope {}", s.model.slope);
            }
        }
    }

    #[test]
    fn smaller_epsilon_more_segments() {
        let mut rng = StdRng::seed_from_u64(2);
        let entries = generate_entries(KeyDistribution::LogNormal { sigma: 2.0 }, 10_000, &mut rng);
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let coarse = build_segments(&keys, 128).len();
        let fine = build_segments(&keys, 4).len();
        assert!(fine > coarse, "fine {fine} !> coarse {coarse}");
    }

    #[test]
    fn lookup_all_present_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 2.0 },
        ] {
            let entries = generate_entries(dist, 8000, &mut rng);
            let pgm = PgmIndex::build(entries.clone(), 16);
            for &(k, v) in &entries {
                assert_eq!(pgm.get(k), Some(v), "{dist:?} key {k}");
            }
        }
    }

    #[test]
    fn multi_level_build() {
        let mut rng = StdRng::seed_from_u64(4);
        let entries =
            generate_entries(KeyDistribution::LogNormal { sigma: 2.5 }, 50_000, &mut rng);
        let pgm = PgmIndex::build(entries.clone(), 4);
        assert!(pgm.num_levels() >= 2, "expected recursion, got {}", pgm.num_levels());
        for &(k, v) in entries.iter().step_by(97) {
            assert_eq!(pgm.get(k), Some(v));
        }
    }

    #[test]
    fn range_matches_filter() {
        let entries: Vec<KeyValue> = (0..3000u64).map(|k| (k * 5 + 7, k)).collect();
        let pgm = PgmIndex::build(entries.clone(), 8);
        let got = pgm.range(500, 1500);
        let expected: Vec<KeyValue> =
            entries.iter().filter(|e| e.0 >= 500 && e.0 <= 1500).copied().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn predict_range_contains_position_or_insertion_point() {
        let mut rng = StdRng::seed_from_u64(5);
        let entries =
            generate_entries(KeyDistribution::LogNormal { sigma: 2.0 }, 10_000, &mut rng);
        let pgm = PgmIndex::build(entries.clone(), 8);
        let probe = |k: u64| {
            let (lo, hi) = pgm.core().predict_range(k);
            let p = match entries.binary_search_by_key(&k, |e| e.0) {
                Ok(i) => i,
                Err(i) => i,
            };
            assert!(lo <= p && p <= hi, "key {k}: pos {p} outside [{lo}, {hi})");
            assert!(hi <= entries.len());
        };
        for &(k, _) in entries.iter().step_by(13) {
            probe(k);
            probe(k.wrapping_add(1));
            probe(k.saturating_sub(1));
        }
        probe(0);
        probe(u64::MAX); // insertion point n must stay inside the window
    }

    #[test]
    fn sorted_batch_matches_single_lookups() {
        let mut rng = StdRng::seed_from_u64(6);
        let entries =
            generate_entries(KeyDistribution::Uniform { max: 1 << 40 }, 20_000, &mut rng);
        let pgm = PgmIndex::build(entries.clone(), 16);
        // Present, absent, and out-of-domain probes, sorted.
        let mut probes: Vec<u64> = entries.iter().step_by(3).map(|e| e.0).collect();
        probes.extend(entries.iter().step_by(7).map(|e| e.0 ^ 1));
        probes.push(0);
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut batch = Vec::new();
        pgm.lookup_batch_sorted(&probes, &mut batch);
        assert_eq!(batch.len(), probes.len());
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(batch[i], pgm.get(k), "probe {k}");
        }
    }

    #[test]
    fn dynamic_insert_then_get() {
        let mut pgm = DynamicPgm::new(16);
        for k in 0..5000u64 {
            pgm.insert(k * 3, k);
        }
        for k in 0..5000u64 {
            assert_eq!(pgm.get(k * 3), Some(k), "key {}", k * 3);
            assert_eq!(pgm.get(k * 3 + 1), None);
        }
        assert!(pgm.num_runs() >= 1);
    }

    #[test]
    fn dynamic_overwrite_shadow() {
        let mut pgm = DynamicPgm::new(16);
        for k in 0..1000u64 {
            pgm.insert(k, 1);
        }
        for k in 0..1000u64 {
            pgm.insert(k, 2);
        }
        for k in (0..1000u64).step_by(37) {
            assert_eq!(pgm.get(k), Some(2), "key {k} not shadowed");
        }
    }

    #[test]
    fn dynamic_range_across_runs_and_buffer() {
        let mut pgm = DynamicPgm::from_sorted((0..1000u64).map(|k| (k * 2, k)).collect(), 16);
        pgm.insert(3, 999);
        pgm.insert(5, 998);
        let r = pgm.range(0, 8);
        assert_eq!(r, vec![(0, 0), (2, 1), (3, 999), (4, 2), (5, 998), (6, 3), (8, 4)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// ε-bound invariant: for any strictly sorted key set and ε, the
        /// produced segmentation predicts every member key within ε+1.
        #[test]
        fn epsilon_invariant(
            keys in proptest::collection::btree_set(0u64..1_000_000, 2..400),
            eps in 1usize..32,
        ) {
            let keys: Vec<u64> = keys.into_iter().collect();
            let segs = build_segments(&keys, eps);
            let mut seg_idx = 0;
            for (i, &k) in keys.iter().enumerate() {
                while seg_idx + 1 < segs.len() && segs[seg_idx + 1].first_key <= k {
                    seg_idx += 1;
                }
                let pred = segs[seg_idx].model.predict_f(k);
                prop_assert!((pred - i as f64).abs() <= eps as f64 + 1.0);
            }
        }

        /// Dynamic PGM agrees with a BTreeMap oracle under mixed workloads.
        #[test]
        fn dynamic_oracle(ops in proptest::collection::vec((0u64..5000, 0u64..100), 1..600)) {
            let mut pgm = DynamicPgm::new(8);
            let mut oracle = std::collections::BTreeMap::new();
            for (k, v) in ops {
                pgm.insert(k, v);
                oracle.insert(k, v);
            }
            for (&k, &v) in oracle.iter().step_by(7) {
                prop_assert_eq!(pgm.get(k), Some(v));
            }
            let got = pgm.range(1000, 2000);
            let expected: Vec<KeyValue> =
                oracle.range(1000..=2000).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
