//! The PGM-index (Ferragina & Vinciguerra \[8\]): a multi-level piecewise
//! linear index with a provable per-level error bound ε, built in a single
//! streaming pass, plus a dynamic LSM-style variant supporting inserts.

use crate::model::LinearModel;
use crate::search::{bounded_binary_search, exponential_search};
use crate::{KeyValue, MutableIndex, OrderedIndex};

/// One ε-bounded linear segment covering keys `>= first_key`.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// Smallest key covered by this segment.
    pub first_key: u64,
    /// The key→position model of this segment.
    pub model: LinearModel,
    /// First position (in the indexed array) covered by this segment.
    /// Predictions are clamped to `[start, next.start)` so keys falling in
    /// the gap between segments cannot extrapolate arbitrarily far.
    pub start: usize,
}

/// Builds an ε-bounded piecewise linear approximation of `(key, position)`
/// using the shrinking-cone algorithm (single pass, O(n)): a new segment is
/// opened whenever no line through the segment origin can keep every point
/// within ±ε.
pub fn build_segments(keys: &[u64], epsilon: usize) -> Vec<Segment> {
    let eps = epsilon as f64;
    let mut segments = Vec::new();
    if keys.is_empty() {
        return segments;
    }
    let mut start = 0usize;
    let (mut slope_lo, mut slope_hi) = (f64::NEG_INFINITY, f64::INFINITY);
    for i in 1..keys.len() {
        let dx = (keys[i] - keys[start]) as f64;
        if dx == 0.0 {
            continue; // duplicate keys share a position estimate
        }
        let dy = (i - start) as f64;
        let lo = (dy - eps) / dx;
        let hi = (dy + eps) / dx;
        let new_lo = slope_lo.max(lo);
        let new_hi = slope_hi.min(hi);
        if new_lo > new_hi {
            // Close the segment with a feasible slope.
            let slope = feasible_slope(slope_lo, slope_hi);
            segments.push(Segment {
                first_key: keys[start],
                model: LinearModel {
                    slope,
                    intercept: start as f64 - slope * keys[start] as f64,
                },
                start,
            });
            start = i;
            slope_lo = f64::NEG_INFINITY;
            slope_hi = f64::INFINITY;
        } else {
            slope_lo = new_lo;
            slope_hi = new_hi;
        }
    }
    let slope = feasible_slope(slope_lo, slope_hi);
    segments.push(Segment {
        first_key: keys[start],
        model: LinearModel { slope, intercept: start as f64 - slope * keys[start] as f64 },
        start,
    });
    segments
}

fn feasible_slope(lo: f64, hi: f64) -> f64 {
    match (lo.is_finite(), hi.is_finite()) {
        (true, true) => 0.5 * (lo + hi),
        (true, false) => lo,
        (false, true) => hi.max(0.0),
        (false, false) => 0.0, // single-point segment
    }
}

/// A static PGM-index: recursive levels of ε-bounded segments over a sorted
/// array. Every level guarantees its predictions are within ±ε of the true
/// position, so each step of a lookup searches at most `2ε + 3` slots.
#[derive(Clone, Debug)]
pub struct PgmIndex {
    entries: Vec<KeyValue>,
    epsilon: usize,
    /// `levels\[0\]` indexes the data; `levels[k+1]` indexes the first keys of
    /// `levels[k]`. The last level has at most `BASE_FANOUT` segments.
    levels: Vec<Vec<Segment>>,
}

const BASE_FANOUT: usize = 8;

impl PgmIndex {
    /// Builds a PGM-index with error bound `epsilon` over sorted entries.
    ///
    /// # Panics
    /// Panics (in debug builds) if input is not strictly sorted.
    pub fn build(entries: Vec<KeyValue>, epsilon: usize) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "PgmIndex::build: unsorted input"
        );
        let epsilon = epsilon.max(1);
        let mut levels = Vec::new();
        if !entries.is_empty() {
            let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
            let mut segs = build_segments(&keys, epsilon);
            levels.push(segs.clone());
            while segs.len() > BASE_FANOUT {
                let level_keys: Vec<u64> = segs.iter().map(|s| s.first_key).collect();
                segs = build_segments(&level_keys, epsilon);
                levels.push(segs.clone());
            }
        }
        Self { entries, epsilon, levels }
    }

    /// The error bound ε.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Number of levels (1 = segments directly over the data).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of segments across levels.
    pub fn num_segments(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Index of the segment in `level` responsible for `key` (rightmost
    /// segment with `first_key <= key`), found via the level above.
    fn locate_segment(&self, key: u64) -> Option<(usize, &Segment)> {
        let top = self.levels.last()?;
        // Top level is small: scan it.
        let mut idx = top.partition_point(|s| s.first_key <= key).saturating_sub(1);
        // Walk down: each level's model predicts a position among the keys of
        // the level below (which are that level's segment first-keys), and
        // the prediction is clamped to the segment's covered range.
        for depth in (0..self.levels.len() - 1).rev() {
            let level = &self.levels[depth + 1];
            let seg = &level[idx];
            let below = &self.levels[depth];
            let range_end =
                level.get(idx + 1).map_or(below.len(), |next| next.start);
            let pred = seg
                .model
                .predict(key, below.len())
                .clamp(seg.start, range_end.saturating_sub(1).max(seg.start));
            let lo = pred.saturating_sub(self.epsilon + 1).max(seg.start);
            let hi = (pred + self.epsilon + 1).min(range_end.saturating_sub(1));
            // Rightmost segment in [lo, hi] with first_key <= key.
            let mut found = lo;
            for (j, s) in below.iter().enumerate().take(hi + 1).skip(lo) {
                if s.first_key <= key {
                    found = j;
                } else {
                    break;
                }
            }
            idx = found;
        }
        self.levels[0].get(idx).map(|s| (idx, s))
    }

    /// Clamped data-level position prediction for `key` given a located
    /// segment index.
    fn predict_data_pos(&self, idx: usize, seg: &Segment, key: u64) -> usize {
        let range_end = self.levels[0]
            .get(idx + 1)
            .map_or(self.entries.len(), |next| next.start);
        seg.model
            .predict(key, self.entries.len())
            .clamp(seg.start, range_end.saturating_sub(1).max(seg.start))
    }

    /// First position whose key is `>= key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        let pred = match self.locate_segment(key) {
            Some((idx, seg)) => self.predict_data_pos(idx, seg, key),
            None => 0,
        };
        match exponential_search(&self.entries, key, pred).0 {
            Ok(i) => i,
            Err(i) => i,
        }
    }

    /// Borrow the underlying sorted entries.
    pub fn entries(&self) -> &[KeyValue] {
        &self.entries
    }
}

impl OrderedIndex for PgmIndex {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        let (idx, seg) = self.locate_segment(key)?;
        let pred = self.predict_data_pos(idx, seg, key);
        let lo = pred.saturating_sub(self.epsilon + 1);
        let hi = pred + self.epsilon + 1;
        bounded_binary_search(&self.entries, key, lo, hi)
            .ok()
            .map(|i| self.entries[i].1)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi || self.entries.is_empty() {
            return Vec::new();
        }
        let start = self.lower_bound(lo);
        self.entries[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
    }

    fn size_bytes(&self) -> usize {
        self.num_segments() * std::mem::size_of::<Segment>()
    }
}

/// A dynamic PGM: LSM-style logarithmic collection of static PGM runs plus
/// an unsorted insert buffer, as in the fully-dynamic PGM-index.
#[derive(Clone, Debug)]
pub struct DynamicPgm {
    buffer: Vec<KeyValue>,
    buffer_cap: usize,
    /// Runs in increasing size order; each run's length is at most half the
    /// next run's.
    runs: Vec<PgmIndex>,
    epsilon: usize,
    len: usize,
}

impl DynamicPgm {
    /// Creates an empty dynamic PGM with error bound `epsilon`.
    pub fn new(epsilon: usize) -> Self {
        Self { buffer: Vec::new(), buffer_cap: 256, runs: Vec::new(), epsilon, len: 0 }
    }

    /// Builds from sorted entries (one static run).
    pub fn from_sorted(entries: Vec<KeyValue>, epsilon: usize) -> Self {
        let len = entries.len();
        Self {
            buffer: Vec::new(),
            buffer_cap: 256,
            runs: vec![PgmIndex::build(entries, epsilon)],
            epsilon,
            len,
        }
    }

    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_unstable_by_key(|e| e.0);
        self.buffer.dedup_by_key(|e| e.0);
        let mut merged: Vec<KeyValue> = std::mem::take(&mut self.buffer);
        // Merge with runs smaller than the merged result (geometric policy),
        // newest runs shadow older values for duplicate keys.
        while let Some(last) = self.runs.last() {
            if last.len() <= merged.len() * 2 {
                let run = self.runs.pop().expect("checked non-empty");
                merged = merge_shadowing(&merged, run.entries());
            } else {
                break;
            }
        }
        self.runs.push(PgmIndex::build(merged, self.epsilon));
        self.runs.sort_by_key(|r| std::cmp::Reverse(r.len()));
        self.len = self.runs.iter().map(|r| r.len()).sum();
    }

    /// Number of static runs currently held.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }
}

/// Merges two sorted runs; entries of `newer` shadow `older` on key ties.
fn merge_shadowing(newer: &[KeyValue], older: &[KeyValue]) -> Vec<KeyValue> {
    let mut out = Vec::with_capacity(newer.len() + older.len());
    let (mut i, mut j) = (0, 0);
    while i < newer.len() && j < older.len() {
        match newer[i].0.cmp(&older[j].0) {
            std::cmp::Ordering::Less => {
                out.push(newer[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(older[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(newer[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&newer[i..]);
    out.extend_from_slice(&older[j..]);
    out
}

impl OrderedIndex for DynamicPgm {
    fn len(&self) -> usize {
        // Upper bound: duplicate keys across runs/buffer are counted once at
        // flush time; the buffer may shadow run keys until then.
        self.len + self.buffer.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        // Newest first: buffer, then runs from smallest (newest) to largest.
        if let Some(e) = self.buffer.iter().rev().find(|e| e.0 == key) {
            return Some(e.1);
        }
        for run in self.runs.iter().rev() {
            if let Some(v) = run.get(key) {
                return Some(v);
            }
        }
        None
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi {
            return Vec::new();
        }
        // Gather from newest to oldest so the first occurrence of a key wins.
        let mut seen = std::collections::BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run.range(lo, hi) {
                seen.insert(k, v);
            }
        }
        for &(k, v) in &self.buffer {
            if k >= lo && k <= hi {
                seen.insert(k, v);
            }
        }
        seen.into_iter().collect()
    }

    fn size_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.size_bytes()).sum::<usize>()
            + self.buffer.capacity() * std::mem::size_of::<KeyValue>()
    }
}

impl MutableIndex for DynamicPgm {
    fn insert(&mut self, key: u64, value: u64) {
        self.buffer.retain(|e| e.0 != key);
        self.buffer.push((key, value));
        if self.buffer.len() >= self.buffer_cap {
            self.flush_buffer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_entries, KeyDistribution};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn segments_respect_epsilon() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 2.0 },
            KeyDistribution::Clustered { clusters: 8 },
        ] {
            let entries = generate_entries(dist, 5000, &mut rng);
            let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
            for eps in [4usize, 16, 64] {
                let segs = build_segments(&keys, eps);
                // Verify: every key's predicted position is within eps of truth.
                let mut seg_idx = 0;
                for (i, &k) in keys.iter().enumerate() {
                    while seg_idx + 1 < segs.len() && segs[seg_idx + 1].first_key <= k {
                        seg_idx += 1;
                    }
                    let pred = segs[seg_idx].model.predict_f(k);
                    let err = (pred - i as f64).abs();
                    assert!(
                        err <= eps as f64 + 1.0,
                        "{dist:?} eps={eps} key {k}: err {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn smaller_epsilon_more_segments() {
        let mut rng = StdRng::seed_from_u64(2);
        let entries = generate_entries(KeyDistribution::LogNormal { sigma: 2.0 }, 10_000, &mut rng);
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let coarse = build_segments(&keys, 128).len();
        let fine = build_segments(&keys, 4).len();
        assert!(fine > coarse, "fine {fine} !> coarse {coarse}");
    }

    #[test]
    fn lookup_all_present_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 2.0 },
        ] {
            let entries = generate_entries(dist, 8000, &mut rng);
            let pgm = PgmIndex::build(entries.clone(), 16);
            for &(k, v) in &entries {
                assert_eq!(pgm.get(k), Some(v), "{dist:?} key {k}");
            }
        }
    }

    #[test]
    fn multi_level_build() {
        let mut rng = StdRng::seed_from_u64(4);
        let entries =
            generate_entries(KeyDistribution::LogNormal { sigma: 2.5 }, 50_000, &mut rng);
        let pgm = PgmIndex::build(entries.clone(), 4);
        assert!(pgm.num_levels() >= 2, "expected recursion, got {}", pgm.num_levels());
        for &(k, v) in entries.iter().step_by(97) {
            assert_eq!(pgm.get(k), Some(v));
        }
    }

    #[test]
    fn range_matches_filter() {
        let entries: Vec<KeyValue> = (0..3000u64).map(|k| (k * 5 + 7, k)).collect();
        let pgm = PgmIndex::build(entries.clone(), 8);
        let got = pgm.range(500, 1500);
        let expected: Vec<KeyValue> =
            entries.iter().filter(|e| e.0 >= 500 && e.0 <= 1500).copied().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn dynamic_insert_then_get() {
        let mut pgm = DynamicPgm::new(16);
        for k in 0..5000u64 {
            pgm.insert(k * 3, k);
        }
        for k in 0..5000u64 {
            assert_eq!(pgm.get(k * 3), Some(k), "key {}", k * 3);
            assert_eq!(pgm.get(k * 3 + 1), None);
        }
        assert!(pgm.num_runs() >= 1);
    }

    #[test]
    fn dynamic_overwrite_shadow() {
        let mut pgm = DynamicPgm::new(16);
        for k in 0..1000u64 {
            pgm.insert(k, 1);
        }
        for k in 0..1000u64 {
            pgm.insert(k, 2);
        }
        for k in (0..1000u64).step_by(37) {
            assert_eq!(pgm.get(k), Some(2), "key {k} not shadowed");
        }
    }

    #[test]
    fn dynamic_range_across_runs_and_buffer() {
        let mut pgm = DynamicPgm::from_sorted((0..1000u64).map(|k| (k * 2, k)).collect(), 16);
        pgm.insert(3, 999);
        pgm.insert(5, 998);
        let r = pgm.range(0, 8);
        assert_eq!(r, vec![(0, 0), (2, 1), (3, 999), (4, 2), (5, 998), (6, 3), (8, 4)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// ε-bound invariant: for any strictly sorted key set and ε, the
        /// produced segmentation predicts every member key within ε+1.
        #[test]
        fn epsilon_invariant(
            keys in proptest::collection::btree_set(0u64..1_000_000, 2..400),
            eps in 1usize..32,
        ) {
            let keys: Vec<u64> = keys.into_iter().collect();
            let segs = build_segments(&keys, eps);
            let mut seg_idx = 0;
            for (i, &k) in keys.iter().enumerate() {
                while seg_idx + 1 < segs.len() && segs[seg_idx + 1].first_key <= k {
                    seg_idx += 1;
                }
                let pred = segs[seg_idx].model.predict_f(k);
                prop_assert!((pred - i as f64).abs() <= eps as f64 + 1.0);
            }
        }

        /// Dynamic PGM agrees with a BTreeMap oracle under mixed workloads.
        #[test]
        fn dynamic_oracle(ops in proptest::collection::vec((0u64..5000, 0u64..100), 1..600)) {
            let mut pgm = DynamicPgm::new(8);
            let mut oracle = std::collections::BTreeMap::new();
            for (k, v) in ops {
                pgm.insert(k, v);
                oracle.insert(k, v);
            }
            for (&k, &v) in oracle.iter().step_by(7) {
                prop_assert_eq!(pgm.get(k), Some(v));
            }
            let got = pgm.range(1000, 2000);
            let expected: Vec<KeyValue> =
                oracle.range(1000..=2000).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
