//! # ml4db-index — learned one-dimensional indexes and their baseline
//!
//! Implements the "replacement" paradigm's flagship family from the tutorial
//! (§3.2): the Recursive Model Index ([`rmi::Rmi`], Kraska et al. \[17\]), the
//! PGM-index ([`pgm::PgmIndex`], Ferragina & Vinciguerra \[8\]) with a dynamic
//! LSM-style variant, RadixSpline ([`radix_spline::RadixSpline`], Kipf et
//! al. \[16\]), and an updatable ALEX-style gapped-array index
//! ([`alex::AlexIndex`], Ding et al. \[6\]) — next to the classical
//! [`btree::BPlusTree`] they propose to replace.
//!
//! All indexes map sorted `u64` keys to `u64` payloads behind the common
//! [`OrderedIndex`] trait, with [`MutableIndex`] for the updatable ones, and
//! report their structural size for the model-efficiency experiments (E14).

#![warn(missing_docs)]

pub mod alex;
pub mod btree;
pub mod keys;
pub mod model;
pub mod pgm;
pub mod radix_spline;
pub mod rmi;
pub mod search;

/// A key-value pair; all indexes in this crate store these.
pub type KeyValue = (u64, u64);

/// Read-only interface over an ordered key-value index.
pub trait OrderedIndex {
    /// Number of stored entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup.
    fn get(&self, key: u64) -> Option<u64>;

    /// Inclusive range scan, ascending by key.
    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue>;

    /// Approximate structural memory footprint in bytes (models plus
    /// auxiliary structures; learned indexes win this metric).
    fn size_bytes(&self) -> usize;
}

/// An ordered index supporting single-key inserts.
pub trait MutableIndex: OrderedIndex {
    /// Inserts or overwrites a key.
    fn insert(&mut self, key: u64, value: u64);
}

/// The two-phase lookup fast path (jdb_pgm-style) over learned indexes.
///
/// Phase 1, [`predict_range`](TwoPhaseIndex::predict_range), runs only the
/// model and returns a half-open window; phase 2 is a last-mile search over
/// a **borrowed** entry slice — no per-probe allocation, and callers can
/// fuse the search into their own scan loops. Batch entry points write into
/// a caller-owned buffer so steady-state probing allocates nothing.
pub trait TwoPhaseIndex: OrderedIndex {
    /// Borrow the sorted entries the index was built over.
    fn entries(&self) -> &[KeyValue];

    /// Phase 1: a half-open window `[lo, hi)` with `hi <= len()` guaranteed
    /// to contain `key`'s position when present, and its insertion point
    /// otherwise. The insertion point may equal `hi` (in particular `hi ==
    /// len()` for keys above every indexed key) — the window *brackets* it:
    /// everything before `lo` is `< key`, everything at or past `hi` is
    /// `> key`.
    fn predict_range(&self, key: u64) -> (usize, usize);

    /// Two-phase point lookup: predict, then last-mile search the window.
    #[inline]
    fn lookup(&self, key: u64) -> Option<u64> {
        let (lo, hi) = self.predict_range(key);
        let entries = self.entries();
        search::last_mile_search(entries, key, lo, hi)
            .ok()
            .map(|i| entries[i].1)
    }

    /// Two-phase positional lookup: `Ok(position)` when present,
    /// `Err(insertion_point)` otherwise (the `slice::binary_search`
    /// contract).
    #[inline]
    fn lookup_pos(&self, key: u64) -> Result<usize, usize> {
        let (lo, hi) = self.predict_range(key);
        search::last_mile_search(self.entries(), key, lo, hi)
    }

    /// Batched point lookups into a caller-owned buffer (cleared first).
    fn lookup_batch(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        out.clear();
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&k| self.lookup(k)));
    }

    /// Batched lookups for **ascending** probe keys: each window's lower
    /// edge is floored at the previous probe's landing position (positions
    /// are monotone in sorted probes), shrinking the last-mile work.
    /// Implementations may additionally reuse model state across probes.
    fn lookup_batch_sorted(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted probe batch");
        out.clear();
        out.reserve(keys.len());
        let entries = self.entries();
        let mut floor = 0usize;
        for &key in keys {
            let (lo, hi) = self.predict_range(key);
            let lo = lo.max(floor);
            let hi = hi.max(lo);
            match search::last_mile_search(entries, key, lo, hi) {
                Ok(i) => {
                    out.push(Some(entries[i].1));
                    floor = i;
                }
                Err(i) => {
                    out.push(None);
                    floor = i;
                }
            }
        }
    }
}

pub use alex::AlexIndex;
pub use btree::BPlusTree;
pub use pgm::{DynamicPgm, FlatSegments, PgmCore, PgmIndex};
pub use radix_spline::RadixSpline;
pub use rmi::Rmi;
