//! # ml4db-index — learned one-dimensional indexes and their baseline
//!
//! Implements the "replacement" paradigm's flagship family from the tutorial
//! (§3.2): the Recursive Model Index ([`rmi::Rmi`], Kraska et al. \[17\]), the
//! PGM-index ([`pgm::PgmIndex`], Ferragina & Vinciguerra \[8\]) with a dynamic
//! LSM-style variant, RadixSpline ([`radix_spline::RadixSpline`], Kipf et
//! al. \[16\]), and an updatable ALEX-style gapped-array index
//! ([`alex::AlexIndex`], Ding et al. \[6\]) — next to the classical
//! [`btree::BPlusTree`] they propose to replace.
//!
//! All indexes map sorted `u64` keys to `u64` payloads behind the common
//! [`OrderedIndex`] trait, with [`MutableIndex`] for the updatable ones, and
//! report their structural size for the model-efficiency experiments (E14).

#![warn(missing_docs)]

pub mod alex;
pub mod btree;
pub mod keys;
pub mod model;
pub mod pgm;
pub mod radix_spline;
pub mod rmi;
pub mod search;

/// A key-value pair; all indexes in this crate store these.
pub type KeyValue = (u64, u64);

/// Read-only interface over an ordered key-value index.
pub trait OrderedIndex {
    /// Number of stored entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup.
    fn get(&self, key: u64) -> Option<u64>;

    /// Inclusive range scan, ascending by key.
    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue>;

    /// Approximate structural memory footprint in bytes (models plus
    /// auxiliary structures; learned indexes win this metric).
    fn size_bytes(&self) -> usize;
}

/// An ordered index supporting single-key inserts.
pub trait MutableIndex: OrderedIndex {
    /// Inserts or overwrites a key.
    fn insert(&mut self, key: u64, value: u64);
}

pub use alex::AlexIndex;
pub use btree::BPlusTree;
pub use pgm::{DynamicPgm, PgmIndex};
pub use radix_spline::RadixSpline;
pub use rmi::Rmi;
