//! An ALEX-style updatable adaptive learned index (Ding et al. \[6\]):
//! model-based inserts into gapped arrays, node expansion on density
//! pressure, and node splits — the "replacement" paradigm's answer to the
//! static-RMI update problem.

use crate::model::LinearModel;
use crate::{KeyValue, MutableIndex, OrderedIndex};

/// Density above which a leaf expands or splits.
const MAX_DENSITY: f64 = 0.7;
/// Leaf entry count above which a full leaf splits instead of expanding.
const MAX_LEAF_KEYS: usize = 512;
/// Initial slots per empty leaf.
const MIN_CAPACITY: usize = 16;

/// A gapped array leaf: slots with gaps, positioned by a linear model.
#[derive(Clone, Debug)]
struct GappedLeaf {
    slots: Vec<Option<KeyValue>>,
    model: LinearModel,
    count: usize,
}

impl GappedLeaf {
    fn empty() -> Self {
        Self {
            slots: vec![None; MIN_CAPACITY],
            model: LinearModel::flat(),
            count: 0,
        }
    }

    /// Builds a leaf from sorted entries at the target density.
    fn from_sorted(entries: &[KeyValue]) -> Self {
        let count = entries.len();
        let capacity = ((count as f64 / (MAX_DENSITY * 0.7)).ceil() as usize)
            .max(MIN_CAPACITY)
            .max(count + 2);
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        // Model maps keys onto slot space.
        let pos_model = LinearModel::fit_positions(&keys);
        let scale = capacity as f64 / count.max(1) as f64;
        let model = LinearModel {
            slope: pos_model.slope * scale,
            intercept: pos_model.intercept * scale,
            key0: pos_model.key0,
        };
        let mut slots = vec![None; capacity];
        // Model-based placement preserving order: walk entries, placing each
        // at max(predicted, last + 1).
        let mut next_free = 0usize;
        for (i, &e) in entries.iter().enumerate() {
            let remaining = count - i; // this entry included
            let pred = model.predict(e.0, capacity);
            // Clamp so every remaining entry still fits after this one.
            let at = pred.max(next_free).min(capacity - remaining);
            slots[at] = Some(e);
            next_free = at + 1;
        }
        Self { slots, model, count }
    }

    fn density(&self) -> f64 {
        self.count as f64 / self.slots.len() as f64
    }

    /// Finds the slot holding `key`, searching outward from the prediction.
    fn find(&self, key: u64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let cap = self.slots.len();
        let pred = self.model.predict(key, cap);
        // Scan outward; gaps make classical exponential search awkward, and
        // leaves are small, so a bounded bidirectional scan is both simple
        // and fast.
        // First check the prediction, then alternate left/right.
        for radius in 0..cap {
            let right = pred + radius;
            if right < cap {
                if let Some(e) = self.slots[right] {
                    if e.0 == key {
                        return Some(right);
                    }
                    if e.0 < key && radius > 0 {
                        // Everything further left of `right` is smaller; only
                        // the right side can still hold the key.
                        return self.scan_right(right + 1, key);
                    }
                }
            }
            if radius > 0 && pred >= radius {
                let left = pred - radius;
                if let Some(e) = self.slots[left] {
                    if e.0 == key {
                        return Some(left);
                    }
                    if e.0 > key {
                        return self.scan_left(left, key);
                    }
                }
            }
            if right >= cap && pred < radius {
                break;
            }
        }
        None
    }

    fn scan_right(&self, from: usize, key: u64) -> Option<usize> {
        for (i, s) in self.slots.iter().enumerate().skip(from) {
            if let Some(e) = s {
                if e.0 == key {
                    return Some(i);
                }
                if e.0 > key {
                    return None;
                }
            }
        }
        None
    }

    fn scan_left(&self, from: usize, key: u64) -> Option<usize> {
        for i in (0..from).rev() {
            if let Some(e) = self.slots[i] {
                if e.0 == key {
                    return Some(i);
                }
                if e.0 < key {
                    return None;
                }
            }
        }
        None
    }

    /// Inserts keeping slot order; returns false when the leaf must grow.
    fn try_insert(&mut self, key: u64, value: u64) -> bool {
        if let Some(at) = self.find(key) {
            self.slots[at] = Some((key, value));
            return true;
        }
        if self.density() >= MAX_DENSITY {
            return false;
        }
        let cap = self.slots.len();
        let pred = self.model.predict(key, cap);
        // The key must land strictly after the last occupied entry < key (L)
        // and strictly before the first occupied entry >= key (P).
        let (l_bound, p_bound) = self.insertion_window(key, pred);
        let gap_start = l_bound.map_or(0, |l| l + 1);
        if let Some(gap) = (gap_start..p_bound.min(cap)).find(|&i| self.slots[i].is_none()) {
            self.slots[gap] = Some((key, value));
            self.count += 1;
            return true;
        }
        // No gap between neighbors: shift toward the nearest outside gap.
        let gap_right = (p_bound..cap).find(|&i| self.slots[i].is_none());
        let gap_left = l_bound.and_then(|l| (0..l).rev().find(|&i| self.slots[i].is_none()));
        let prefer_right = match (gap_left, gap_right) {
            (None, None) => return false,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(l), Some(r)) => r - p_bound <= l_bound.expect("gap_left implies L") - l,
        };
        if prefer_right {
            let g = gap_right.expect("prefer_right implies a right gap");
            // Shift [p_bound, g) right by one; key takes p_bound.
            for i in (p_bound..g).rev() {
                self.slots[i + 1] = self.slots[i].take();
            }
            self.slots[p_bound] = Some((key, value));
        } else {
            let g = gap_left.expect("checked above");
            let l = l_bound.expect("gap_left implies L");
            // Shift (g, L] left by one, vacating L; key (which is > all of
            // them) takes L.
            for i in g..l {
                self.slots[i] = self.slots[i + 1].take();
            }
            self.slots[l] = Some((key, value));
        }
        self.count += 1;
        true
    }

    /// Returns `(L, P)` for `key`: `L` is the slot of the last occupied
    /// entry `< key` (None if no smaller entry), `P` is the slot of the
    /// first occupied entry `>= key` (`slots.len()` if none). Starts from
    /// the model prediction and walks the occupied chain.
    fn insertion_window(&self, key: u64, pred: usize) -> (Option<usize>, usize) {
        let cap = self.slots.len();
        // Find the nearest occupied slot to the prediction.
        let start = pred.min(cap - 1);
        let nearest = (0..cap)
            .flat_map(|r| {
                let mut v = Vec::with_capacity(2);
                if start + r < cap {
                    v.push(start + r);
                }
                if r > 0 && start >= r {
                    v.push(start - r);
                }
                v
            })
            .find(|&i| self.slots[i].is_some());
        let Some(mut at) = nearest else {
            return (None, cap); // leaf is empty
        };
        if self.slots[at].expect("occupied").0 < key {
            // Walk right through occupied entries until >= key.
            let mut last_smaller = at;
            loop {
                match (at + 1..cap).find(|&i| self.slots[i].is_some()) {
                    None => return (Some(last_smaller), cap),
                    Some(next) => {
                        if self.slots[next].expect("occupied").0 >= key {
                            return (Some(last_smaller), next);
                        }
                        last_smaller = next;
                        at = next;
                    }
                }
            }
        } else {
            // Walk left through occupied entries until < key.
            let mut first_ge = at;
            loop {
                match (0..at).rev().find(|&i| self.slots[i].is_some()) {
                    None => return (None, first_ge),
                    Some(prev) => {
                        if self.slots[prev].expect("occupied").0 < key {
                            return (Some(prev), first_ge);
                        }
                        first_ge = prev;
                        at = prev;
                    }
                }
            }
        }
    }

    fn sorted_entries(&self) -> Vec<KeyValue> {
        self.slots.iter().flatten().copied().collect()
    }
}

/// The ALEX-style index: a sorted leaf directory over gapped-array leaves.
#[derive(Clone, Debug)]
pub struct AlexIndex {
    /// `(lowest key, leaf)` pairs, sorted by boundary key.
    leaves: Vec<(u64, GappedLeaf)>,
    len: usize,
    /// Structural-modification counters (for the E2 robustness experiment).
    pub expansions: usize,
    /// Number of leaf splits performed.
    pub splits: usize,
}

impl Default for AlexIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl AlexIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self { leaves: vec![(0, GappedLeaf::empty())], len: 0, expansions: 0, splits: 0 }
    }

    /// Bulk-loads from sorted entries.
    pub fn bulk_load(entries: &[KeyValue]) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "AlexIndex::bulk_load: unsorted input"
        );
        if entries.is_empty() {
            return Self::new();
        }
        let per_leaf = MAX_LEAF_KEYS / 2;
        let leaves: Vec<(u64, GappedLeaf)> = entries
            .chunks(per_leaf)
            .map(|chunk| (chunk[0].0, GappedLeaf::from_sorted(chunk)))
            .collect();
        Self { leaves, len: entries.len(), expansions: 0, splits: 0 }
    }

    fn leaf_for(&self, key: u64) -> usize {
        self.leaves.partition_point(|(b, _)| *b <= key).saturating_sub(1)
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    fn grow_leaf(&mut self, li: usize) {
        let entries = self.leaves[li].1.sorted_entries();
        if entries.len() >= MAX_LEAF_KEYS {
            // Split into two leaves.
            let mid = entries.len() / 2;
            let left = GappedLeaf::from_sorted(&entries[..mid]);
            let right_boundary = entries[mid].0;
            let right = GappedLeaf::from_sorted(&entries[mid..]);
            self.leaves[li].1 = left;
            self.leaves.insert(li + 1, (right_boundary, right));
            self.splits += 1;
        } else {
            // Expand & retrain in place.
            self.leaves[li].1 = GappedLeaf::from_sorted(&entries);
            self.expansions += 1;
        }
    }

    /// Validates ordering invariants (used in property tests).
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_key: Option<u64> = None;
        for (li, (boundary, leaf)) in self.leaves.iter().enumerate() {
            let entries = leaf.sorted_entries();
            if entries.len() != leaf.count {
                return Err(format!("leaf {li} count mismatch"));
            }
            // Slot order must be key order.
            if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("leaf {li} slots out of order"));
            }
            for e in &entries {
                if li > 0 && e.0 < *boundary {
                    return Err(format!("leaf {li} key {} below boundary {boundary}", e.0));
                }
                if let Some(p) = prev_key {
                    if e.0 <= p {
                        return Err(format!("global order violated at key {}", e.0));
                    }
                }
                prev_key = Some(e.0);
            }
        }
        Ok(())
    }
}

impl OrderedIndex for AlexIndex {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: u64) -> Option<u64> {
        let li = self.leaf_for(key);
        let leaf = &self.leaves[li].1;
        leaf.find(key).and_then(|at| leaf.slots[at]).map(|e| e.1)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        let start = self.leaf_for(lo);
        for (boundary, leaf) in &self.leaves[start..] {
            if *boundary > hi && !out.is_empty() {
                break;
            }
            for e in leaf.slots.iter().flatten() {
                if e.0 >= lo && e.0 <= hi {
                    out.push(*e);
                }
            }
            if *boundary > hi {
                break;
            }
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    fn size_bytes(&self) -> usize {
        self.leaves
            .iter()
            .map(|(_, l)| {
                l.slots.capacity() * std::mem::size_of::<Option<KeyValue>>()
                    + std::mem::size_of::<LinearModel>()
            })
            .sum()
    }
}

impl MutableIndex for AlexIndex {
    fn insert(&mut self, key: u64, value: u64) {
        let li = self.leaf_for(key);
        let existed = self.leaves[li].1.find(key).is_some();
        if self.leaves[li].1.try_insert(key, value) {
            if !existed {
                self.len += 1;
            }
            return;
        }
        self.grow_leaf(li);
        // Retry: after growth the key may route to a new leaf.
        let li = self.leaf_for(key);
        let ok = self.leaves[li].1.try_insert(key, value);
        debug_assert!(ok, "insert failed after leaf growth");
        if ok && !existed {
            self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_and_get() {
        let mut idx = AlexIndex::new();
        for k in (0..2000u64).rev() {
            idx.insert(k * 2, k);
        }
        idx.validate().unwrap();
        assert_eq!(idx.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(idx.get(k * 2), Some(k));
            assert_eq!(idx.get(k * 2 + 1), None);
        }
    }

    #[test]
    fn bulk_load_and_get() {
        let entries: Vec<KeyValue> = (0..10_000u64).map(|k| (k * 7, k)).collect();
        let idx = AlexIndex::bulk_load(&entries);
        idx.validate().unwrap();
        for &(k, v) in entries.iter().step_by(13) {
            assert_eq!(idx.get(k), Some(v));
        }
    }

    #[test]
    fn overwrite_value() {
        let mut idx = AlexIndex::new();
        idx.insert(42, 1);
        idx.insert(42, 2);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(42), Some(2));
    }

    #[test]
    fn splits_happen_under_pressure() {
        let mut idx = AlexIndex::new();
        for k in 0..5000u64 {
            idx.insert(k, k);
        }
        assert!(idx.num_leaves() > 1, "no splits after 5000 inserts");
        assert!(idx.splits > 0);
        idx.validate().unwrap();
    }

    #[test]
    fn range_scan() {
        let mut idx = AlexIndex::new();
        for k in 0..1000u64 {
            idx.insert(k * 3, k);
        }
        let got = idx.range(30, 60);
        let expected: Vec<KeyValue> = (10..=20u64).map(|k| (k * 3, k)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn skewed_inserts_into_bulk_loaded() {
        // Bulk-load uniform, then hammer one hot region (the ALEX setting).
        let entries: Vec<KeyValue> = (0..5000u64).map(|k| (k * 1000, k)).collect();
        let mut idx = AlexIndex::bulk_load(&entries);
        for k in 0..3000u64 {
            idx.insert(2_000_000 + k, k);
        }
        idx.validate().unwrap();
        for k in (0..3000u64).step_by(17) {
            assert_eq!(idx.get(2_000_000 + k), Some(k));
        }
        for &(k, v) in entries.iter().step_by(97) {
            assert_eq!(idx.get(k), Some(v), "pre-existing key lost");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// ALEX agrees with a BTreeMap oracle and keeps its invariants under
        /// arbitrary insert workloads.
        #[test]
        fn oracle_agreement(ops in proptest::collection::vec((0u64..10_000, 0u64..100), 1..500)) {
            let mut idx = AlexIndex::new();
            let mut oracle = BTreeMap::new();
            for (k, v) in ops {
                idx.insert(k, v);
                oracle.insert(k, v);
            }
            idx.validate().unwrap();
            prop_assert_eq!(idx.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(idx.get(k), Some(v), "key {}", k);
            }
            let got = idx.range(2500, 7500);
            let expected: Vec<KeyValue> =
                oracle.range(2500..=7500).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
