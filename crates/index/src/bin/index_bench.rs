//! Learned-index lookup benchmark: builds PGM, RMI, and RadixSpline over a
//! uniform `u64` key set, drives the two-phase single / batch / sorted-batch
//! entry points against a `slice::binary_search` baseline, and writes
//! `BENCH_index.json`.
//!
//! All throughput figures are wall-clock on the running host — compare them
//! only against the baseline numbers from the *same* run (the committed
//! per-PR speedup trajectory), never raw across machines.
//!
//! Knobs (all optional, all env vars):
//!
//! * `ML4DB_INDEX_N`       — keys in the index (default 1 000 000)
//! * `ML4DB_INDEX_PROBES`  — lookups per measurement (default 1 000 000)
//! * `ML4DB_INDEX_BATCH`   — batch size for the batched entry points
//!   (default 4096)
//! * `ML4DB_INDEX_SEED`    — RNG seed (default 42)

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ml4db_index::{KeyValue, PgmIndex, RadixSpline, Rmi, TwoPhaseIndex};
use serde_json::Value;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `n` distinct sorted keys uniform over the full `u64` range.
fn uniform_keys(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..n + n / 8 + 16).map(|_| rng.gen::<u64>()).collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(keys.len() >= n, "not enough distinct keys");
    keys.truncate(n);
    keys
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Sums payload hits — a checksum that forces the lookups to happen and
/// lets each run be cross-checked against the baseline's.
fn drain(out: &[Option<u64>]) -> u64 {
    out.iter().map(|v| v.unwrap_or(0)).fold(0u64, u64::wrapping_add)
}

struct Measured {
    build_secs: f64,
    size_bytes: usize,
    single_per_sec: f64,
    batch_per_sec: f64,
    sorted_batch_per_sec: f64,
    checksum: u64,
}

fn measure<I: TwoPhaseIndex>(
    build: impl FnOnce() -> I,
    probes: &[u64],
    sorted_probes: &[u64],
    batch: usize,
) -> Measured {
    let (idx, build_secs) = time(build);
    let m = probes.len() as f64;

    let (sum_single, t_single) = time(|| {
        let mut sum = 0u64;
        for &k in probes {
            sum = sum.wrapping_add(black_box(idx.lookup(black_box(k))).unwrap_or(0));
        }
        sum
    });

    let mut out: Vec<Option<u64>> = Vec::with_capacity(batch);
    let (sum_batch, t_batch) = time(|| {
        let mut sum = 0u64;
        for chunk in probes.chunks(batch) {
            idx.lookup_batch(black_box(chunk), &mut out);
            sum = sum.wrapping_add(drain(&out));
        }
        sum
    });

    // Chunks of a globally sorted probe array stay sorted.
    let (sum_sorted, t_sorted) = time(|| {
        let mut sum = 0u64;
        for chunk in sorted_probes.chunks(batch) {
            idx.lookup_batch_sorted(black_box(chunk), &mut out);
            sum = sum.wrapping_add(drain(&out));
        }
        sum
    });

    assert_eq!(sum_single, sum_batch, "batch disagrees with single lookups");
    assert_eq!(sum_single, sum_sorted, "sorted batch disagrees with single lookups");

    Measured {
        build_secs,
        size_bytes: idx.size_bytes(),
        single_per_sec: m / t_single,
        batch_per_sec: m / t_batch,
        sorted_batch_per_sec: m / t_sorted,
        checksum: sum_single,
    }
}

fn to_json(m: &Measured, n: usize) -> Value {
    let mut o = BTreeMap::new();
    o.insert("build_secs".into(), Value::Number(m.build_secs));
    o.insert("size_bytes".into(), Value::Number(m.size_bytes as f64));
    o.insert("bytes_per_key".into(), Value::Number(m.size_bytes as f64 / n as f64));
    o.insert("single_lookups_per_sec".into(), Value::Number(m.single_per_sec.round()));
    o.insert("batch_lookups_per_sec".into(), Value::Number(m.batch_per_sec.round()));
    o.insert(
        "sorted_batch_lookups_per_sec".into(),
        Value::Number(m.sorted_batch_per_sec.round()),
    );
    Value::Object(o)
}

fn main() {
    let n = env_u64("ML4DB_INDEX_N", 1_000_000) as usize;
    let n_probes = env_u64("ML4DB_INDEX_PROBES", 1_000_000) as usize;
    let batch = env_u64("ML4DB_INDEX_BATCH", 4096).max(1) as usize;
    let seed = env_u64("ML4DB_INDEX_SEED", 42);

    let mut rng = StdRng::seed_from_u64(seed);
    let keys = uniform_keys(n, &mut rng);
    let entries: Vec<KeyValue> = keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect();

    // Probe mix: mostly present keys with a tail of uniform (almost surely
    // absent) keys, so the miss path is exercised too.
    let probes: Vec<u64> = (0..n_probes)
        .map(|_| {
            if rng.gen_bool(0.875) {
                keys[rng.gen_range(0..n)]
            } else {
                rng.gen::<u64>()
            }
        })
        .collect();
    let mut sorted_probes = probes.clone();
    sorted_probes.sort_unstable();

    // Baseline: plain binary search over the sorted entry array, same
    // chunked drive loop as the batch measurements.
    let m = probes.len() as f64;
    let bs = |k: u64| -> Option<u64> {
        entries.binary_search_by_key(&k, |e| e.0).ok().map(|i| entries[i].1)
    };
    let (base_sum, t_base_single) = time(|| {
        let mut sum = 0u64;
        for &k in &probes {
            sum = sum.wrapping_add(black_box(bs(black_box(k))).unwrap_or(0));
        }
        sum
    });
    let mut out: Vec<Option<u64>> = Vec::with_capacity(batch);
    let (base_sum_batch, t_base_batch) = time(|| {
        let mut sum = 0u64;
        for chunk in probes.chunks(batch) {
            out.clear();
            out.extend(chunk.iter().map(|&k| bs(k)));
            sum = sum.wrapping_add(drain(&out));
        }
        sum
    });
    assert_eq!(base_sum, base_sum_batch);
    drop(out);

    let pgm = measure(
        || PgmIndex::build(entries.clone(), 16),
        &probes,
        &sorted_probes,
        batch,
    );
    let rmi_fanout = (n / 64).max(1);
    let rmi = measure(
        || Rmi::build(entries.clone(), rmi_fanout),
        &probes,
        &sorted_probes,
        batch,
    );
    let rs = measure(
        || RadixSpline::build(entries.clone(), 32),
        &probes,
        &sorted_probes,
        batch,
    );
    for (name, x) in [("pgm", &pgm), ("rmi", &rmi), ("radix_spline", &rs)] {
        assert_eq!(x.checksum, base_sum, "{name} disagrees with binary search");
    }

    let base_batch_per_sec = m / t_base_batch;
    let best_batch =
        pgm.batch_per_sec.max(rmi.batch_per_sec).max(rs.batch_per_sec);

    let mut baseline = BTreeMap::new();
    baseline.insert("single_lookups_per_sec".into(), Value::Number((m / t_base_single).round()));
    baseline.insert("batch_lookups_per_sec".into(), Value::Number(base_batch_per_sec.round()));
    baseline
        .insert("size_bytes".into(), Value::Number((entries.len() * 16) as f64));

    let mut indexes = BTreeMap::new();
    indexes.insert("pgm".to_string(), to_json(&pgm, n));
    indexes.insert("rmi".to_string(), to_json(&rmi, n));
    indexes.insert("radix_spline".to_string(), to_json(&rs, n));

    let mut o = BTreeMap::new();
    o.insert("bench".into(), Value::String("index_two_phase".into()));
    o.insert("n_keys".into(), Value::Number(n as f64));
    o.insert("n_probes".into(), Value::Number(n_probes as f64));
    o.insert("batch_size".into(), Value::Number(batch as f64));
    o.insert("seed".into(), Value::Number(seed as f64));
    o.insert("distribution".into(), Value::String("uniform_u64".into()));
    o.insert("baseline_binary_search".into(), Value::Object(baseline));
    o.insert("indexes".into(), Value::Object(indexes));
    o.insert(
        "best_batch_speedup_vs_baseline".into(),
        Value::Number((best_batch / base_batch_per_sec * 100.0).round() / 100.0),
    );
    let json = Value::Object(o).to_string();

    std::fs::write("BENCH_index.json", format!("{json}\n")).expect("write BENCH_index.json");
    println!("{json}");
    eprintln!(
        "index_bench: n={n}, probes={n_probes}, baseline batch {:.2}M/s | pgm {:.2}M/s, rmi {:.2}M/s, rs {:.2}M/s (best {:.2}x)",
        base_batch_per_sec / 1e6,
        pgm.batch_per_sec / 1e6,
        rmi.batch_per_sec / 1e6,
        rs.batch_per_sec / 1e6,
        best_batch / base_batch_per_sec,
    );
}
