//! The Recursive Model Index (Kraska et al. \[17\]) — the original
//! "replacement" learned index: a two-stage hierarchy of linear models that
//! learns the CDF of the key distribution and predicts record positions,
//! with per-leaf error bounds guaranteeing correct last-mile search.

use crate::model::LinearModel;
use crate::{KeyValue, OrderedIndex, TwoPhaseIndex};

/// A two-stage RMI over a static sorted array.
///
/// Stage 1 is a single linear model routing keys to one of `fanout` stage-2
/// models; each stage-2 model predicts the global position and stores its
/// maximum training error. Leaves are stored flattened (structure-of-arrays)
/// with per-leaf entry offsets, so [`TwoPhaseIndex::predict_range`] windows
/// can be clamped to the leaf's entry run — which is what makes them correct
/// for *absent* keys too: the monotone root sends a key to leaf `b` only if
/// every entry in earlier leaves is below it and every entry in later leaves
/// above it, so the insertion point always lies within `[starts[b],
/// starts[b+1]]`.
#[derive(Clone, Debug)]
pub struct Rmi {
    entries: Vec<KeyValue>,
    root: LinearModel,
    fanout: usize,
    /// SoA leaf models: slope/intercept/anchor per leaf.
    slopes: Vec<f64>,
    intercepts: Vec<f64>,
    key0s: Vec<u64>,
    /// Max training error per leaf.
    errs: Vec<u32>,
    /// `starts[b]..starts[b + 1]` is leaf `b`'s entry run (`fanout + 1`
    /// entries, last is `n`).
    starts: Vec<u32>,
}

impl Rmi {
    /// Builds an RMI with the given stage-2 fan-out from sorted entries.
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not strictly sorted.
    pub fn build(entries: Vec<KeyValue>, fanout: usize) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "Rmi::build: unsorted input"
        );
        let fanout = fanout.max(1);
        let n = entries.len();
        assert!(n <= u32::MAX as usize, "Rmi: > u32::MAX entries");
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        // Root model maps keys onto leaf ids: fit positions then rescale.
        // Least squares over ascending positions never fits a negative
        // slope, so leaf assignment is monotone in the key.
        let pos_model = LinearModel::fit_positions(&keys);
        let scale = fanout as f64 / n.max(1) as f64;
        let root = LinearModel {
            slope: pos_model.slope * scale,
            intercept: pos_model.intercept * scale,
            key0: pos_model.key0,
        };
        // Partition keys by root assignment (monotone in key), recording
        // each leaf's entry run.
        let mut starts = vec![0u32; fanout + 1];
        {
            let mut counts = vec![0u32; fanout];
            for &k in &keys {
                counts[root.predict(k, fanout)] += 1;
            }
            let mut acc = 0u32;
            for (b, &c) in counts.iter().enumerate() {
                starts[b] = acc;
                acc += c;
            }
            starts[fanout] = acc;
        }
        let mut slopes = Vec::with_capacity(fanout);
        let mut intercepts = Vec::with_capacity(fanout);
        let mut key0s = Vec::with_capacity(fanout);
        let mut errs = Vec::with_capacity(fanout);
        for b in 0..fanout {
            let (s, e) = (starts[b] as usize, starts[b + 1] as usize);
            let bucket = &entries[s..e];
            let model = match bucket.len() {
                0 => LinearModel::flat(),
                1 => LinearModel { slope: 0.0, intercept: s as f64, key0: bucket[0].0 },
                _ => {
                    let first = bucket[0];
                    let last = bucket[bucket.len() - 1];
                    LinearModel::through(
                        (first.0, s as f64),
                        (last.0, (e - 1) as f64),
                    )
                }
            };
            let err = bucket
                .iter()
                .enumerate()
                .map(|(i, &(k, _))| model.predict(k, n).abs_diff(s + i))
                .max()
                .unwrap_or(0);
            slopes.push(model.slope);
            intercepts.push(model.intercept);
            key0s.push(model.key0);
            errs.push(err as u32);
        }
        Self { entries, root, fanout, slopes, intercepts, key0s, errs, starts }
    }

    /// Maximum stage-2 error bound over all leaves (the index's worst-case
    /// search window radius).
    pub fn max_error(&self) -> usize {
        self.errs.iter().map(|&e| e as usize).max().unwrap_or(0)
    }

    /// First position whose key is `>= key` (used by range scans). Correct
    /// even for keys outside any training bucket: the window is clamped to
    /// the routed leaf's entry run, which brackets every such key.
    pub fn lower_bound(&self, key: u64) -> usize {
        match self.lookup_pos(key) {
            Ok(i) => i,
            Err(i) => i,
        }
    }

    /// Borrow the underlying sorted entries.
    pub fn entries(&self) -> &[KeyValue] {
        &self.entries
    }
}

impl OrderedIndex for Rmi {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.lookup(key)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi || self.entries.is_empty() {
            return Vec::new();
        }
        let start = self.lower_bound(lo);
        self.entries[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
    }

    fn size_bytes(&self) -> usize {
        // Models only; the sorted data array is the table itself.
        std::mem::size_of::<LinearModel>()
            + self.fanout * (8 + 8 + 8 + 4)
            + self.starts.len() * 4
    }
}

impl TwoPhaseIndex for Rmi {
    fn entries(&self) -> &[KeyValue] {
        &self.entries
    }

    fn predict_range(&self, key: u64) -> (usize, usize) {
        let n = self.entries.len();
        if n == 0 {
            return (0, 0);
        }
        let b = self.root.predict(key, self.fanout);
        let (s, e) = (self.starts[b] as usize, self.starts[b + 1] as usize);
        let err = self.errs[b] as usize;
        let leaf = LinearModel {
            slope: self.slopes[b],
            intercept: self.intercepts[b],
            key0: self.key0s[b],
        };
        let pred = leaf.predict(key, n).clamp(s, e.saturating_sub(1).max(s));
        // err from training, +1 for absent keys between members (leaf
        // models are monotone), +1 for integer rounding; the leaf-run clamp
        // keeps windows exact at bucket edges (and exactly `[s, s]`-tight
        // for empty buckets).
        let w = err + 2;
        let lo = pred.saturating_sub(w).max(s);
        let hi = (pred + w + 1).min(e + 1).min(n);
        (lo, hi.max(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_entries, KeyDistribution};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_all_present_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 2.0 },
            KeyDistribution::Clustered { clusters: 16 },
        ] {
            let entries = generate_entries(dist, 10_000, &mut rng);
            let rmi = Rmi::build(entries.clone(), 64);
            for &(k, v) in &entries {
                assert_eq!(rmi.get(k), Some(v), "{dist:?} key {k}");
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let entries: Vec<KeyValue> = (0..1000u64).map(|k| (k * 10, k)).collect();
        let rmi = Rmi::build(entries, 32);
        for k in [1u64, 5, 11, 9999, 10_001] {
            assert_eq!(rmi.get(k), None, "key {k}");
        }
    }

    #[test]
    fn range_matches_filter() {
        let entries: Vec<KeyValue> = (0..2000u64).map(|k| (k * 3, k)).collect();
        let rmi = Rmi::build(entries.clone(), 32);
        let got = rmi.range(100, 200);
        let expected: Vec<KeyValue> =
            entries.iter().filter(|e| e.0 >= 100 && e.0 <= 200).copied().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sequential_keys_have_tiny_error() {
        let entries: Vec<KeyValue> = (0..100_000u64).map(|k| (k, k)).collect();
        let rmi = Rmi::build(entries, 256);
        assert!(rmi.max_error() <= 1, "error {}", rmi.max_error());
    }

    #[test]
    fn model_far_smaller_than_btree() {
        use crate::btree::BPlusTree;
        let entries: Vec<KeyValue> = (0..50_000u64).map(|k| (k * 7, k)).collect();
        let rmi = Rmi::build(entries.clone(), 128);
        let bt = BPlusTree::bulk_load(&entries);
        assert!(
            rmi.size_bytes() * 10 < bt.size_bytes(),
            "rmi {} vs btree {}",
            rmi.size_bytes(),
            bt.size_bytes()
        );
    }

    #[test]
    fn empty_index() {
        let rmi = Rmi::build(Vec::new(), 16);
        assert_eq!(rmi.get(5), None);
        assert!(rmi.range(0, 100).is_empty());
        assert_eq!(rmi.len(), 0);
    }

    #[test]
    fn predict_range_contains_position_or_insertion_point() {
        let mut rng = StdRng::seed_from_u64(9);
        let entries =
            generate_entries(KeyDistribution::Clustered { clusters: 16 }, 10_000, &mut rng);
        let rmi = Rmi::build(entries.clone(), 64);
        let probe = |k: u64| {
            let (lo, hi) = rmi.predict_range(k);
            let p = match entries.binary_search_by_key(&k, |e| e.0) {
                Ok(i) => i,
                Err(i) => i,
            };
            assert!(lo <= p && p <= hi, "key {k}: pos {p} outside [{lo}, {hi})");
            assert!(hi <= entries.len());
        };
        for &(k, _) in entries.iter().step_by(11) {
            probe(k);
            probe(k.wrapping_add(1));
            probe(k.saturating_sub(1));
        }
        probe(0);
        probe(u64::MAX);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// RMI lookups agree with a sorted-vec oracle for present and absent
        /// keys across random key sets.
        #[test]
        fn oracle_agreement(
            keys in proptest::collection::btree_set(0u64..100_000, 1..500),
            probes in proptest::collection::vec(0u64..100_000, 50),
        ) {
            let entries: Vec<KeyValue> =
                keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
            let rmi = Rmi::build(entries.clone(), 16);
            for p in probes {
                let expected = entries
                    .binary_search_by_key(&p, |e| e.0)
                    .ok()
                    .map(|i| entries[i].1);
                prop_assert_eq!(rmi.get(p), expected);
                // lower_bound is exactly partition_point.
                let lb = entries.partition_point(|e| e.0 < p);
                prop_assert_eq!(rmi.lower_bound(p), lb);
            }
        }
    }
}
