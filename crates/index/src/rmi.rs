//! The Recursive Model Index (Kraska et al. \[17\]) — the original
//! "replacement" learned index: a two-stage hierarchy of linear models that
//! learns the CDF of the key distribution and predicts record positions,
//! with per-leaf error bounds guaranteeing correct last-mile search.

use crate::model::LinearModel;
use crate::search::{bounded_binary_search, exponential_search};
use crate::{KeyValue, OrderedIndex};

/// A two-stage RMI over a static sorted array.
///
/// Stage 1 is a single linear model routing keys to one of `fanout` stage-2
/// models; each stage-2 model predicts the global position and stores its
/// maximum training error, so lookups binary-search only
/// `2 * err + 1` slots.
#[derive(Clone, Debug)]
pub struct Rmi {
    entries: Vec<KeyValue>,
    root: LinearModel,
    fanout: usize,
    leaves: Vec<LeafModel>,
}

#[derive(Clone, Copy, Debug)]
struct LeafModel {
    model: LinearModel,
    err: usize,
}

impl Rmi {
    /// Builds an RMI with the given stage-2 fan-out from sorted entries.
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not strictly sorted.
    pub fn build(entries: Vec<KeyValue>, fanout: usize) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "Rmi::build: unsorted input"
        );
        let fanout = fanout.max(1);
        let n = entries.len();
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        // Root model maps keys onto leaf ids: fit positions then rescale.
        let pos_model = LinearModel::fit_positions(&keys);
        let scale = fanout as f64 / n.max(1) as f64;
        let root = LinearModel {
            slope: pos_model.slope * scale,
            intercept: pos_model.intercept * scale,
        };
        // Partition keys by root assignment (monotone in key).
        let mut leaf_keys: Vec<Vec<(u64, usize)>> = vec![Vec::new(); fanout];
        for (i, &k) in keys.iter().enumerate() {
            let leaf = root.predict(k, fanout);
            leaf_keys[leaf].push((k, i));
        }
        let leaves = leaf_keys
            .iter()
            .map(|bucket| {
                if bucket.is_empty() {
                    return LeafModel { model: LinearModel::flat(), err: 0 };
                }
                // Fit global positions against keys within the bucket.
                let model = if bucket.len() == 1 {
                    LinearModel { slope: 0.0, intercept: bucket[0].1 as f64 }
                } else {
                    let first = bucket[0];
                    let last = bucket[bucket.len() - 1];
                    let anchor = LinearModel::through(
                        (first.0, first.1 as f64),
                        (last.0, last.1 as f64),
                    );
                    anchor
                };
                let err = bucket
                    .iter()
                    .map(|&(k, i)| model.predict(k, n).abs_diff(i))
                    .max()
                    .unwrap_or(0);
                LeafModel { model, err }
            })
            .collect();
        Self { entries, root, fanout, leaves }
    }

    /// Maximum stage-2 error bound over all leaves (the index's worst-case
    /// search window radius).
    pub fn max_error(&self) -> usize {
        self.leaves.iter().map(|l| l.err).max().unwrap_or(0)
    }

    fn locate(&self, key: u64) -> (usize, usize) {
        let leaf_id = self.root.predict(key, self.fanout);
        let leaf = &self.leaves[leaf_id];
        let pos = leaf.model.predict(key, self.entries.len());
        (pos, leaf.err)
    }

    /// First position whose key is `>= key` (used by range scans). Always
    /// correct even for keys outside any training bucket, because it falls
    /// back to exponential search from the prediction.
    pub fn lower_bound(&self, key: u64) -> usize {
        let (pos, _) = self.locate(key);
        match exponential_search(&self.entries, key, pos).0 {
            Ok(i) => i,
            Err(i) => i,
        }
    }

    /// Borrow the underlying sorted entries.
    pub fn entries(&self) -> &[KeyValue] {
        &self.entries
    }
}

impl OrderedIndex for Rmi {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        let (pos, err) = self.locate(key);
        let lo = pos.saturating_sub(err);
        let hi = pos + err;
        bounded_binary_search(&self.entries, key, lo, hi)
            .ok()
            .map(|i| self.entries[i].1)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        if lo > hi || self.entries.is_empty() {
            return Vec::new();
        }
        let start = self.lower_bound(lo);
        self.entries[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
    }

    fn size_bytes(&self) -> usize {
        // Models only; the sorted data array is the table itself.
        std::mem::size_of::<LinearModel>() + self.leaves.len() * std::mem::size_of::<LeafModel>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_entries, KeyDistribution};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_all_present_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 2.0 },
            KeyDistribution::Clustered { clusters: 16 },
        ] {
            let entries = generate_entries(dist, 10_000, &mut rng);
            let rmi = Rmi::build(entries.clone(), 64);
            for &(k, v) in &entries {
                assert_eq!(rmi.get(k), Some(v), "{dist:?} key {k}");
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let entries: Vec<KeyValue> = (0..1000u64).map(|k| (k * 10, k)).collect();
        let rmi = Rmi::build(entries, 32);
        for k in [1u64, 5, 11, 9999, 10_001] {
            assert_eq!(rmi.get(k), None, "key {k}");
        }
    }

    #[test]
    fn range_matches_filter() {
        let entries: Vec<KeyValue> = (0..2000u64).map(|k| (k * 3, k)).collect();
        let rmi = Rmi::build(entries.clone(), 32);
        let got = rmi.range(100, 200);
        let expected: Vec<KeyValue> =
            entries.iter().filter(|e| e.0 >= 100 && e.0 <= 200).copied().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sequential_keys_have_tiny_error() {
        let entries: Vec<KeyValue> = (0..100_000u64).map(|k| (k, k)).collect();
        let rmi = Rmi::build(entries, 256);
        assert!(rmi.max_error() <= 1, "error {}", rmi.max_error());
    }

    #[test]
    fn model_far_smaller_than_btree() {
        use crate::btree::BPlusTree;
        let entries: Vec<KeyValue> = (0..50_000u64).map(|k| (k * 7, k)).collect();
        let rmi = Rmi::build(entries.clone(), 128);
        let bt = BPlusTree::bulk_load(&entries);
        assert!(
            rmi.size_bytes() * 10 < bt.size_bytes(),
            "rmi {} vs btree {}",
            rmi.size_bytes(),
            bt.size_bytes()
        );
    }

    #[test]
    fn empty_index() {
        let rmi = Rmi::build(Vec::new(), 16);
        assert_eq!(rmi.get(5), None);
        assert!(rmi.range(0, 100).is_empty());
        assert_eq!(rmi.len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// RMI lookups agree with a sorted-vec oracle for present and absent
        /// keys across random key sets.
        #[test]
        fn oracle_agreement(
            keys in proptest::collection::btree_set(0u64..100_000, 1..500),
            probes in proptest::collection::vec(0u64..100_000, 50),
        ) {
            let entries: Vec<KeyValue> =
                keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
            let rmi = Rmi::build(entries.clone(), 16);
            for p in probes {
                let expected = entries
                    .binary_search_by_key(&p, |e| e.0)
                    .ok()
                    .map(|i| entries[i].1);
                prop_assert_eq!(rmi.get(p), expected);
                // lower_bound is exactly partition_point.
                let lb = entries.partition_point(|e| e.0 < p);
                prop_assert_eq!(rmi.lower_bound(p), lb);
            }
        }
    }
}
