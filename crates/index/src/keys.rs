//! Key-set generators with controllable distribution shape, used by the
//! learned-index experiments (E1/E2) and tests. Learned indexes shine on
//! smooth CDFs and struggle on adversarially jumpy ones; these generators
//! cover that spectrum.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

use crate::KeyValue;

/// Distribution family of a synthetic key set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDistribution {
    /// Dense sequential keys `base, base+1, ...` (best case for models).
    Sequential,
    /// Uniform random draws over `0..max`.
    Uniform {
        /// Exclusive upper bound of the key domain.
        max: u64,
    },
    /// Lognormal(μ=0, σ) scaled to u64 — heavy-tailed, hard for one line.
    LogNormal {
        /// Shape parameter; larger = heavier tail.
        sigma: f64,
    },
    /// Clustered: dense runs separated by large random gaps (models the
    /// "pieces" that piecewise indexes like PGM exploit).
    Clustered {
        /// Number of clusters.
        clusters: usize,
    },
}

/// Generates `n` strictly increasing unique keys from the distribution.
pub fn generate_keys<R: Rng + ?Sized>(dist: KeyDistribution, n: usize, rng: &mut R) -> Vec<u64> {
    let mut keys: Vec<u64> = match dist {
        KeyDistribution::Sequential => (0..n as u64).map(|i| 1000 + i).collect(),
        KeyDistribution::Uniform { max } => {
            let mut set = std::collections::BTreeSet::new();
            while set.len() < n {
                set.insert(rng.gen_range(0..max));
            }
            set.into_iter().collect()
        }
        KeyDistribution::LogNormal { sigma } => {
            let ln = LogNormal::new(0.0, sigma).expect("valid lognormal");
            let mut set = std::collections::BTreeSet::new();
            while set.len() < n {
                let v: f64 = ln.sample(rng);
                set.insert((v * 1e9) as u64);
            }
            set.into_iter().collect()
        }
        KeyDistribution::Clustered { clusters } => {
            let clusters = clusters.max(1);
            let per = (n / clusters).max(1);
            let mut keys = Vec::with_capacity(n);
            let mut base = 0u64;
            while keys.len() < n {
                base += rng.gen_range(1_000_000..100_000_000);
                for i in 0..per {
                    if keys.len() >= n {
                        break;
                    }
                    keys.push(base + i as u64 * rng.gen_range(1..4));
                }
                base += per as u64 * 4;
            }
            keys.sort_unstable();
            keys.dedup();
            // Top up if dedup removed entries.
            let mut next = keys.last().copied().unwrap_or(0) + 1;
            while keys.len() < n {
                keys.push(next);
                next += 1;
            }
            keys
        }
    };
    keys.sort_unstable();
    keys.dedup();
    debug_assert_eq!(keys.len(), n, "generator produced duplicates");
    keys
}

/// Generates `(key, payload)` entries where the payload is the key's rank —
/// the layout every index test in this crate expects.
pub fn generate_entries<R: Rng + ?Sized>(
    dist: KeyDistribution,
    n: usize,
    rng: &mut R,
) -> Vec<KeyValue> {
    generate_keys(dist, n, rng)
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_distributions_sorted_unique() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform { max: 1 << 40 },
            KeyDistribution::LogNormal { sigma: 1.0 },
            KeyDistribution::Clustered { clusters: 10 },
        ] {
            let keys = generate_keys(dist, 5000, &mut rng);
            assert_eq!(keys.len(), 5000, "{dist:?}");
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{dist:?} not strictly sorted");
        }
    }

    #[test]
    fn entries_payload_is_rank() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = generate_entries(KeyDistribution::Uniform { max: 1 << 30 }, 100, &mut rng);
        for (i, &(_, v)) in e.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }
}
