//! Learned-index staleness under a bulk-insert workload shift.
//!
//! RMI and PGM are *static* learned structures: they memorize the key
//! distribution they were built over. The `ml4db-datagen` `BulkInsert`
//! scenario appends fresh keys past the old range, so a stale index (a)
//! misses point lookups on the new keys and (b) loses range recall on
//! windows touching the new region — while the classical B+-tree rebuilt
//! over the same stream stays exact. The model lifecycle closes the gap:
//! a candidate rebuilt over the post-shift key stream clears the
//! validation gate (scored as `1 − recall` against the incumbent and the
//! B+-tree baseline) and restores recall after promotion.

use ml4db_datagen::{key_stream, ShiftKind, ShiftScenario};
use ml4db_index::{BPlusTree, OrderedIndex, PgmIndex, Rmi};
use ml4db_lifecycle::{GateConfig, LifecycleState, ModelRegistry};
use ml4db_storage::datasets::{joblite, DatasetConfig};
use ml4db_storage::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shifted_key_streams(seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = Database::analyze(
        joblite(&DatasetConfig { base_rows: 400, ..Default::default() }, &mut rng),
        &mut rng,
    );
    let scenario = ShiftScenario::new(ShiftKind::BulkInsert, seed);
    let shifted = scenario.apply(&db);
    (key_stream(&db, "title", "id"), key_stream(&shifted, "title", "id"))
}

fn entries(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter().map(|&k| (k, k.wrapping_mul(10))).collect()
}

/// Fraction of `keys` that `idx` resolves to the correct payload.
fn lookup_accuracy(idx: &dyn OrderedIndex, keys: &[u64]) -> f64 {
    let good =
        keys.iter().filter(|&&k| idx.get(k) == Some(k.wrapping_mul(10))).count();
    good as f64 / keys.len().max(1) as f64
}

/// Mean recall of 8 quantile range windows over `keys` (kNN-style range
/// probes): |returned ∩ truth| / |truth| per window.
fn range_recall(idx: &dyn OrderedIndex, keys: &[u64]) -> f64 {
    let windows = 8;
    let mut total = 0.0;
    for w in 0..windows {
        let lo = keys[w * keys.len() / windows];
        let hi = keys[((w + 1) * keys.len() / windows).min(keys.len() - 1)];
        let truth = keys.iter().filter(|&&k| lo <= k && k <= hi).count();
        let got = idx
            .range(lo, hi)
            .iter()
            .filter(|(k, v)| *v == k.wrapping_mul(10))
            .count();
        total += got as f64 / truth.max(1) as f64;
    }
    total / windows as f64
}

/// The staleness-and-recovery claim, generic over the learned builder:
/// degrade on the shifted stream, rebuild, clear the gate, recover.
fn staleness_and_recovery<I: OrderedIndex>(build: impl Fn(&[u64]) -> I, name: &str) {
    let (before, after) = shifted_key_streams(23);
    assert!(after.len() > before.len(), "bulk insert must add keys");

    let stale = build(&before);
    let baseline = BPlusTree::bulk_load(&entries(&after));

    // Degradation: the stale learned index misses the inserted keys on
    // both point lookups and range windows; the fresh B+-tree does not.
    let stale_acc = lookup_accuracy(&stale, &after);
    let stale_recall = range_recall(&stale, &after);
    assert!(stale_acc < 0.85, "{name}: stale lookup accuracy suspiciously high: {stale_acc}");
    assert!(stale_recall < 0.9, "{name}: stale range recall suspiciously high: {stale_recall}");
    assert_eq!(lookup_accuracy(&baseline, &after), 1.0);
    assert_eq!(range_recall(&baseline, &after), 1.0);
    // ...while remaining exact on the keys it was actually built over.
    assert_eq!(lookup_accuracy(&stale, &before), 1.0, "{name}: stale index lost old keys");

    // Lifecycle: rebuild on the post-shift stream, gate on 1 − recall.
    let mut registry =
        ModelRegistry::new("learned_index", GateConfig { tolerance: 0.05 }, stale);
    let cid = registry.register_candidate(build(&after), "retrain");
    registry.begin_shadow(cid);
    let incumbent_score = 1.0 - range_recall(registry.active(), &after);
    let candidate_score = 1.0 - range_recall(&registry.version(cid).unwrap().model, &after);
    let baseline_score = 1.0 - range_recall(&baseline, &after);
    let verdict = registry.try_promote(cid, candidate_score, incumbent_score, baseline_score);
    assert!(
        verdict.promoted,
        "{name}: rebuilt index must clear the gate: cand={candidate_score} \
         inc={incumbent_score} base={baseline_score}"
    );
    assert_eq!(registry.generation(), 1);

    // Recovery: the promoted version is exact on the shifted stream.
    assert_eq!(lookup_accuracy(registry.active(), &after), 1.0, "{name}: recall not restored");
    assert_eq!(range_recall(registry.active(), &after), 1.0);

    // And a stale "candidate" (rebuilt on the OLD stream) is rejected.
    let sid = registry.register_candidate(build(&before), "stale_rebuild");
    registry.begin_shadow(sid);
    let stale_score = 1.0 - range_recall(&registry.version(sid).unwrap().model, &after);
    let serving_score = 1.0 - range_recall(registry.active(), &after);
    assert!(
        !registry.try_promote(sid, stale_score, serving_score, baseline_score).promoted,
        "{name}: a stale candidate must not displace the recovered model"
    );
    assert_eq!(registry.version(sid).unwrap().state, LifecycleState::RolledBack);
}

#[test]
fn rmi_degrades_under_bulk_insert_and_recovers_via_promotion() {
    staleness_and_recovery(|keys| Rmi::build(entries(keys), 64), "rmi");
}

#[test]
fn pgm_degrades_under_bulk_insert_and_recovers_via_promotion() {
    staleness_and_recovery(|keys| PgmIndex::build(entries(keys), 16), "pgm");
}

#[test]
fn staleness_is_deterministic_in_the_seed() {
    let (b1, a1) = shifted_key_streams(23);
    let (b2, a2) = shifted_key_streams(23);
    assert_eq!((b1, a1), (b2, a2));
}
