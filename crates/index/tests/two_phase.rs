//! Property tests for the two-phase lookup contract across index types.
//!
//! Every [`TwoPhaseIndex`] promises that `predict_range(key)` returns a
//! half-open window bracketing `key`'s position when present and its
//! insertion point otherwise (which may equal `hi`, including `hi == len()`
//! for keys above every indexed key). These properties pin that contract —
//! and the equivalence of the single, batch, and sorted-batch entry points
//! against `slice::binary_search` as the oracle — for PGM, RMI, and
//! RadixSpline on arbitrary key sets with present *and* absent probes.

use ml4db_index::{KeyValue, PgmIndex, RadixSpline, Rmi, TwoPhaseIndex};
use proptest::prelude::*;

fn entries_from(keys: &std::collections::BTreeSet<u64>) -> Vec<KeyValue> {
    keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect()
}

/// Probes worth checking for a key set: every present key, its neighbors
/// (absent keys inside the range), and the extremes.
fn probes(entries: &[KeyValue]) -> Vec<u64> {
    let mut p: Vec<u64> = entries
        .iter()
        .flat_map(|&(k, _)| [k, k.wrapping_sub(1), k.wrapping_add(1)])
        .collect();
    p.extend([0, u64::MAX]);
    p
}

/// The window contract: `lo <= at <= hi <= len`, where `at` is the
/// binary-search position or insertion point, and both single-lookup entry
/// points agree with binary search.
fn assert_window(idx: &dyn TwoPhaseIndex, probe: u64) {
    let entries = idx.entries();
    let expected = entries.binary_search_by_key(&probe, |e| e.0);
    let at = match expected {
        Ok(i) | Err(i) => i,
    };
    let (lo, hi) = idx.predict_range(probe);
    assert!(hi <= entries.len(), "hi {hi} > len {} for {probe}", entries.len());
    assert!(lo <= at && at <= hi, "window [{lo}, {hi}) misses {at} for {probe}");
    assert_eq!(idx.lookup_pos(probe), expected, "lookup_pos for {probe}");
    let want = expected.ok().map(|i| entries[i].1);
    assert_eq!(idx.lookup(probe), want, "lookup for {probe}");
}

/// Batch and sorted-batch entry points agree with single lookups.
fn assert_batches(idx: &dyn TwoPhaseIndex, probes: &[u64]) {
    let singles: Vec<Option<u64>> = probes.iter().map(|&k| idx.lookup(k)).collect();
    let mut batch = Vec::new();
    idx.lookup_batch(probes, &mut batch);
    assert_eq!(batch, singles, "unsorted batch != singles");
    let mut sorted = probes.to_vec();
    sorted.sort_unstable();
    let sorted_singles: Vec<Option<u64>> = sorted.iter().map(|&k| idx.lookup(k)).collect();
    let mut sorted_batch = Vec::new();
    idx.lookup_batch_sorted(&sorted, &mut sorted_batch);
    assert_eq!(sorted_batch, sorted_singles, "sorted batch != singles");
}

fn check_all(idx: &dyn TwoPhaseIndex) {
    let ps = probes(idx.entries());
    for &p in &ps {
        assert_window(idx, p);
    }
    assert_batches(idx, &ps);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PGM windows contain the answer for present and absent probes, and
    /// all lookup entry points agree with binary search.
    #[test]
    fn pgm_two_phase_contract(
        keys in proptest::collection::btree_set(0u64..1_000_000, 1..600),
        epsilon in 1usize..64,
    ) {
        check_all(&PgmIndex::build(entries_from(&keys), epsilon));
    }

    /// Same contract for the RMI across fanouts (including fanouts larger
    /// than the key count, which leaves empty leaves).
    #[test]
    fn rmi_two_phase_contract(
        keys in proptest::collection::btree_set(0u64..1_000_000, 1..600),
        fanout in 1usize..256,
    ) {
        check_all(&Rmi::build(entries_from(&keys), fanout));
    }

    /// Same contract for RadixSpline.
    #[test]
    fn radix_spline_two_phase_contract(
        keys in proptest::collection::btree_set(0u64..1_000_000, 1..600),
        epsilon in 1usize..64,
    ) {
        check_all(&RadixSpline::build(entries_from(&keys), epsilon));
    }

    /// Adversarial distribution: heavy clustering (dense runs separated by
    /// huge gaps) plus keys near u64::MAX, the regime where model error and
    /// saturating arithmetic interact.
    #[test]
    fn clustered_extreme_keys_stay_correct(
        cluster_starts in proptest::collection::btree_set(0u64..=u64::MAX - 4096, 1..8),
        run in 1u64..64,
    ) {
        let mut keys = std::collections::BTreeSet::new();
        for &s in &cluster_starts {
            for i in 0..run {
                keys.insert(s + i * 7);
            }
        }
        keys.insert(u64::MAX);
        let entries = entries_from(&keys);
        check_all(&PgmIndex::build(entries.clone(), 8));
        check_all(&Rmi::build(entries.clone(), 64));
        check_all(&RadixSpline::build(entries, 8));
    }
}
