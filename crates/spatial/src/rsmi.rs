//! An RSMI-style index (Qi et al. \[36\]): rank-space transformation before
//! the space-filling curve. Mapping each coordinate to its *rank* uniformly
//! spreads skewed data, so the learned CDF over rank-space Z-values needs
//! far fewer segments than raw-space ZM on skewed inputs — the improvement
//! RSMI demonstrated over ZM. (The full RSMI adds recursive partitioning;
//! this reproduction keeps the rank-space + learned-CDF core and documents
//! the simplification in DESIGN.md.)

use crate::geom::{z_interleave, Point, Rect, Z_BITS};
use crate::rtree::Entry;
use ml4db_index::pgm::{build_segments, Segment};

/// The rank-space model index.
#[derive(Clone, Debug)]
pub struct RsmiIndex {
    /// Entries sorted by rank-space z-value.
    entries: Vec<Entry>,
    zs: Vec<u64>,
    segments: Vec<Segment>,
    /// Sorted x coordinates (for query-time rank mapping).
    xs: Vec<f64>,
    /// Sorted y coordinates.
    ys: Vec<f64>,
}

impl RsmiIndex {
    /// Builds the index with CDF error bound `epsilon`.
    pub fn build(entries: Vec<Entry>, epsilon: usize) -> Self {
        let mut xs: Vec<f64> = entries.iter().map(|e| e.rect.center().x).collect();
        let mut ys: Vec<f64> = entries.iter().map(|e| e.rect.center().y).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank_z = |p: &Point| -> u64 {
            let rx = rank_of(&xs, p.x);
            let ry = rank_of(&ys, p.y);
            z_interleave(scale_rank(rx, xs.len()), scale_rank(ry, ys.len()))
        };
        let mut entries = entries;
        entries.sort_by_key(|e| rank_z(&e.rect.center()));
        let zs: Vec<u64> = entries.iter().map(|e| rank_z(&e.rect.center())).collect();
        let segments = build_segments(&zs, epsilon.max(1));
        Self { entries, zs, segments, xs, ys }
    }

    fn rank_z(&self, p: &Point) -> u64 {
        let rx = rank_of(&self.xs, p.x);
        let ry = rank_of(&self.ys, p.y);
        z_interleave(scale_rank(rx, self.xs.len()), scale_rank(ry, self.ys.len()))
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of learned segments — compare with raw-space ZM on skewed
    /// data to see the rank-space benefit.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    fn lower_bound(&self, z: u64) -> usize {
        if self.zs.is_empty() {
            return 0;
        }
        let idx = self
            .segments
            .partition_point(|s| s.first_key <= z)
            .saturating_sub(1);
        let seg = &self.segments[idx];
        let range_end =
            self.segments.get(idx + 1).map_or(self.zs.len(), |next| next.start);
        let pred = seg
            .model
            .predict(z, self.zs.len())
            .clamp(seg.start, range_end.saturating_sub(1).max(seg.start));
        // Exponential correction.
        let mut lo = pred;
        let mut hi = pred;
        let mut radius = 1usize;
        while lo > 0 && self.zs[lo] >= z {
            lo = lo.saturating_sub(radius);
            radius *= 2;
        }
        radius = 1;
        while hi < self.zs.len() - 1 && self.zs[hi] < z {
            hi = (hi + radius).min(self.zs.len() - 1);
            radius *= 2;
        }
        lo + self.zs[lo..=hi].partition_point(|&v| v < z)
    }

    /// Exact range query; returns `(ids, scanned)`.
    pub fn range_query(&self, query: &Rect) -> (Vec<usize>, u64) {
        if self.entries.is_empty() {
            return (Vec::new(), 0);
        }
        let z_lo = self.rank_z(&query.min);
        let z_hi = self.rank_z(&query.max);
        let start = self.lower_bound(z_lo);
        let mut out = Vec::new();
        let mut scanned = 0u64;
        for i in start..self.entries.len() {
            if self.zs[i] > z_hi {
                break;
            }
            scanned += 1;
            if query.contains_point(&self.entries[i].rect.center()) {
                out.push(self.entries[i].id);
            }
        }
        (out, scanned)
    }

    /// Approximate kNN in rank space (same caveat as ZM).
    pub fn knn_approximate(&self, point: &Point, k: usize, window: usize) -> Vec<usize> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        let pos = self.lower_bound(self.rank_z(point));
        let lo = pos.saturating_sub(window + k);
        let hi = (pos + window + k).min(self.entries.len());
        let mut cands: Vec<(f64, usize)> = self.entries[lo..hi]
            .iter()
            .map(|e| (e.rect.center().distance(point), e.id))
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        cands.truncate(k);
        cands.into_iter().map(|(_, id)| id).collect()
    }

    /// Model size in bytes. The rank arrays are counted: they are the price
    /// of the rank-space transform.
    pub fn size_bytes(&self) -> usize {
        self.segments.len() * std::mem::size_of::<Segment>()
            + (self.xs.len() + self.ys.len()) * 8
    }
}

fn rank_of(sorted: &[f64], v: f64) -> usize {
    sorted.partition_point(|&x| x < v)
}

fn scale_rank(rank: usize, n: usize) -> u32 {
    if n <= 1 {
        return 0;
    }
    let max = (1u64 << Z_BITS) - 1;
    ((rank as u64 * max) / n as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_points, unit_domain, SpatialDistribution};
    use crate::zm::ZmIndex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn range_query_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = generate_points(SpatialDistribution::Skewed, 2000, &mut rng);
        let idx = RsmiIndex::build(pts.clone(), 16);
        let q = Rect::new(Point::new(50.0, 50.0), Point::new(300.0, 250.0));
        let (mut got, _) = idx.range_query(&q);
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .filter(|e| q.contains_point(&e.rect.center()))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn rank_space_needs_fewer_segments_on_skew() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = generate_points(SpatialDistribution::Skewed, 8000, &mut rng);
        let zm = ZmIndex::build(pts.clone(), unit_domain(), 16);
        let rsmi = RsmiIndex::build(pts, 16);
        assert!(
            rsmi.num_segments() <= zm.num_segments(),
            "rank space ({}) should not need more segments than raw ({})",
            rsmi.num_segments(),
            zm.num_segments()
        );
    }

    #[test]
    fn knn_approximate_reasonable_recall() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = generate_points(SpatialDistribution::Clustered { clusters: 4 }, 2000, &mut rng);
        let idx = RsmiIndex::build(pts.clone(), 16);
        // Probe at a data point (see zm.rs: recall near data is the claim;
        // a fixed coordinate may land in dead space between clusters).
        let p = pts[pts.len() / 2].rect.center();
        let got = idx.knn_approximate(&p, 10, 64);
        assert_eq!(got.len(), 10);
        let mut truth: Vec<(f64, usize)> =
            pts.iter().map(|e| (e.rect.center().distance(&p), e.id)).collect();
        truth.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let truth_ids: std::collections::BTreeSet<usize> =
            truth[..10].iter().map(|&(_, id)| id).collect();
        let recall = got.iter().filter(|id| truth_ids.contains(id)).count() as f64 / 10.0;
        assert!(recall >= 0.4, "recall {recall}");
    }
}
