//! # ml4db-spatial — the spatial-index paradigm arena
//!
//! Implements both sides of the tutorial's paradigm discussion for
//! multi-dimensional/spatial indexing (§3.2):
//!
//! * **Substrate**: planar [`geom`]etry + Z-order curve, the classical
//!   [`rtree::RTree`] (Guttman ChooseSubtree/quadratic split, STR bulk
//!   loading, range + exact kNN), and spatial [`data`] generators.
//! * **Replacement paradigm**: [`zm::ZmIndex`] (Z-curve + learned CDF,
//!   approximate kNN), [`lisa::LisaIndex`] (learned direct mapping, exact
//!   ranges), [`rsmi::RsmiIndex`] (rank-space transform).
//! * **ML-enhanced paradigm**: [`rlr::RlrPolicy`] (RL insertion),
//!   [`rw::RwPolicy`] (workload-aware insertion), [`platon::PlatonPacker`]
//!   (MCTS bulk-loading), [`air::AiRTree`] (learned search routing).
//!
//! All ML-enhanced structures answer queries through the unmodified R-tree
//! machinery — the property that gives the paradigm its robustness.

#![warn(missing_docs)]

pub mod air;
pub mod data;
pub mod geom;
pub mod lisa;
pub mod platon;
pub mod rlr;
pub mod rsmi;
pub mod rtree;
pub mod rw;
pub mod zm;

pub use air::AiRTree;
pub use geom::{Point, Rect};
pub use lisa::LisaIndex;
pub use platon::PlatonPacker;
pub use rlr::RlrPolicy;
pub use rsmi::RsmiIndex;
pub use rtree::{Entry, GuttmanPolicy, InsertionPolicy, RTree};
pub use rw::RwPolicy;
pub use zm::ZmIndex;
