//! Spatial data and query-workload generators for the paradigm experiments
//! (E3–E6). Real spatial datasets (OSM, Tiger) are substituted by synthetic
//! distributions with the properties that matter: uniformity vs clustering
//! vs skew, and query workloads with controllable selectivity and hotspots.

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::geom::{Point, Rect};
use crate::rtree::Entry;

/// Point distribution families.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpatialDistribution {
    /// Uniform over the unit domain.
    Uniform,
    /// A mixture of Gaussian clusters.
    Clustered {
        /// Number of clusters.
        clusters: usize,
    },
    /// Density increasing along the diagonal (mimics population skew).
    Skewed,
}

/// The domain every generator fills.
pub fn unit_domain() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0))
}

/// Generates `n` points from the distribution (ids are `0..n`).
pub fn generate_points<R: Rng + ?Sized>(
    dist: SpatialDistribution,
    n: usize,
    rng: &mut R,
) -> Vec<Entry> {
    let domain = unit_domain();
    let (w, h) = (domain.max.x - domain.min.x, domain.max.y - domain.min.y);
    let mut points = Vec::with_capacity(n);
    match dist {
        SpatialDistribution::Uniform => {
            for _ in 0..n {
                points.push(Point::new(
                    rng.gen_range(domain.min.x..domain.max.x),
                    rng.gen_range(domain.min.y..domain.max.y),
                ));
            }
        }
        SpatialDistribution::Clustered { clusters } => {
            let clusters = clusters.max(1);
            let centers: Vec<Point> = (0..clusters)
                .map(|_| {
                    Point::new(
                        rng.gen_range(domain.min.x..domain.max.x),
                        rng.gen_range(domain.min.y..domain.max.y),
                    )
                })
                .collect();
            let spread = Normal::new(0.0, w / 30.0).expect("valid normal");
            for i in 0..n {
                let c = centers[i % clusters];
                let p = Point::new(
                    (c.x + spread.sample(rng)).clamp(domain.min.x, domain.max.x),
                    (c.y + spread.sample(rng)).clamp(domain.min.y, domain.max.y),
                );
                points.push(p);
            }
        }
        SpatialDistribution::Skewed => {
            for _ in 0..n {
                // Rejection-free skew: square the uniform draw so mass
                // concentrates near the origin corner.
                let u: f64 = rng.gen::<f64>().powi(2);
                let v: f64 = rng.gen::<f64>().powi(2);
                points.push(Point::new(domain.min.x + u * w, domain.min.y + v * h));
            }
        }
    }
    points
        .into_iter()
        .enumerate()
        .map(|(id, p)| Entry { rect: Rect::from_point(p), id })
        .collect()
}

/// Generates `n` range queries with side length around `side` (as a
/// fraction of the domain side); `hotspot` concentrates queries on the
/// lower-left quadrant (workload skew for the RW-tree/PLATON experiments).
pub fn generate_range_queries<R: Rng + ?Sized>(
    n: usize,
    side_fraction: f64,
    hotspot: bool,
    rng: &mut R,
) -> Vec<Rect> {
    let domain = unit_domain();
    let w = domain.max.x - domain.min.x;
    let side = (side_fraction * w).max(1.0);
    (0..n)
        .map(|_| {
            let (max_x, max_y) = if hotspot {
                (domain.min.x + w * 0.4, domain.min.y + w * 0.4)
            } else {
                (domain.max.x - side, domain.max.y - side)
            };
            let x = rng.gen_range(domain.min.x..max_x.max(domain.min.x + 1.0));
            let y = rng.gen_range(domain.min.y..max_y.max(domain.min.y + 1.0));
            Rect::new(Point::new(x, y), Point::new(x + side, y + side))
        })
        .collect()
}

/// Average leaf accesses of a query workload over an R-tree — the figure of
/// merit for every ML-enhanced index experiment.
pub fn workload_leaf_accesses(tree: &crate::rtree::RTree, queries: &[Rect]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let total: u64 = queries.iter().map(|q| tree.range_query(q).1.leaf_accesses).sum();
    total as f64 / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_produce_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let domain = unit_domain();
        for dist in [
            SpatialDistribution::Uniform,
            SpatialDistribution::Clustered { clusters: 5 },
            SpatialDistribution::Skewed,
        ] {
            let pts = generate_points(dist, 500, &mut rng);
            assert_eq!(pts.len(), 500);
            for e in &pts {
                assert!(domain.contains_rect(&e.rect), "{dist:?} out of domain");
            }
        }
    }

    #[test]
    fn clustered_is_denser_than_uniform_somewhere() {
        let mut rng = StdRng::seed_from_u64(2);
        let clustered =
            generate_points(SpatialDistribution::Clustered { clusters: 3 }, 2000, &mut rng);
        // Max count in a coarse grid cell should be much higher than the
        // uniform expectation.
        let mut grid = [[0usize; 10]; 10];
        for e in &clustered {
            let c = e.rect.center();
            grid[(c.x / 100.0).min(9.0) as usize][(c.y / 100.0).min(9.0) as usize] += 1;
        }
        let max = grid.iter().flatten().max().copied().unwrap();
        assert!(max > 100, "no density peak: max cell {max}");
    }

    #[test]
    fn hotspot_queries_stay_in_corner() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = generate_range_queries(100, 0.05, true, &mut rng);
        for q in &qs {
            assert!(q.min.x <= 400.0 && q.min.y <= 400.0);
        }
    }

    #[test]
    fn skewed_mass_near_origin() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = generate_points(SpatialDistribution::Skewed, 2000, &mut rng);
        let near = pts.iter().filter(|e| e.rect.center().x < 250.0).count();
        assert!(near > 800, "skew too weak: {near}/2000 in left quarter");
    }
}
