//! PLATON (Yang & Cong \[48\]) — **ML-enhanced bulk-loading**: top-down
//! R-tree packing whose partition policy is learned with Monte-Carlo tree
//! search, explicitly optimizing the expected query cost of a given
//! data + workload instance.
//!
//! Faithful to the paper's structure: packing proceeds top-down by
//! recursively cutting the point set; each cut decision is made by a
//! bounded-budget MCTS whose reward is the (negative) estimated workload
//! leaf accesses of a greedy completion — the budget cap per decision is
//! PLATON's linear-time optimization.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml4db_nn::rl::{Mcts, MctsProblem};

use crate::geom::Rect;
use crate::rtree::{Entry, RTree, MAX_ENTRIES};

/// Cut actions per decision: dimension × position quantile.
const CUTS: [(bool, f64); 6] = [
    (true, 0.25),
    (true, 0.5),
    (true, 0.75),
    (false, 0.25),
    (false, 0.5),
    (false, 0.75),
];

/// The PLATON packer.
#[derive(Clone, Debug)]
pub struct PlatonPacker {
    /// MCTS simulations per cut decision (the linear-time budget knob).
    pub simulations: usize,
    /// Target leaf capacity.
    pub leaf_capacity: usize,
}

impl Default for PlatonPacker {
    fn default() -> Self {
        Self { simulations: 64, leaf_capacity: MAX_ENTRIES }
    }
}

/// MCTS problem for a *single* partition: decide this partition's cut; the
/// rollout completes both halves with median cuts and scores the result.
struct CutProblem<'a> {
    workload: &'a [Rect],
    leaf_capacity: usize,
    /// Depth of lookahead before greedy completion.
    max_depth: usize,
}

/// MCTS state: partitions still to cut (with their depth) + finished leaves'
/// MBRs.
#[derive(Clone)]
struct CutState {
    pending: Vec<(Vec<Entry>, usize)>,
    leaf_mbrs: Vec<Rect>,
}

fn mbr_of(entries: &[Entry]) -> Rect {
    entries.iter().fold(Rect::empty(), |a, e| a.union(&e.rect))
}

fn cut(entries: &[Entry], by_x: bool, quantile: f64) -> (Vec<Entry>, Vec<Entry>) {
    let mut sorted = entries.to_vec();
    sorted.sort_by(|a, b| {
        let (ka, kb) = if by_x {
            (a.rect.center().x, b.rect.center().x)
        } else {
            (a.rect.center().y, b.rect.center().y)
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let at = ((sorted.len() as f64 * quantile) as usize).clamp(1, sorted.len() - 1);
    let right = sorted.split_off(at);
    (sorted, right)
}

/// Greedy completion: median cuts until everything fits in leaves; returns
/// the leaf MBRs.
fn greedy_complete(pending: &[(Vec<Entry>, usize)], leaf_capacity: usize) -> Vec<Rect> {
    let mut out = Vec::new();
    let mut stack: Vec<Vec<Entry>> = pending.iter().map(|(p, _)| p.clone()).collect();
    while let Some(part) = stack.pop() {
        if part.len() <= leaf_capacity {
            if !part.is_empty() {
                out.push(mbr_of(&part));
            }
            continue;
        }
        let mbr = mbr_of(&part);
        let by_x = (mbr.max.x - mbr.min.x) >= (mbr.max.y - mbr.min.y);
        let (l, r) = cut(&part, by_x, 0.5);
        stack.push(l);
        stack.push(r);
    }
    out
}

fn workload_cost(leaf_mbrs: &[Rect], workload: &[Rect]) -> f64 {
    if workload.is_empty() {
        return leaf_mbrs.len() as f64;
    }
    let mut total = 0usize;
    for q in workload {
        total += leaf_mbrs.iter().filter(|m| q.intersects(m)).count();
    }
    total as f64 / workload.len() as f64
}

impl MctsProblem for CutProblem<'_> {
    type State = CutState;

    fn actions(&self, state: &CutState) -> Vec<usize> {
        match state.pending.last() {
            Some((part, depth))
                if part.len() > self.leaf_capacity && *depth < self.max_depth =>
            {
                (0..CUTS.len()).collect()
            }
            _ => Vec::new(),
        }
    }

    fn apply(&self, state: &CutState, action: usize) -> CutState {
        let mut next = state.clone();
        let (part, depth) = next.pending.pop().expect("actions imply pending");
        let (by_x, q) = CUTS[action];
        let (l, r) = cut(&part, by_x, q);
        for half in [l, r] {
            if half.len() <= self.leaf_capacity {
                if !half.is_empty() {
                    next.leaf_mbrs.push(mbr_of(&half));
                }
            } else {
                next.pending.push((half, depth + 1));
            }
        }
        next
    }

    fn reward(&self, state: &CutState) -> f64 {
        let mut leaf_mbrs = state.leaf_mbrs.clone();
        leaf_mbrs.extend(greedy_complete(&state.pending, self.leaf_capacity));
        // Negative expected leaf accesses per query — the packing objective
        // itself, not a per-leaf normalization (which would reward creating
        // many rarely-touched leaves).
        -workload_cost(&leaf_mbrs, self.workload)
    }
}

impl PlatonPacker {
    /// Packs `points` into an R-tree optimized for `workload`.
    ///
    /// Runs one bounded MCTS per partition cut (top-down), so total work is
    /// `O(n log n)` with a constant simulation budget per decision.
    pub fn pack(&self, points: &[Entry], workload: &[Rect], seed: u64) -> RTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut leaves: Vec<Vec<Entry>> = Vec::new();
        let mut stack: Vec<Vec<Entry>> = vec![points.to_vec()];
        let mcts = Mcts::new(self.simulations);
        while let Some(part) = stack.pop() {
            if part.is_empty() {
                continue;
            }
            if part.len() <= self.leaf_capacity {
                leaves.push(part);
                continue;
            }
            let problem = CutProblem {
                workload,
                leaf_capacity: self.leaf_capacity,
                max_depth: 2,
            };
            let state = CutState { pending: vec![(part.clone(), 0)], leaf_mbrs: Vec::new() };
            let action = mcts.search(&problem, &state, &mut rng).unwrap_or(1);
            let (by_x, q) = CUTS[action];
            let (l, r) = cut(&part, by_x, q);
            stack.push(l);
            stack.push(r);
        }
        let learned = RTree::from_leaf_groups(&leaves);
        // Guardrail: never ship a packing worse than STR on the workload
        // it was optimized for (MCTS with a small budget can lose to the
        // classical packer on easy instances).
        let str_tree = RTree::bulk_load_str(points);
        let learned_cost: u64 =
            workload.iter().map(|q| learned.range_query(q).1.leaf_accesses).sum();
        let str_cost: u64 =
            workload.iter().map(|q| str_tree.range_query(q).1.leaf_accesses).sum();
        if learned_cost <= str_cost {
            learned
        } else {
            str_tree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{
        generate_points, generate_range_queries, workload_leaf_accesses, SpatialDistribution,
    };
    use crate::geom::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_tree_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let points =
            generate_points(SpatialDistribution::Clustered { clusters: 4 }, 600, &mut rng);
        let workload = generate_range_queries(30, 0.08, true, &mut rng);
        let tree = PlatonPacker::default().pack(&points, &workload, 42);
        assert_eq!(tree.len(), 600);
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 300.0));
        let (mut got, _) = tree.range_query(&q);
        got.sort_unstable();
        let mut expected: Vec<usize> =
            points.iter().filter(|e| q.intersects(&e.rect)).map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn platon_competitive_with_str_on_skewed_workload() {
        let mut rng = StdRng::seed_from_u64(2);
        let points =
            generate_points(SpatialDistribution::Clustered { clusters: 5 }, 800, &mut rng);
        let history = generate_range_queries(40, 0.06, true, &mut rng);
        let future = generate_range_queries(40, 0.06, true, &mut rng);
        let platon = PlatonPacker::default().pack(&points, &history, 7);
        let str_tree = RTree::bulk_load_str(&points);
        let p_cost = workload_leaf_accesses(&platon, &future);
        let s_cost = workload_leaf_accesses(&str_tree, &future);
        assert!(
            p_cost <= s_cost * 1.25,
            "platon {p_cost} far worse than STR {s_cost}"
        );
    }

    #[test]
    fn budget_controls_work() {
        // More simulations should not be worse (usually better) and must
        // still produce a correct tree.
        let mut rng = StdRng::seed_from_u64(3);
        let points = generate_points(SpatialDistribution::Skewed, 300, &mut rng);
        let workload = generate_range_queries(20, 0.1, true, &mut rng);
        let small = PlatonPacker { simulations: 8, ..Default::default() }
            .pack(&points, &workload, 1);
        let large = PlatonPacker { simulations: 128, ..Default::default() }
            .pack(&points, &workload, 1);
        assert_eq!(small.len(), 300);
        assert_eq!(large.len(), 300);
    }
}
