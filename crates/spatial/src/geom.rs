//! Planar geometry primitives and the Z-order (Morton) space-filling curve
//! used by the learned spatial indexes.

use serde::{Deserialize, Serialize};

/// A 2-D point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangle (min/max corners, inclusive).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners (normalized).
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Degenerate rectangle covering one point.
    pub fn from_point(p: Point) -> Self {
        Self { min: p, max: p }
    }

    /// An "empty" rectangle that unions as the identity.
    pub fn empty() -> Self {
        Self {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Width × height (0 for empty).
    pub fn area(&self) -> f64 {
        if self.min.x > self.max.x || self.min.y > self.max.y {
            return 0.0;
        }
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Half-perimeter (margin), used by R*-style heuristics.
    pub fn margin(&self) -> f64 {
        if self.min.x > self.max.x {
            return 0.0;
        }
        (self.max.x - self.min.x) + (self.max.y - self.min.y)
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Area increase needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Intersection area with `other`.
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// True if the rectangles intersect (boundaries touch counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True if `p` lies inside (inclusive).
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if `other` lies fully inside (inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Minimum distance from a point to the rectangle (0 if inside).
    pub fn min_distance(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }
}

/// Bits per dimension for the Z-order curve.
pub const Z_BITS: u32 = 21;

/// Interleaves the low [`Z_BITS`] bits of `x` and `y` into a Morton code
/// (x in even positions).
pub fn z_interleave(x: u32, y: u32) -> u64 {
    fn spread(v: u64) -> u64 {
        let mut v = v & 0x1f_ffff; // 21 bits
        v = (v | (v << 32)) & 0x1f00000000ffff;
        v = (v | (v << 16)) & 0x1f0000ff0000ff;
        v = (v | (v << 8)) & 0x100f00f00f00f00f;
        v = (v | (v << 4)) & 0x10c30c30c30c30c3;
        v = (v | (v << 2)) & 0x1249249249249249;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1)
}

/// Inverse of [`z_interleave`].
pub fn z_deinterleave(z: u64) -> (u32, u32) {
    fn compact(v: u64) -> u32 {
        let mut v = v & 0x1249249249249249;
        v = (v | (v >> 2)) & 0x10c30c30c30c30c3;
        v = (v | (v >> 4)) & 0x100f00f00f00f00f;
        v = (v | (v >> 8)) & 0x1f0000ff0000ff;
        v = (v | (v >> 16)) & 0x1f00000000ffff;
        v = (v | (v >> 32)) & 0x1f_ffff;
        v as u32
    }
    (compact(z), compact(z >> 1))
}

/// Maps a point in `domain` onto the Z-curve.
pub fn z_value(p: &Point, domain: &Rect) -> u64 {
    let scale = ((1u64 << Z_BITS) - 1) as f64;
    let nx = ((p.x - domain.min.x) / (domain.max.x - domain.min.x).max(1e-12)).clamp(0.0, 1.0);
    let ny = ((p.y - domain.min.y) / (domain.max.y - domain.min.y).max(1e-12)).clamp(0.0, 1.0);
    z_interleave((nx * scale) as u32, (ny * scale) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rect_union_and_area() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 4.0));
        assert_eq!(a.area(), 4.0);
        let u = a.union(&b);
        assert_eq!(u.min, Point::new(0.0, 0.0));
        assert_eq!(u.max, Point::new(3.0, 4.0));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn empty_rect_is_union_identity() {
        let a = Rect::new(Point::new(1.0, 2.0), Point::new(3.0, 4.0));
        let u = Rect::empty().union(&a);
        assert_eq!(u, a);
        assert_eq!(Rect::empty().area(), 0.0);
    }

    #[test]
    fn min_distance_zero_inside() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert_eq!(r.min_distance(&Point::new(5.0, 5.0)), 0.0);
        assert!((r.min_distance(&Point::new(13.0, 14.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn z_order_locality() {
        // Adjacent cells in the same quadrant have close z-values.
        let z00 = z_interleave(0, 0);
        let z10 = z_interleave(1, 0);
        let z01 = z_interleave(0, 1);
        let z11 = z_interleave(1, 1);
        assert_eq!(z00, 0);
        assert_eq!(z10, 1);
        assert_eq!(z01, 2);
        assert_eq!(z11, 3);
    }

    proptest! {
        /// The Morton code is a bijection on 21-bit coordinates.
        #[test]
        fn z_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21)) {
            let z = z_interleave(x, y);
            prop_assert_eq!(z_deinterleave(z), (x, y));
        }

        /// Z-order preserves the quadrant order: points in the lower-left
        /// half-domain sort before the upper-right corner cell.
        #[test]
        fn z_monotone_on_diagonal(a in 0u32..(1 << 20)) {
            let z1 = z_interleave(a, a);
            let z2 = z_interleave(a + 1, a + 1);
            prop_assert!(z1 < z2);
        }
    }
}
