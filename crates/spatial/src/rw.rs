//! The RW-tree (Dong et al. \[7\]) — **workload-aware ML-enhanced
//! insertion**: ChooseSubtree minimizes a learned estimate of the *workload*
//! cost increase rather than geometric enlargement. The cost model here is
//! the empirical access probability over a sample of the historical query
//! workload: inserting into a child is charged by how much the child MBR's
//! probability of being touched by future queries grows.

use crate::geom::Rect;
use crate::rtree::{quadratic_split, Entry, InsertionPolicy, RTree};

/// Workload-aware insertion policy.
#[derive(Clone, Debug)]
pub struct RwPolicy {
    /// Sample of the historical query workload.
    pub workload: Vec<Rect>,
}

impl RwPolicy {
    /// Creates a policy from a workload sample.
    pub fn new(workload: Vec<Rect>) -> Self {
        Self { workload }
    }

    /// Empirical probability that a query from the workload touches `r`.
    pub fn access_probability(&self, r: &Rect) -> f64 {
        if self.workload.is_empty() {
            return 0.0;
        }
        let hits = self.workload.iter().filter(|q| q.intersects(r)).count();
        hits as f64 / self.workload.len() as f64
    }
}

impl InsertionPolicy for RwPolicy {
    fn choose_subtree(&mut self, children: &[Rect], rect: &Rect, _level: usize) -> usize {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (i, c) in children.iter().enumerate() {
            let grown = c.union(rect);
            // Workload cost increase, with geometric enlargement as the
            // tiebreaker (and the fallback when the workload is empty).
            let delta_access = self.access_probability(&grown) - self.access_probability(c);
            let cost = delta_access * 1e6 + c.enlargement(rect);
            if cost < best_cost {
                best_cost = cost;
                best = i;
            }
        }
        best
    }

    fn split(&mut self, rects: &[Rect]) -> Vec<bool> {
        // Among the two heuristics, pick the split whose two MBRs have the
        // lower total workload access probability.
        let quad = quadratic_split(rects);
        let axis = crate::rlr::axis_balanced_split(rects);
        let score = |assign: &[bool]| -> f64 {
            let mut left = Rect::empty();
            let mut right = Rect::empty();
            for (r, &to_right) in rects.iter().zip(assign) {
                if to_right {
                    right = right.union(r);
                } else {
                    left = left.union(r);
                }
            }
            self.access_probability(&left) + self.access_probability(&right)
        };
        if score(&axis) < score(&quad) {
            axis
        } else {
            quad
        }
    }
}

/// Builds an RW-tree over `points` given the historical `workload`.
pub fn build_rw_tree(points: &[Entry], workload: &[Rect]) -> RTree {
    let mut policy = RwPolicy::new(workload.to_vec());
    let mut tree = RTree::new();
    for e in points {
        tree.insert(*e, &mut policy);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{
        generate_points, generate_range_queries, workload_leaf_accesses, SpatialDistribution,
    };
    use crate::geom::Point;
    use crate::rtree::GuttmanPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rw_tree_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let points = generate_points(SpatialDistribution::Uniform, 500, &mut rng);
        let workload = generate_range_queries(40, 0.05, true, &mut rng);
        let tree = build_rw_tree(&points, &workload);
        tree.validate().unwrap();
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0));
        let (mut got, _) = tree.range_query(&q);
        got.sort_unstable();
        let mut expected: Vec<usize> =
            points.iter().filter(|e| q.intersects(&e.rect)).map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn workload_aware_beats_guttman_on_hotspot() {
        let mut rng = StdRng::seed_from_u64(2);
        let points =
            generate_points(SpatialDistribution::Clustered { clusters: 6 }, 800, &mut rng);
        // Historical and future workloads share the hotspot.
        let history = generate_range_queries(50, 0.06, true, &mut rng);
        let future = generate_range_queries(50, 0.06, true, &mut rng);
        let rw = build_rw_tree(&points, &history);
        let mut g = GuttmanPolicy;
        let mut base = RTree::new();
        for e in &points {
            base.insert(*e, &mut g);
        }
        let rw_cost = workload_leaf_accesses(&rw, &future);
        let base_cost = workload_leaf_accesses(&base, &future);
        assert!(
            rw_cost <= base_cost * 1.1,
            "rw {rw_cost} should be competitive with baseline {base_cost}"
        );
    }

    #[test]
    fn access_probability_monotone_in_rect() {
        let mut rng = StdRng::seed_from_u64(3);
        let workload = generate_range_queries(100, 0.05, false, &mut rng);
        let policy = RwPolicy::new(workload);
        let small = Rect::new(Point::new(400.0, 400.0), Point::new(420.0, 420.0));
        let big = Rect::new(Point::new(300.0, 300.0), Point::new(600.0, 600.0));
        assert!(policy.access_probability(&big) >= policy.access_probability(&small));
    }
}
