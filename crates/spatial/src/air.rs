//! The AI+R tree (Abdullah-Al-Mamun et al. \[2\]) — **ML-enhanced search**:
//! keep the R-tree, but route *high-overlap* range queries through an
//! "AI-tree" that casts leaf selection as multi-label classification (one
//! learned classifier per leaf) and skips the extraneous internal-node
//! traversal; low-overlap queries use the R-tree as usual.

use ml4db_nn::layers::sigmoid;

use crate::geom::Rect;
use crate::rtree::{QueryStats, RTree};

/// A per-leaf logistic classifier over query-rectangle features.
#[derive(Clone, Debug)]
struct LeafClassifier {
    /// Weights over [cx, cy, w, h, 1].
    w: [f64; 5],
}

const FEATURE_SCALE: f64 = 1000.0;

/// Query-vs-leaf features: a linear classifier over absolute query
/// coordinates cannot represent "near this leaf", so each leaf's classifier
/// sees the query *relative* to its MBR — overlap fractions and center
/// distance — which is what separates result-bearing from dead-space hits.
fn query_features(q: &Rect, leaf_mbr: &Rect) -> [f64; 5] {
    let ov = q.overlap_area(leaf_mbr);
    [
        ov / leaf_mbr.area().max(1e-9),
        ov / q.area().max(1e-9),
        q.center().distance(&leaf_mbr.center()) / FEATURE_SCALE,
        q.area().sqrt() / FEATURE_SCALE,
        1.0,
    ]
}

impl LeafClassifier {
    fn new() -> Self {
        Self { w: [0.0; 5] }
    }

    fn predict_logit(&self, f: &[f64; 5]) -> f64 {
        self.w.iter().zip(f).map(|(&w, &x)| w * x).sum()
    }

    fn train(&mut self, data: &[([f64; 5], bool)], epochs: usize, lr: f64) {
        for _ in 0..epochs {
            for (f, label) in data {
                let p = sigmoid(self.predict_logit(f) as f32) as f64;
                let g = p - (*label as u8 as f64);
                for (w, &x) in self.w.iter_mut().zip(f) {
                    *w -= lr * g * x;
                }
            }
        }
    }
}

/// The combined AI+R index.
#[derive(Clone, Debug)]
pub struct AiRTree {
    rtree: RTree,
    /// `(leaf MBR, leaf entry list)` snapshot used by the AI path.
    leaves: Vec<(Rect, Vec<crate::rtree::Entry>)>,
    classifiers: Vec<LeafClassifier>,
    /// Leaf-intersection count above which a query is routed to the AI-tree.
    pub overlap_threshold: usize,
}

/// Which path answered a query (for the E6 accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Classical R-tree traversal.
    RTree,
    /// Learned multi-label leaf selection.
    AiTree,
}

impl AiRTree {
    /// Builds the hybrid index and trains the per-leaf classifiers on a
    /// historical workload.
    pub fn build(rtree: RTree, workload: &[Rect], overlap_threshold: usize) -> Self {
        let leaves = rtree.leaves();
        let mut classifiers = vec![LeafClassifier::new(); leaves.len()];
        for (li, (mbr, entries)) in leaves.iter().enumerate() {
            let data: Vec<([f64; 5], bool)> = workload
                .iter()
                .map(|q| {
                    let has_result = entries.iter().any(|e| q.intersects(&e.rect));
                    (query_features(q, mbr), has_result)
                })
                .collect();
            classifiers[li].train(&data, 60, 0.5);
        }
        Self { rtree, leaves, classifiers, overlap_threshold }
    }

    /// Estimated number of leaves a query overlaps (cheap MBR count used by
    /// the router).
    pub fn estimated_overlap(&self, q: &Rect) -> usize {
        self.leaves.iter().filter(|(mbr, _)| q.intersects(mbr)).count()
    }

    /// Answers a range query; returns `(ids, leaf_accesses, route)`.
    ///
    /// The AI path visits only leaves whose classifier fires (and whose MBR
    /// intersects, as a guard), verifying entries exactly — so precision is
    /// 1.0 but recall can drop on classifier false negatives, the
    /// approximation the tutorial's robustness discussion highlights.
    pub fn range_query(&self, q: &Rect) -> (Vec<usize>, QueryStats, Route) {
        if self.estimated_overlap(q) < self.overlap_threshold {
            let (ids, stats) = self.rtree.range_query(q);
            return (ids, stats, Route::RTree);
        }
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for ((mbr, entries), clf) in self.leaves.iter().zip(&self.classifiers) {
            if !q.intersects(mbr) {
                continue;
            }
            if clf.predict_logit(&query_features(q, mbr)) < 0.0 {
                continue; // predicted empty: skip the leaf access
            }
            stats.leaf_accesses += 1;
            stats.nodes_visited += 1;
            for e in entries {
                if q.intersects(&e.rect) {
                    out.push(e.id);
                }
            }
        }
        (out, stats, Route::AiTree)
    }

    /// Recall of the AI path against the exact R-tree on a workload.
    pub fn ai_recall(&self, queries: &[Rect]) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in queries {
            let (exact, _) = self.rtree.range_query(q);
            let mut approx = std::collections::BTreeSet::new();
            for ((mbr, entries), clf) in self.leaves.iter().zip(&self.classifiers) {
                if q.intersects(mbr) && clf.predict_logit(&query_features(q, mbr)) >= 0.0 {
                    for e in entries {
                        if q.intersects(&e.rect) {
                            approx.insert(e.id);
                        }
                    }
                }
            }
            total += exact.len();
            hit += exact.iter().filter(|id| approx.contains(id)).count();
        }
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Underlying R-tree.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_points, generate_range_queries, SpatialDistribution};
    use crate::geom::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Vec<crate::rtree::Entry>, AiRTree, Vec<Rect>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points =
            generate_points(SpatialDistribution::Clustered { clusters: 5 }, 800, &mut rng);
        let tree = RTree::bulk_load_str(&points);
        // 240 historical queries: per-leaf logistic classifiers need a
        // training sample large enough that every result-bearing region
        // is represented; under-sampled workloads leave some classifiers
        // at near-random decision boundaries (recall drops to ~0.75).
        let workload = generate_range_queries(240, 0.15, false, &mut rng);
        let air = AiRTree::build(tree, &workload, 6);
        let test = generate_range_queries(40, 0.15, false, &mut rng);
        (points, air, test)
    }

    #[test]
    fn low_overlap_routes_to_rtree_and_is_exact() {
        let (points, air, _) = setup(1);
        let q = Rect::new(Point::new(10.0, 10.0), Point::new(30.0, 30.0));
        let (mut got, _, route) = air.range_query(&q);
        assert_eq!(route, Route::RTree);
        got.sort_unstable();
        let mut expected: Vec<usize> =
            points.iter().filter(|e| q.intersects(&e.rect)).map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn high_overlap_routes_to_ai_tree() {
        let (_, air, _) = setup(2);
        let q = Rect::new(Point::new(100.0, 100.0), Point::new(900.0, 900.0));
        let (_, _, route) = air.range_query(&q);
        assert_eq!(route, Route::AiTree);
    }

    #[test]
    fn ai_path_precision_is_exact_recall_high() {
        let (points, air, test) = setup(3);
        for q in &test {
            let (got, _, _) = air.range_query(q);
            // Precision check: everything returned is a true result.
            for id in &got {
                let e = &points[*id];
                assert!(q.intersects(&e.rect), "false positive {id}");
            }
        }
        let recall = air.ai_recall(&test);
        assert!(recall > 0.85, "AI-path recall {recall}");
    }

    #[test]
    fn ai_path_can_skip_leaves() {
        let (_, air, test) = setup(4);
        // On large queries, the AI path should access no more leaves than
        // the MBR-intersection count (and typically fewer).
        let mut saved_any = false;
        for q in &test {
            let overlap = air.estimated_overlap(q);
            if overlap >= air.overlap_threshold {
                let (_, stats, route) = air.range_query(q);
                assert_eq!(route, Route::AiTree);
                assert!(stats.leaf_accesses <= overlap as u64);
                if stats.leaf_accesses < overlap as u64 {
                    saved_any = true;
                }
            }
        }
        assert!(saved_any, "classifiers never skipped a leaf");
    }
}
