//! A LISA-style learned spatial index (Li et al. \[25\]): instead of a
//! space-filling curve, learn a direct mapping from points to a 1-D value —
//! here, equi-depth x-strips with a per-strip learned CDF over y. Range
//! queries decompose exactly over strips (no z-interval false positives),
//! which is LISA's advantage over ZM.

use crate::geom::Rect;
use crate::rtree::Entry;
use ml4db_index::model::LinearModel;

/// One x-strip: points sorted by y with a learned y→rank model.
#[derive(Clone, Debug)]
struct Strip {
    /// X-range lower bound of the strip.
    x_lo: f64,
    /// Entries sorted by y.
    entries: Vec<Entry>,
    /// Learned CDF over y (position prediction).
    model: LinearModel,
    /// Max prediction error of `model`.
    err: usize,
}

/// The LISA-style index.
#[derive(Clone, Debug)]
pub struct LisaIndex {
    strips: Vec<Strip>,
    len: usize,
}

impl LisaIndex {
    /// Builds the index with roughly `per_strip` points per x-strip.
    pub fn build(mut entries: Vec<Entry>, per_strip: usize) -> Self {
        let len = entries.len();
        let per_strip = per_strip.max(8);
        entries.sort_by(|a, b| {
            a.rect
                .center()
                .x
                .partial_cmp(&b.rect.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut strips = Vec::new();
        for chunk in entries.chunks(per_strip) {
            let x_lo = chunk.first().map(|e| e.rect.center().x).unwrap_or(0.0);
            let mut strip: Vec<Entry> = chunk.to_vec();
            strip.sort_by(|a, b| {
                a.rect
                    .center()
                    .y
                    .partial_cmp(&b.rect.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Learn y → rank on a quantized integer scale.
            let ys: Vec<u64> = strip.iter().map(|e| quantize(e.rect.center().y)).collect();
            let model = LinearModel::fit_positions(&ys);
            let err = model.max_error(&ys);
            strips.push(Strip { x_lo, entries: strip, model, err });
        }
        Self { strips, len }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of strips.
    pub fn num_strips(&self) -> usize {
        self.strips.len()
    }

    /// Exact range query. Returns `(ids, scanned)` — `scanned` counts
    /// entries examined, which for LISA stays close to the result size
    /// except at strip boundaries.
    pub fn range_query(&self, query: &Rect) -> (Vec<usize>, u64) {
        let mut out = Vec::new();
        let mut scanned = 0u64;
        // Strips intersecting the x-range: [first strip with x_lo <= x_hi,
        // starting from the last strip whose x_lo <= x_lo].
        let start = self
            .strips
            .partition_point(|s| s.x_lo <= query.min.x)
            .saturating_sub(1);
        for strip in &self.strips[start..] {
            if strip.x_lo > query.max.x {
                break;
            }
            // Learned lower bound on y inside the strip.
            let y_key = quantize(query.min.y);
            let n = strip.entries.len();
            let pred = strip.model.predict(y_key, n);
            let mut i = pred.saturating_sub(strip.err + 1);
            // Correct the bound: walk to the true first y >= query.min.y.
            while i > 0 && strip.entries[i - 1].rect.center().y >= query.min.y {
                i -= 1;
            }
            while i < n && strip.entries[i].rect.center().y < query.min.y {
                i += 1;
            }
            for e in &strip.entries[i..] {
                let c = e.rect.center();
                if c.y > query.max.y {
                    break;
                }
                scanned += 1;
                if c.x >= query.min.x && c.x <= query.max.x {
                    out.push(e.id);
                }
            }
        }
        (out, scanned)
    }

    /// Model size in bytes (strip boundaries + models).
    pub fn size_bytes(&self) -> usize {
        self.strips.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<LinearModel>() + 8)
    }
}

fn quantize(v: f64) -> u64 {
    // Domain coordinates are non-negative in our generators; scale to keep
    // fractional resolution.
    (v.max(0.0) * 1000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_points, SpatialDistribution};
    use crate::geom::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Vec<Entry>, LisaIndex) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = generate_points(SpatialDistribution::Skewed, n, &mut rng);
        let lisa = LisaIndex::build(pts.clone(), 64);
        (pts, lisa)
    }

    #[test]
    fn range_query_exact() {
        let (pts, lisa) = setup(3000, 1);
        for (qx, qy, w) in [(100.0, 100.0, 200.0), (0.0, 0.0, 50.0), (400.0, 300.0, 500.0)] {
            let q = Rect::new(Point::new(qx, qy), Point::new(qx + w, qy + w));
            let (mut got, _) = lisa.range_query(&q);
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|e| q.contains_point(&e.rect.center()))
                .map(|e| e.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "range ({qx},{qy})+{w}");
        }
    }

    #[test]
    fn scan_overhead_bounded_by_strip_structure() {
        let (_, lisa) = setup(5000, 2);
        let q = Rect::new(Point::new(100.0, 100.0), Point::new(300.0, 300.0));
        let (got, scanned) = lisa.range_query(&q);
        // Scanned entries are within the y-band of intersected strips; the
        // overhead is the x-boundary strips only.
        assert!(scanned >= got.len() as u64);
        assert!(
            scanned < (got.len() as u64 + 1) * 8,
            "scan overhead too large: {scanned} for {} results",
            got.len()
        );
    }

    #[test]
    fn empty_and_tiny() {
        let lisa = LisaIndex::build(Vec::new(), 32);
        assert!(lisa.is_empty());
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(lisa.range_query(&q).0.is_empty());
        let one = LisaIndex::build(
            vec![Entry { rect: Rect::from_point(Point::new(5.0, 5.0)), id: 7 }],
            32,
        );
        assert_eq!(one.range_query(&q).0, vec![7]);
    }

    #[test]
    fn model_smaller_than_data() {
        let (pts, lisa) = setup(5000, 3);
        assert!(lisa.size_bytes() * 10 < pts.len() * std::mem::size_of::<Entry>());
    }
}
