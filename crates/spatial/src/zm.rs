//! The ZM index (Wang et al. \[43\]) — the "replacement" learned spatial
//! index: linearize points with the Z-curve and learn the CDF of the
//! z-values (here with ε-bounded piecewise linear segments, reusing the
//! PGM machinery). Exhibits the two limitations the tutorial highlights:
//! range queries scan false positives inside the z-interval, and kNN is
//! approximate.

use crate::geom::{z_value, Point, Rect};
use crate::rtree::Entry;
use ml4db_index::pgm::{build_segments, Segment};

/// A ZM index over points.
#[derive(Clone, Debug)]
pub struct ZmIndex {
    /// Entries sorted by z-value; parallel to `zs`.
    entries: Vec<Entry>,
    /// Sorted z-values (with duplicate-resolving sequence numbers mixed in
    /// via stable sort — duplicates are allowed).
    zs: Vec<u64>,
    segments: Vec<Segment>,
    epsilon: usize,
    domain: Rect,
}

impl ZmIndex {
    /// Builds the index with CDF error bound `epsilon`.
    pub fn build(mut entries: Vec<Entry>, domain: Rect, epsilon: usize) -> Self {
        let epsilon = epsilon.max(1);
        entries.sort_by_key(|e| z_value(&e.rect.center(), &domain));
        let zs: Vec<u64> = entries.iter().map(|e| z_value(&e.rect.center(), &domain)).collect();
        // build_segments expects sorted keys; duplicates are tolerated by
        // the cone (dx == 0 entries are skipped).
        let segments = build_segments(&zs, epsilon);
        Self { entries, zs, segments, epsilon, domain }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of learned segments (model size).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Predicted position of a z-value (clamped into the covering
    /// segment's range, as in the PGM).
    fn predict(&self, z: u64) -> usize {
        if self.segments.is_empty() {
            return 0;
        }
        let idx = self
            .segments
            .partition_point(|s| s.first_key <= z)
            .saturating_sub(1);
        let seg = &self.segments[idx];
        let range_end =
            self.segments.get(idx + 1).map_or(self.zs.len(), |next| next.start);
        seg.model
            .predict(z, self.zs.len())
            .clamp(seg.start, range_end.saturating_sub(1).max(seg.start))
    }

    /// First position with z-value `>= z`.
    fn lower_bound(&self, z: u64) -> usize {
        if self.zs.is_empty() {
            return 0;
        }
        let pred = self.predict(z);
        // Exponential search on the raw z array (duplicates allowed).
        let pairs: &[u64] = &self.zs;
        let mut lo;
        let mut hi;
        let pos = pred.min(pairs.len() - 1);
        if pairs[pos] < z {
            let mut radius = 1usize;
            lo = pos;
            loop {
                let probe = pos.saturating_add(radius);
                if probe >= pairs.len() - 1 {
                    hi = pairs.len() - 1;
                    break;
                }
                if pairs[probe] >= z {
                    hi = probe;
                    break;
                }
                lo = probe;
                radius *= 2;
            }
        } else {
            hi = pos;
            let mut radius = 1usize;
            loop {
                if radius > pos {
                    lo = 0;
                    break;
                }
                let probe = pos - radius;
                if pairs[probe] <= z {
                    lo = probe;
                    break;
                }
                hi = probe;
                radius *= 2;
            }
        }
        lo + pairs[lo..=hi].partition_point(|&v| v < z)
    }

    /// Range query: exact results, but the scan may touch false positives
    /// inside the z-interval. Returns `(ids, scanned)` where `scanned`
    /// counts candidate entries examined (the ZM inefficiency metric).
    pub fn range_query(&self, query: &Rect) -> (Vec<usize>, u64) {
        if self.entries.is_empty() {
            return (Vec::new(), 0);
        }
        let z_lo = z_value(&query.min, &self.domain);
        let z_hi = z_value(&query.max, &self.domain);
        let start = self.lower_bound(z_lo);
        let mut out = Vec::new();
        let mut scanned = 0u64;
        for i in start..self.entries.len() {
            if self.zs[i] > z_hi {
                break;
            }
            scanned += 1;
            if query.contains_point(&self.entries[i].rect.center()) {
                out.push(self.entries[i].id);
            }
        }
        (out, scanned)
    }

    /// **Approximate** kNN: examines `2 * window + k` candidates around the
    /// query's z-position and returns the `k` nearest among them. Recall
    /// below 1.0 is expected — the robustness limitation of z-order kNN the
    /// tutorial calls out.
    pub fn knn_approximate(&self, point: &Point, k: usize, window: usize) -> Vec<usize> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        let z = z_value(point, &self.domain);
        let pos = self.lower_bound(z);
        let lo = pos.saturating_sub(window + k);
        let hi = (pos + window + k).min(self.entries.len());
        let mut cands: Vec<(f64, usize)> = self.entries[lo..hi]
            .iter()
            .map(|e| (e.rect.center().distance(point), e.id))
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        cands.truncate(k);
        cands.into_iter().map(|(_, id)| id).collect()
    }

    /// Point lookup by exact coordinates.
    pub fn contains(&self, point: &Point) -> bool {
        let z = z_value(point, &self.domain);
        let mut i = self.lower_bound(z);
        while i < self.zs.len() && self.zs[i] == z {
            if self.entries[i].rect.center() == *point {
                return true;
            }
            i += 1;
        }
        false
    }

    /// Model size in bytes (segments only).
    pub fn size_bytes(&self) -> usize {
        self.segments.len() * std::mem::size_of::<Segment>()
    }

    /// The ε used at build time.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_points, unit_domain, SpatialDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Vec<Entry>, ZmIndex) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = generate_points(SpatialDistribution::Clustered { clusters: 6 }, n, &mut rng);
        let zm = ZmIndex::build(pts.clone(), unit_domain(), 16);
        (pts, zm)
    }

    #[test]
    fn range_query_is_exact() {
        let (pts, zm) = setup(2000, 1);
        let q = Rect::new(Point::new(200.0, 200.0), Point::new(500.0, 450.0));
        let (mut got, scanned) = zm.range_query(&q);
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .filter(|e| q.contains_point(&e.rect.center()))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(
            scanned as usize >= expected.len(),
            "scan must cover all results"
        );
    }

    #[test]
    fn scan_overhead_exists() {
        // The z-interval contains false positives — the documented weakness.
        let (_, zm) = setup(5000, 2);
        let q = Rect::new(Point::new(450.0, 450.0), Point::new(560.0, 560.0));
        let (got, scanned) = zm.range_query(&q);
        assert!(
            scanned as usize >= got.len(),
            "scanned {scanned} < results {}",
            got.len()
        );
    }

    #[test]
    fn knn_is_approximate_but_reasonable() {
        let (pts, zm) = setup(3000, 3);
        // Probe at a data point: a fixed coordinate can fall in dead space
        // between clusters, where a z-interval window legitimately finds
        // nothing — the claim under test is recall *near data*.
        let p = pts[pts.len() / 2].rect.center();
        let k = 10;
        let got = zm.knn_approximate(&p, k, 256);
        assert_eq!(got.len(), k);
        // Recall vs brute force.
        let mut truth: Vec<(f64, usize)> =
            pts.iter().map(|e| (e.rect.center().distance(&p), e.id)).collect();
        truth.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let truth_ids: std::collections::BTreeSet<usize> =
            truth[..k].iter().map(|&(_, id)| id).collect();
        let hit = got.iter().filter(|id| truth_ids.contains(id)).count();
        let recall = hit as f64 / k as f64;
        // Approximate by design — the tutorial's robustness point — but a
        // wide window should still find a fair share of the true neighbors.
        assert!(recall >= 0.3, "recall {recall} unreasonably low");
        assert!(recall <= 1.0);
    }

    #[test]
    fn model_much_smaller_than_data() {
        let (pts, zm) = setup(5000, 4);
        let data_bytes = pts.len() * std::mem::size_of::<Entry>();
        assert!(zm.size_bytes() * 5 < data_bytes);
    }

    #[test]
    fn contains_finds_members() {
        let (pts, zm) = setup(1000, 5);
        for e in pts.iter().step_by(97) {
            assert!(zm.contains(&e.rect.center()));
        }
        assert!(!zm.contains(&Point::new(-5.0, -5.0)));
    }

    #[test]
    fn empty_index() {
        let zm = ZmIndex::build(Vec::new(), unit_domain(), 8);
        assert!(zm.is_empty());
        assert_eq!(zm.range_query(&unit_domain()).0.len(), 0);
        assert!(zm.knn_approximate(&Point::new(0.0, 0.0), 3, 8).is_empty());
    }
}
