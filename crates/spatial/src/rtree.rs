//! An R-tree with pluggable insertion policy — the classical spatial index
//! the ML-enhanced methods (RLR-tree, RW-tree, PLATON, AI+R) build on.
//!
//! The default [`GuttmanPolicy`] implements least-enlargement ChooseSubtree
//! and quadratic split (Guttman 1984). The ML-enhanced variants plug in
//! through [`InsertionPolicy`], exactly the two functions the RLR-tree \[9\]
//! identifies as the learnable heuristics.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geom::{Point, Rect};

/// Maximum entries per node.
pub const MAX_ENTRIES: usize = 8;
/// Minimum entries per node after a split.
pub const MIN_ENTRIES: usize = 3;

/// A stored item: its bounding rectangle and caller-assigned id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// Bounding rectangle (a degenerate rect for points).
    pub rect: Rect,
    /// Caller-assigned identifier.
    pub id: usize,
}

/// Decides where inserts descend and how overfull nodes split.
pub trait InsertionPolicy {
    /// Index of the child to descend into; `children` are the child MBRs.
    fn choose_subtree(&mut self, children: &[Rect], rect: &Rect, level: usize) -> usize;

    /// Partition `rects` (length `MAX_ENTRIES + 1`) into two groups; `true`
    /// goes to the new right node. Both groups must have at least
    /// [`MIN_ENTRIES`] members — violations fall back to a balanced split.
    fn split(&mut self, rects: &[Rect]) -> Vec<bool>;
}

/// Classical Guttman heuristics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuttmanPolicy;

impl InsertionPolicy for GuttmanPolicy {
    fn choose_subtree(&mut self, children: &[Rect], rect: &Rect, _level: usize) -> usize {
        let mut best = 0;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, c) in children.iter().enumerate() {
            let enl = c.enlargement(rect);
            let area = c.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    fn split(&mut self, rects: &[Rect]) -> Vec<bool> {
        quadratic_split(rects)
    }
}

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then greedily assign by preference difference.
pub fn quadratic_split(rects: &[Rect]) -> Vec<bool> {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Pick seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let waste =
                rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut assign = vec![None::<bool>; n];
    assign[s1] = Some(false);
    assign[s2] = Some(true);
    let mut mbr1 = rects[s1];
    let mut mbr2 = rects[s2];
    let mut count1 = 1;
    let mut count2 = 1;
    let mut remaining: Vec<usize> = (0..n).filter(|&i| assign[i].is_none()).collect();
    while !remaining.is_empty() {
        // Forced assignment to satisfy the minimum fill.
        let left_needed = MIN_ENTRIES.saturating_sub(count1);
        let right_needed = MIN_ENTRIES.saturating_sub(count2);
        if left_needed >= remaining.len() {
            for &i in &remaining {
                assign[i] = Some(false);
            }
            break;
        }
        if right_needed >= remaining.len() {
            for &i in &remaining {
                assign[i] = Some(true);
            }
            break;
        }
        // Pick the entry with the largest preference difference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let d1 = mbr1.enlargement(&rects[i]);
                let d2 = mbr2.enlargement(&rects[i]);
                (pos, (d1 - d2).abs())
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
            .expect("non-empty");
        let i = remaining.swap_remove(pos);
        let d1 = mbr1.enlargement(&rects[i]);
        let d2 = mbr2.enlargement(&rects[i]);
        let to_right = d2 < d1 || (d1 == d2 && count2 < count1);
        assign[i] = Some(to_right);
        if to_right {
            mbr2 = mbr2.union(&rects[i]);
            count2 += 1;
        } else {
            mbr1 = mbr1.union(&rects[i]);
            count1 += 1;
        }
    }
    assign.into_iter().map(|a| a.expect("all assigned")).collect()
}

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf(Vec<Entry>),
    Internal(Vec<Box<Node>>),
}

#[derive(Clone, Debug)]
struct Node {
    rect: Rect,
    kind: NodeKind,
}

impl Node {
    fn recompute_rect(&mut self) {
        self.rect = match &self.kind {
            NodeKind::Leaf(entries) => {
                entries.iter().fold(Rect::empty(), |acc, e| acc.union(&e.rect))
            }
            NodeKind::Internal(children) => {
                children.iter().fold(Rect::empty(), |acc, c| acc.union(&c.rect))
            }
        };
    }

    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }
}

/// Access counters of one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Internal + leaf nodes visited.
    pub nodes_visited: u64,
    /// Leaf nodes visited (the I/O proxy every spatial experiment reports).
    pub leaf_accesses: u64,
}

/// The R-tree.
#[derive(Clone, Debug)]
pub struct RTree {
    root: Box<Node>,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self { root: Box::new(Node { rect: Rect::empty(), kind: NodeKind::Leaf(Vec::new()) }), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry using the given policy.
    pub fn insert<P: InsertionPolicy>(&mut self, entry: Entry, policy: &mut P) {
        if let Some((r1, r2)) = Self::insert_rec(&mut self.root, entry, policy, 0) {
            self.root = Box::new(Node {
                rect: r1.rect.union(&r2.rect),
                kind: NodeKind::Internal(vec![r1, r2]),
            });
        }
        self.len += 1;
    }

    fn insert_rec<P: InsertionPolicy>(
        node: &mut Node,
        entry: Entry,
        policy: &mut P,
        level: usize,
    ) -> Option<(Box<Node>, Box<Node>)> {
        node.rect = if node.len() == 0 { entry.rect } else { node.rect.union(&entry.rect) };
        match &mut node.kind {
            NodeKind::Leaf(entries) => {
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    let rects: Vec<Rect> = entries.iter().map(|e| e.rect).collect();
                    let assign = sanitize_split(policy.split(&rects), rects.len());
                    let (mut left, mut right) = (Vec::new(), Vec::new());
                    for (e, to_right) in entries.drain(..).zip(&assign) {
                        if *to_right {
                            right.push(e);
                        } else {
                            left.push(e);
                        }
                    }
                    let mut n1 = Node { rect: Rect::empty(), kind: NodeKind::Leaf(left) };
                    let mut n2 = Node { rect: Rect::empty(), kind: NodeKind::Leaf(right) };
                    n1.recompute_rect();
                    n2.recompute_rect();
                    return Some((Box::new(n1), Box::new(n2)));
                }
                None
            }
            NodeKind::Internal(children) => {
                let child_rects: Vec<Rect> = children.iter().map(|c| c.rect).collect();
                let idx = policy
                    .choose_subtree(&child_rects, &entry.rect, level)
                    .min(children.len() - 1);
                if let Some((n1, n2)) = Self::insert_rec(&mut children[idx], entry, policy, level + 1)
                {
                    children[idx] = n1;
                    children.push(n2);
                    if children.len() > MAX_ENTRIES {
                        let rects: Vec<Rect> = children.iter().map(|c| c.rect).collect();
                        let assign = sanitize_split(policy.split(&rects), rects.len());
                        let (mut left, mut right) = (Vec::new(), Vec::new());
                        for (c, to_right) in children.drain(..).zip(&assign) {
                            if *to_right {
                                right.push(c);
                            } else {
                                left.push(c);
                            }
                        }
                        let mut n1 = Node { rect: Rect::empty(), kind: NodeKind::Internal(left) };
                        let mut n2 = Node { rect: Rect::empty(), kind: NodeKind::Internal(right) };
                        n1.recompute_rect();
                        n2.recompute_rect();
                        return Some((Box::new(n1), Box::new(n2)));
                    }
                }
                node.recompute_rect();
                None
            }
        }
    }

    /// Bulk-loads with Sort-Tile-Recursive packing — the classical
    /// bulk-loading baseline PLATON is compared against.
    pub fn bulk_load_str(entries: &[Entry]) -> Self {
        if entries.is_empty() {
            return Self::new();
        }
        // Sort by x, slice into vertical strips, sort strips by y, pack.
        let mut sorted: Vec<Entry> = entries.to_vec();
        sorted.sort_by(|a, b| {
            a.rect
                .center()
                .x
                .partial_cmp(&b.rect.center().x)
                .unwrap_or(Ordering::Equal)
        });
        let n = sorted.len();
        let leaf_count = n.div_ceil(MAX_ENTRIES);
        let strips = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strips);
        let mut leaves: Vec<Box<Node>> = Vec::new();
        for strip in sorted.chunks(per_strip) {
            let mut strip: Vec<Entry> = strip.to_vec();
            strip.sort_by(|a, b| {
                a.rect
                    .center()
                    .y
                    .partial_cmp(&b.rect.center().y)
                    .unwrap_or(Ordering::Equal)
            });
            for chunk in strip.chunks(MAX_ENTRIES) {
                let mut node =
                    Node { rect: Rect::empty(), kind: NodeKind::Leaf(chunk.to_vec()) };
                node.recompute_rect();
                leaves.push(Box::new(node));
            }
        }
        Self::pack_levels(leaves, entries.len())
    }

    /// Builds internal levels over pre-packed leaves (shared by STR and
    /// PLATON).
    fn pack_levels(mut level: Vec<Box<Node>>, len: usize) -> Self {
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            for chunk in level.chunks_mut(MAX_ENTRIES) {
                let children: Vec<Box<Node>> = chunk.iter().map(|c| (*c).clone()).collect();
                let mut node = Node { rect: Rect::empty(), kind: NodeKind::Internal(children) };
                node.recompute_rect();
                next.push(Box::new(node));
            }
            level = next;
        }
        let root = level.pop().unwrap_or_else(|| {
            Box::new(Node { rect: Rect::empty(), kind: NodeKind::Leaf(Vec::new()) })
        });
        Self { root, len }
    }

    /// Builds a tree directly from grouped leaf entries (used by PLATON's
    /// learned packer).
    pub fn from_leaf_groups(groups: &[Vec<Entry>]) -> Self {
        let len = groups.iter().map(|g| g.len()).sum();
        let leaves: Vec<Box<Node>> = groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|g| {
                let mut node = Node { rect: Rect::empty(), kind: NodeKind::Leaf(g.clone()) };
                node.recompute_rect();
                Box::new(node)
            })
            .collect();
        Self::pack_levels(leaves, len)
    }

    /// Range query: ids of entries whose rects intersect `query`.
    pub fn range_query(&self, query: &Rect) -> (Vec<usize>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        let mut stack = vec![&*self.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    stats.leaf_accesses += 1;
                    for e in entries {
                        if query.intersects(&e.rect) {
                            out.push(e.id);
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    for c in children {
                        if query.intersects(&c.rect) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        (out, stats)
    }

    /// Exact k-nearest-neighbor query (best-first search).
    pub fn knn(&self, point: &Point, k: usize) -> (Vec<usize>, QueryStats) {
        struct Cand<'a> {
            dist: f64,
            node: Option<&'a Node>,
            id: usize,
        }
        impl PartialEq for Cand<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for Cand<'_> {}
        impl Ord for Cand<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance.
                other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
            }
        }
        impl PartialOrd for Cand<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut stats = QueryStats::default();
        let mut heap = BinaryHeap::new();
        heap.push(Cand { dist: 0.0, node: Some(&*self.root), id: 0 });
        let mut result = Vec::new();
        while let Some(c) = heap.pop() {
            match c.node {
                Some(node) => {
                    stats.nodes_visited += 1;
                    match &node.kind {
                        NodeKind::Leaf(entries) => {
                            stats.leaf_accesses += 1;
                            for e in entries {
                                heap.push(Cand {
                                    dist: e.rect.min_distance(point),
                                    node: None,
                                    id: e.id,
                                });
                            }
                        }
                        NodeKind::Internal(children) => {
                            for child in children {
                                heap.push(Cand {
                                    dist: child.rect.min_distance(point),
                                    node: Some(child),
                                    id: 0,
                                });
                            }
                        }
                    }
                }
                None => {
                    result.push(c.id);
                    if result.len() >= k {
                        break;
                    }
                }
            }
        }
        (result, stats)
    }

    /// Validates R-tree invariants: MBRs cover children, fills within
    /// bounds (root exempt), all leaves at the same depth.
    pub fn validate(&self) -> Result<(), String> {
        fn rec(node: &Node, is_root: bool) -> Result<usize, String> {
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    if !is_root && (entries.len() < MIN_ENTRIES || entries.len() > MAX_ENTRIES) {
                        return Err(format!("leaf fill {} out of bounds", entries.len()));
                    }
                    for e in entries {
                        if !node.rect.contains_rect(&e.rect) {
                            return Err("leaf MBR does not cover entry".into());
                        }
                    }
                    Ok(1)
                }
                NodeKind::Internal(children) => {
                    if children.is_empty() {
                        return Err("empty internal node".into());
                    }
                    if !is_root && (children.len() < 2 || children.len() > MAX_ENTRIES) {
                        return Err(format!("internal fill {} out of bounds", children.len()));
                    }
                    let mut depth = None;
                    for c in children {
                        if !node.rect.contains_rect(&c.rect) {
                            return Err("internal MBR does not cover child".into());
                        }
                        let d = rec(c, false)?;
                        if *depth.get_or_insert(d) != d {
                            return Err("leaves at different depths".into());
                        }
                    }
                    Ok(depth.expect("children non-empty") + 1)
                }
            }
        }
        rec(&self.root, true).map(|_| ())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        fn rec(node: &Node) -> usize {
            match &node.kind {
                NodeKind::Leaf(_) => 1,
                NodeKind::Internal(children) => 1 + children.iter().map(|c| rec(c)).sum::<usize>(),
            }
        }
        rec(&self.root)
    }

    /// MBRs and entry lists of all leaves (AI+R trains per-leaf models).
    pub fn leaves(&self) -> Vec<(Rect, Vec<Entry>)> {
        fn rec(node: &Node, out: &mut Vec<(Rect, Vec<Entry>)>) {
            match &node.kind {
                NodeKind::Leaf(entries) => out.push((node.rect, entries.clone())),
                NodeKind::Internal(children) => {
                    for c in children {
                        rec(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        rec(&self.root, &mut out);
        out
    }
}

/// Repairs a policy-produced split that violates the minimum fill: falls
/// back to a balanced split along the x-center order.
fn sanitize_split(assign: Vec<bool>, n: usize) -> Vec<bool> {
    let right = assign.iter().filter(|&&b| b).count();
    let left = n - right;
    if assign.len() == n && left >= MIN_ENTRIES && right >= MIN_ENTRIES {
        return assign;
    }
    (0..n).map(|i| i >= n / 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|id| Entry {
                rect: Rect::from_point(Point::new(
                    rng.gen_range(0.0..1000.0),
                    rng.gen_range(0.0..1000.0),
                )),
                id,
            })
            .collect()
    }

    fn brute_range(entries: &[Entry], q: &Rect) -> Vec<usize> {
        let mut v: Vec<usize> =
            entries.iter().filter(|e| q.intersects(&e.rect)).map(|e| e.id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_and_range_match_bruteforce() {
        let entries = random_points(500, 1);
        let mut tree = RTree::new();
        let mut policy = GuttmanPolicy;
        for e in &entries {
            tree.insert(*e, &mut policy);
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 500);
        let q = Rect::new(Point::new(100.0, 100.0), Point::new(400.0, 300.0));
        let (mut got, stats) = tree.range_query(&q);
        got.sort_unstable();
        assert_eq!(got, brute_range(&entries, &q));
        assert!(stats.leaf_accesses > 0);
        assert!(
            stats.leaf_accesses < tree.node_count() as u64,
            "query should prune"
        );
    }

    #[test]
    fn str_bulk_load_correct_and_tighter() {
        let entries = random_points(800, 2);
        let str_tree = RTree::bulk_load_str(&entries);
        str_tree.validate().unwrap();
        let mut incr = RTree::new();
        let mut policy = GuttmanPolicy;
        for e in &entries {
            incr.insert(*e, &mut policy);
        }
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(250.0, 250.0));
        let (mut a, sa) = str_tree.range_query(&q);
        let (mut b, sb) = incr.range_query(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a, brute_range(&entries, &q));
        // Packed trees should generally touch fewer leaves.
        assert!(
            sa.leaf_accesses <= sb.leaf_accesses + 5,
            "STR {} vs incremental {}",
            sa.leaf_accesses,
            sb.leaf_accesses
        );
    }

    #[test]
    fn knn_matches_bruteforce() {
        let entries = random_points(400, 3);
        let tree = RTree::bulk_load_str(&entries);
        let p = Point::new(500.0, 500.0);
        let (got, _) = tree.knn(&p, 10);
        let mut expected: Vec<(f64, usize)> = entries
            .iter()
            .map(|e| (e.rect.min_distance(&p), e.id))
            .collect();
        expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let expected_ids: Vec<usize> = expected[..10].iter().map(|&(_, id)| id).collect();
        // Best-first returns in distance order.
        assert_eq!(got, expected_ids);
    }

    #[test]
    fn knn_k_larger_than_tree() {
        let entries = random_points(5, 4);
        let tree = RTree::bulk_load_str(&entries);
        let (got, _) = tree.knn(&Point::new(0.0, 0.0), 10);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let entries = random_points(MAX_ENTRIES + 1, 5);
        let rects: Vec<Rect> = entries.iter().map(|e| e.rect).collect();
        let assign = quadratic_split(&rects);
        let right = assign.iter().filter(|&&b| b).count();
        assert!(right >= MIN_ENTRIES);
        assert!(assign.len() - right >= MIN_ENTRIES);
    }

    #[test]
    fn from_leaf_groups_valid() {
        let entries = random_points(100, 6);
        let groups: Vec<Vec<Entry>> =
            entries.chunks(MAX_ENTRIES).map(|c| c.to_vec()).collect();
        let tree = RTree::from_leaf_groups(&groups);
        // Min-fill may be violated by tiny tail groups; only check coverage.
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let (got, _) = tree.range_query(&q);
        assert_eq!(got.len(), 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range queries agree with brute force for random data and boxes.
        #[test]
        fn range_oracle(
            seed in 0u64..1000,
            qx in 0.0f64..900.0,
            qy in 0.0f64..900.0,
            w in 1.0f64..500.0,
            h in 1.0f64..500.0,
        ) {
            let entries = random_points(120, seed);
            let mut tree = RTree::new();
            let mut policy = GuttmanPolicy;
            for e in &entries {
                tree.insert(*e, &mut policy);
            }
            tree.validate().unwrap();
            let q = Rect::new(Point::new(qx, qy), Point::new(qx + w, qy + h));
            let (mut got, _) = tree.range_query(&q);
            got.sort_unstable();
            prop_assert_eq!(got, brute_range(&entries, &q));
        }
    }
}
