//! The RLR-tree (Gu et al. \[9\]) — **ML-enhanced insertion**: keep the exact
//! R-tree structure and queries, but learn the ChooseSubtree and SplitNode
//! decisions with reinforcement learning. The agent picks among the top-k
//! enlargement candidates (ChooseSubtree) and between two split heuristics
//! (SplitNode); the reward is the improvement in workload query cost.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml4db_nn::rl::QTable;

use crate::geom::Rect;
use crate::rtree::{quadratic_split, Entry, InsertionPolicy, RTree, MIN_ENTRIES};

/// Candidates considered per ChooseSubtree decision.
const TOP_K: usize = 3;
/// Action ids: `0..TOP_K` pick a subtree candidate; split actions are in a
/// separate state space.
const SPLIT_ACTIONS: usize = 2;

/// The learned insertion policy.
#[derive(Debug)]
pub struct RlrPolicy {
    /// Q-values over quantized decision states.
    pub q: QTable,
    /// Exploration rate (0 at evaluation time).
    pub epsilon: f32,
    rng: StdRng,
    /// `(state, action)` log of the current episode (for Monte-Carlo
    /// updates).
    trajectory: Vec<(u64, usize)>,
}

impl RlrPolicy {
    /// Creates an untrained policy.
    pub fn new(seed: u64) -> Self {
        Self {
            q: QTable::new(0.3, 1.0),
            epsilon: 0.3,
            rng: StdRng::seed_from_u64(seed),
            trajectory: Vec::new(),
        }
    }

    /// Clears the episode trajectory (call before building a tree).
    pub fn begin_episode(&mut self) {
        self.trajectory.clear();
    }

    /// Credits every decision recorded since the last call with `reward`
    /// and clears the log. Called per episode or, better, per insert
    /// segment (the reference-tree scheme of the RLR paper).
    pub fn end_episode(&mut self, reward: f32) {
        let steps: Vec<(u64, usize)> = self.trajectory.drain(..).collect();
        for (state, action) in steps {
            self.q.update(state, action, reward, 0, &[]);
        }
    }

    /// Number of decisions recorded in the current episode.
    pub fn trajectory_len(&self) -> usize {
        self.trajectory.len()
    }

    /// Forgets everything learned; with ε = 0 the policy then behaves like
    /// Guttman (action 0 everywhere). Used by the training guardrail.
    pub fn clear(&mut self) {
        self.q = QTable::new(self.q.alpha, self.q.gamma);
        self.trajectory.clear();
    }

    /// Quantized state for a ChooseSubtree decision: buckets of relative
    /// enlargement, overlap increase, and occupancy of the top candidates.
    fn choose_state(candidates: &[(usize, f64, f64)], rect_area: f64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        for &(_, enl, area) in candidates.iter().take(TOP_K) {
            mix(bucket(enl / (rect_area + 1e-9)));
            mix(bucket(area / (rect_area + 1e-9)));
        }
        h
    }

    /// Quantized state for a SplitNode decision.
    fn split_state(rects: &[Rect]) -> u64 {
        let total: f64 = rects.iter().map(|r| r.area()).sum();
        let mbr = rects.iter().fold(Rect::empty(), |a, r| a.union(r));
        let coverage = total / mbr.area().max(1e-9);
        let aspect = (mbr.max.x - mbr.min.x) / (mbr.max.y - mbr.min.y).max(1e-9);
        0x9e37_79b9_7f4a_7c15u64
            .wrapping_mul(bucket(coverage) + 31 * bucket(aspect) + 1)
    }
}

impl RlrPolicy {
    /// Actions offered to the selector. While exploring, every action is
    /// legal; at evaluation time (ε = 0) only *visited* actions compete
    /// with the heuristic default (action 0), so an untrained state falls
    /// back to Guttman's choice instead of an arbitrary unexplored arm
    /// whose optimistic Q of 0 would beat a slightly negative default.
    fn candidate_actions(&self, state: u64, n: usize) -> Vec<usize> {
        if self.epsilon > 0.0 {
            return (0..n).collect();
        }
        let mut v: Vec<usize> =
            (0..n).filter(|&a| a == 0 || self.q.contains(state, a)).collect();
        if v.is_empty() {
            v.push(0);
        }
        v
    }
}

fn bucket(v: f64) -> u64 {
    // Log-ish bucketing into 0..=7.
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    ((v.log2() + 4.0).clamp(0.0, 7.0)) as u64
}

impl InsertionPolicy for RlrPolicy {
    fn choose_subtree(&mut self, children: &[Rect], rect: &Rect, _level: usize) -> usize {
        // Rank candidates by enlargement; the agent picks among the top-k.
        let mut ranked: Vec<(usize, f64, f64)> = children
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.enlargement(rect), c.area()))
            .collect();
        // Sort by (enlargement, area) so action 0 is *exactly* Guttman's
        // choice — a cleared/untrained policy then reproduces the baseline
        // tree bit for bit.
        ranked.sort_by(|a, b| {
            (a.1, a.2)
                .partial_cmp(&(b.1, b.2))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked.truncate(TOP_K);
        if ranked.len() == 1 {
            return ranked[0].0;
        }
        let state = Self::choose_state(&ranked, rect.area().max(1e-9));
        let actions = self.candidate_actions(state, ranked.len());
        let action = self
            .q
            .select(state, &actions, self.epsilon, &mut self.rng)
            .unwrap_or(0);
        self.trajectory.push((state, action));
        ranked[action].0
    }

    fn split(&mut self, rects: &[Rect]) -> Vec<bool> {
        let state = Self::split_state(rects);
        let actions = self.candidate_actions(state | 1, SPLIT_ACTIONS);
        let action = self
            .q
            .select(state | 1, &actions, self.epsilon, &mut self.rng)
            .unwrap_or(0);
        self.trajectory.push((state | 1, action));
        match action {
            0 => quadratic_split(rects),
            _ => axis_balanced_split(rects),
        }
    }
}

/// Alternative split heuristic: sort by the longer axis and cut in half —
/// cheap and low-overlap on clustered data.
pub fn axis_balanced_split(rects: &[Rect]) -> Vec<bool> {
    let mbr = rects.iter().fold(Rect::empty(), |a, r| a.union(r));
    let by_x = (mbr.max.x - mbr.min.x) >= (mbr.max.y - mbr.min.y);
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by(|&a, &b| {
        let (ka, kb) = if by_x {
            (rects[a].center().x, rects[b].center().x)
        } else {
            (rects[a].center().y, rects[b].center().y)
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let half = rects.len() / 2;
    let mut assign = vec![false; rects.len()];
    for &i in &order[half..] {
        assign[i] = true;
    }
    debug_assert!(half >= MIN_ENTRIES && rects.len() - half >= MIN_ENTRIES);
    assign
}

/// Trains an RLR policy with the paper's reference-tree reward scheme:
/// during each episode the agent tree and a Guttman-built reference tree
/// receive the same insert stream; at every checkpoint the decisions since
/// the previous checkpoint are credited with the cost gap between the two
/// trees on a workload sample. Returns the trained policy and per-episode
/// full-workload costs.
pub fn train_rlr(
    points: &[Entry],
    queries: &[Rect],
    episodes: usize,
    seed: u64,
) -> (RlrPolicy, Vec<f64>) {
    use crate::data::workload_leaf_accesses;
    use crate::rtree::GuttmanPolicy;

    let checkpoint = (points.len() / 8).max(25);
    // Train on the first half of the workload, keep the second half as the
    // guardrail's held-out validation set.
    let split = (queries.len() / 2).max(1);
    let sample: Vec<Rect> = queries.iter().take(15.min(split)).copied().collect();
    let validation: Vec<Rect> = queries[split..].to_vec();

    // The reference tree is deterministic: precompute its sample cost at
    // every checkpoint once.
    let mut ref_costs = Vec::new();
    {
        let mut g = GuttmanPolicy;
        let mut ref_tree = RTree::new();
        for (i, e) in points.iter().enumerate() {
            ref_tree.insert(*e, &mut g);
            if (i + 1) % checkpoint == 0 || i + 1 == points.len() {
                ref_costs.push(workload_leaf_accesses(&ref_tree, &sample));
            }
        }
    }

    let mut policy = RlrPolicy::new(seed);
    let mut costs = Vec::with_capacity(episodes);
    for ep in 0..episodes {
        policy.epsilon = 0.4 * (1.0 - ep as f32 / episodes.max(1) as f32);
        policy.begin_episode();
        let mut tree = RTree::new();
        let mut ck = 0usize;
        for (i, e) in points.iter().enumerate() {
            tree.insert(*e, &mut policy);
            if (i + 1) % checkpoint == 0 || i + 1 == points.len() {
                let agent_cost = workload_leaf_accesses(&tree, &sample);
                let reference = ref_costs[ck];
                ck += 1;
                let reward = (reference - agent_cost) as f32 / reference.max(1.0) as f32;
                policy.end_episode(reward);
            }
        }
        costs.push(workload_leaf_accesses(&tree, queries));
    }
    policy.epsilon = 0.0;
    // Guardrail (the ML-enhanced robustness pattern): validate the greedy
    // policy against the Guttman baseline on the training workload; if the
    // learned decisions hurt, discard them — the policy then reproduces
    // Guttman exactly. Monte-Carlo rewards are noisy, and a learned index
    // component must never regress the system it enhances.
    {
        policy.begin_episode();
        let mut greedy_tree = RTree::new();
        for e in points {
            greedy_tree.insert(*e, &mut policy);
        }
        policy.begin_episode(); // drop the validation trajectory
        let mut g = GuttmanPolicy;
        let mut base_tree = RTree::new();
        for e in points {
            base_tree.insert(*e, &mut g);
        }
        // The learned decisions must improve on the held-out half AND not
        // regress the full workload; otherwise fall back to Guttman.
        let held_out = if validation.is_empty() { queries } else { &validation };
        let ok = workload_leaf_accesses(&greedy_tree, held_out)
            < workload_leaf_accesses(&base_tree, held_out)
            && workload_leaf_accesses(&greedy_tree, queries)
                <= workload_leaf_accesses(&base_tree, queries);
        if !ok {
            policy.clear();
        }
    }
    (policy, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{
        generate_points, generate_range_queries, workload_leaf_accesses, SpatialDistribution,
    };
    use crate::rtree::GuttmanPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rlr_tree_is_a_correct_rtree() {
        let mut rng = StdRng::seed_from_u64(1);
        let points =
            generate_points(SpatialDistribution::Clustered { clusters: 5 }, 400, &mut rng);
        let mut policy = RlrPolicy::new(7);
        let mut tree = RTree::new();
        for e in &points {
            tree.insert(*e, &mut policy);
        }
        tree.validate().unwrap();
        let q = Rect::new(
            crate::geom::Point::new(100.0, 100.0),
            crate::geom::Point::new(400.0, 400.0),
        );
        let (mut got, _) = tree.range_query(&q);
        got.sort_unstable();
        let mut expected: Vec<usize> = points
            .iter()
            .filter(|e| q.intersects(&e.rect))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "learned insertion must not change results");
    }

    #[test]
    fn axis_split_respects_min_fill() {
        let mut rng = StdRng::seed_from_u64(2);
        let points = generate_points(SpatialDistribution::Uniform, 9, &mut rng);
        let rects: Vec<Rect> = points.iter().map(|e| e.rect).collect();
        let assign = axis_balanced_split(&rects);
        let right = assign.iter().filter(|&&b| b).count();
        assert!(right >= MIN_ENTRIES && assign.len() - right >= MIN_ENTRIES);
    }

    #[test]
    fn training_does_not_regress_vs_baseline() {
        let mut rng = StdRng::seed_from_u64(3);
        let points =
            generate_points(SpatialDistribution::Clustered { clusters: 4 }, 600, &mut rng);
        let queries = generate_range_queries(60, 0.08, true, &mut rng);
        let (mut policy, costs) = train_rlr(&points, &queries, 10, 11);
        assert_eq!(costs.len(), 10);
        // Greedy (trained, no exploration) build:
        policy.begin_episode();
        let mut tree = RTree::new();
        for e in &points {
            tree.insert(*e, &mut policy);
        }
        tree.validate().unwrap();
        let trained_cost = workload_leaf_accesses(&tree, &queries);
        let mut g = GuttmanPolicy;
        let mut base = RTree::new();
        for e in &points {
            base.insert(*e, &mut g);
        }
        let base_cost = workload_leaf_accesses(&base, &queries);
        assert!(
            trained_cost <= base_cost * 1.15,
            "trained {trained_cost} much worse than baseline {base_cost}"
        );
    }

    #[test]
    fn episode_reward_updates_q() {
        let mut policy = RlrPolicy::new(1);
        policy.begin_episode();
        let children = [
            Rect::new(crate::geom::Point::new(0.0, 0.0), crate::geom::Point::new(10.0, 10.0)),
            Rect::new(crate::geom::Point::new(20.0, 20.0), crate::geom::Point::new(30.0, 30.0)),
        ];
        let r = Rect::from_point(crate::geom::Point::new(5.0, 5.0));
        policy.choose_subtree(&children, &r, 0);
        assert_eq!(policy.trajectory_len(), 1);
        policy.end_episode(1.0);
        assert!(!policy.q.is_empty());
        assert_eq!(policy.trajectory_len(), 0);
    }
}
