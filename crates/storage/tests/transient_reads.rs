//! Regression suite for the transient-read recovery bug: `durable`
//! recovery used to treat any `IoFault::Transient` surfaced by a
//! `SimDisk` read as fatal (`Wal::recover`'s segment enumeration
//! errored on the first failing `list`, and a transiently unreadable
//! run file was silently *dropped* — lost data once a checkpoint had
//! GC'd the log). WAL segment reads now get the same bounded
//! deterministic retry/backoff appends get for ENOSPC.

use ml4db_storage::durable::{
    DurableStore, FaultSpec, SimDisk, StoreConfig, Wal, WalConfig, WalError, WalRecord,
};

fn populated_disk(n: u64) -> (SimDisk, Vec<WalRecord>) {
    let mut disk = SimDisk::new();
    let mut wal = Wal::create(&mut disk, WalConfig::default()).unwrap();
    let mut written = Vec::new();
    for i in 0..n {
        let seq = wal.alloc_seq();
        let rec = WalRecord::Put { seq, key: i, value: i * 3 };
        wal.append(&mut disk, &rec).unwrap();
        written.push(rec);
    }
    let seq = wal.alloc_seq();
    written.push(WalRecord::Commit { seq });
    wal.append(&mut disk, written.last().unwrap()).unwrap();
    wal.sync(&mut disk).unwrap();
    (disk, written)
}

#[test]
fn recover_rides_out_transient_list_errors() {
    let (mut disk, written) = populated_disk(8);
    // The very first recovery op is the segment enumeration; fail it
    // twice. Before the fix this was `WalError::Transient` immediately.
    disk.arm(FaultSpec::ReadTransientAt { op: disk.ops(), times: 2 });
    let (wal, replay) = Wal::recover(&mut disk, WalConfig::default()).unwrap();
    assert_eq!(replay.records, written);
    assert!(!replay.torn_tail);
    // Deterministic backoff schedule, same as appends: 1 then 2 ticks.
    assert_eq!(wal.backoff_ticks(), 1 + 2);
    assert_eq!(disk.fault_hits(), 2);
}

#[test]
fn recover_rides_out_transient_segment_reads() {
    let (mut disk, written) = populated_disk(8);
    // Skip past the `list` op so the fault lands on the segment read
    // itself (and, budget permitting, the length cross-check).
    disk.arm(FaultSpec::ReadTransientAt { op: disk.ops() + 1, times: 3 });
    let (wal, replay) = Wal::recover(&mut disk, WalConfig::default()).unwrap();
    assert_eq!(replay.records, written);
    assert_eq!(disk.fault_hits(), 3);
    assert_eq!(wal.backoff_ticks(), 1 + 2 + 4, "1,2,4 tick schedule");
}

#[test]
fn recover_surfaces_clean_error_when_transients_never_clear() {
    let (mut disk, _) = populated_disk(4);
    disk.arm(FaultSpec::ReadTransientAt { op: disk.ops(), times: 1000 });
    let cfg = WalConfig { retry_limit: 3, ..WalConfig::default() };
    match Wal::recover(&mut disk, cfg) {
        // Bounded: 1 initial attempt + retry_limit retries, no panic,
        // no spin.
        Err(WalError::Transient { attempts }) => assert_eq!(attempts, cfg.retry_limit + 1),
        other => panic!("expected bounded Transient error, got {other:?}"),
    }
}

#[test]
fn store_open_recovers_full_state_through_read_transients() {
    // Build a store whose state lives in BOTH a flushed run and the
    // WAL tail, flush (checkpoint GCs the old segments), then reopen
    // under a burst of transient read errors. Before the fix: fatal on
    // the list, or — worse — a dropped run and silent data loss.
    let cfg = StoreConfig {
        wal: WalConfig { segment_bytes: 256, ..WalConfig::default() },
        memtable_limit: 10_000,
    };
    let mut store = DurableStore::create(SimDisk::new(), cfg).unwrap();
    for i in 0..40u64 {
        store.put(i, i + 100).unwrap();
        store.commit().unwrap();
    }
    store.flush().unwrap();
    // Post-flush tail: lives only in the WAL.
    store.put(7, 777).unwrap();
    store.commit().unwrap();
    let model = store.committed_state();

    let mut disk = store.into_medium();
    // Each failing read-family call consumes one fault charge and each
    // open-path call retries up to retry_limit (4) times, so a burst of
    // 3 is always survivable no matter which call it lands on.
    disk.arm(FaultSpec::ReadTransientAt { op: disk.ops(), times: 3 });
    let (reopened, report) = DurableStore::open(disk, cfg).unwrap();
    assert_eq!(report.runs_loaded, 1, "the flushed run must not be dropped");
    assert_eq!(report.runs_rejected, 0);
    assert_eq!(reopened.committed_state(), model);
    assert_eq!(reopened.get(7), Some(777));
}

#[test]
fn store_open_fails_cleanly_rather_than_dropping_an_unreadable_run() {
    // A run that stays unreadable past the retry budget is lost data
    // (the checkpoint already GC'd its records out of the WAL): open
    // must surface an error, never silently reject the run.
    let cfg = StoreConfig { wal: WalConfig::default(), memtable_limit: 10_000 };
    let mut store = DurableStore::create(SimDisk::new(), cfg).unwrap();
    for i in 0..20u64 {
        store.put(i, i).unwrap();
        store.commit().unwrap();
    }
    store.flush().unwrap();
    let mut disk = store.into_medium();
    // One op past `list`: the fault lands on the run read, forever.
    disk.arm(FaultSpec::ReadTransientAt { op: disk.ops() + 1, times: u32::MAX });
    match DurableStore::open(disk, cfg) {
        Err(WalError::Transient { attempts }) => {
            assert_eq!(attempts, cfg.wal.retry_limit + 1);
        }
        Ok((_, report)) => panic!(
            "open must not succeed by dropping the run (rejected={})",
            report.runs_rejected
        ),
        other => panic!("expected Transient, got {other:?}"),
    }
}

#[test]
fn transient_reads_leave_torn_tail_semantics_intact() {
    // The retry path must not change what recovery concludes: a torn
    // tail with transient reads layered on top replays exactly the
    // records a clean recovery would.
    let (mut disk, written) = populated_disk(6);
    // Append an unsynced (volatile) record, crash, reboot: torn tail.
    let mut wal = Wal::recover(&mut disk, WalConfig::default()).unwrap().0;
    let seq = wal.alloc_seq();
    wal.append(&mut disk, &WalRecord::Put { seq, key: 99, value: 99 }).unwrap();
    disk.arm(FaultSpec::CrashAt {
        op: disk.ops(),
        tail: ml4db_storage::durable::TailPolicy::DropAll,
    });
    assert_eq!(wal.sync(&mut disk), Err(WalError::MediumCrashed));
    disk.reboot(0);

    let mut clean_disk = disk.clone();
    let (_, clean) = Wal::recover(&mut clean_disk, WalConfig::default()).unwrap();

    disk.arm(FaultSpec::ReadTransientAt { op: disk.ops(), times: 2 });
    let (_, faulted) = Wal::recover(&mut disk, WalConfig::default()).unwrap();
    assert_eq!(faulted.records, clean.records);
    assert_eq!(faulted.records, written, "volatile tail dropped, durable prefix intact");
    assert_eq!(faulted.torn_tail, clean.torn_tail);
}
