//! Property tests for the WAL frame codec: the two load-bearing claims
//! behind crash recovery.
//!
//! 1. **Corruption is always detected**: encode a log, flip any single
//!    byte (any bit), and decoding must stop before or at the damaged
//!    frame — never yield a record that differs from what was written.
//! 2. **Truncation stops at the last whole record**: encode a log, cut
//!    it at *every* byte offset, and replay must return exactly the
//!    records whose frames fit entirely inside the cut — the formal
//!    version of "a torn tail costs only unacknowledged writes".

use ml4db_storage::durable::wal::{decode_all, encode_frame, FrameStop, WalRecord};
use proptest::prelude::*;

fn arb_record(seed: u64, i: u64) -> WalRecord {
    let k = seed.rotate_left((i % 61) as u32).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match k % 4 {
        0 => WalRecord::Put { seq: i, key: k >> 8, value: k ^ i },
        1 => WalRecord::Delete { seq: i, key: k >> 8 },
        2 => WalRecord::Commit { seq: i },
        _ => WalRecord::Checkpoint {
            seq: i,
            run_id: (k >> 32) as u32,
            flushed_through: i.saturating_sub(1),
        },
    }
}

fn encode_log(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut ends = vec![0usize];
    for r in records {
        log.extend_from_slice(&encode_frame(&r.encode()));
        ends.push(log.len());
    }
    (log, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip one byte anywhere: the decoded prefix must match the
    /// written records exactly up to where decoding stops, and decoding
    /// must stop at or before the frame containing the damage.
    #[test]
    fn any_single_byte_corruption_is_detected(
        seed in 0u64..u64::MAX,
        n in 1usize..12,
        victim_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records: Vec<WalRecord> =
            (0..n as u64).map(|i| arb_record(seed, i)).collect();
        let (log, ends) = encode_log(&records);
        let victim = ((log.len() as f64 - 1.0) * victim_frac) as usize;
        let mut bad = log.clone();
        bad[victim] ^= 1 << bit;

        let (got, stop) = decode_all(&bad, true);
        // The index of the frame holding the flipped byte.
        let damaged_frame = ends.iter().filter(|&&e| e <= victim).count() - 1;
        prop_assert!(
            got.len() <= damaged_frame,
            "decoded {} records but byte {victim} damages frame {damaged_frame}",
            got.len()
        );
        prop_assert_eq!(&got[..], &records[..got.len()]);
        prop_assert!(stop != FrameStop::End, "corruption produced a clean end");
    }

    /// Truncate at every offset: replay returns exactly the whole-frame
    /// prefix, and reports a torn tail iff the cut is mid-frame.
    #[test]
    fn truncation_at_every_offset_stops_at_last_whole_record(
        seed in 0u64..u64::MAX,
        n in 0usize..10,
    ) {
        let records: Vec<WalRecord> =
            (0..n as u64).map(|i| arb_record(seed, i)).collect();
        let (log, ends) = encode_log(&records);
        for cut in 0..=log.len() {
            let (got, stop) = decode_all(&log[..cut], true);
            let whole = ends.iter().filter(|&&e| e <= cut).count() - 1;
            prop_assert_eq!(got.len(), whole, "cut at {}", cut);
            prop_assert_eq!(&got[..], &records[..whole]);
            let at_boundary = ends.contains(&cut);
            prop_assert_eq!(
                stop == FrameStop::End,
                at_boundary,
                "cut at {} boundary={} but stop={:?}",
                cut,
                at_boundary,
                stop
            );
        }
    }

    /// Round trip: what was encoded decodes back exactly, with a clean
    /// end.
    #[test]
    fn round_trip_is_exact(seed in 0u64..u64::MAX, n in 0usize..16) {
        let records: Vec<WalRecord> =
            (0..n as u64).map(|i| arb_record(seed, i)).collect();
        let (log, _) = encode_log(&records);
        let (got, stop) = decode_all(&log, true);
        prop_assert_eq!(got, records);
        prop_assert_eq!(stop, FrameStop::End);
    }
}
