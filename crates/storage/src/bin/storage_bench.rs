//! Durable-tier benchmark: WAL append throughput, recovery latency,
//! run-index build time, and on-disk bytes per key, written to
//! `BENCH_storage.json`.
//!
//! All figures are wall-clock on the running host — compare only within
//! one run (the committed per-PR trajectory), never raw across machines.
//! The workload itself is seeded and deterministic; only the timings
//! vary.
//!
//! Knobs (all optional, all env vars):
//!
//! * `ML4DB_STORAGE_N`     — records appended/replayed (default 100 000)
//! * `ML4DB_STORAGE_BATCH` — records per commit (default 64)
//! * `ML4DB_STORAGE_SEED`  — RNG seed (default 42)

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ml4db_storage::durable::run::{Run, RunEntry, RunIndex};
use ml4db_storage::durable::{
    DurableStore, SimDisk, StoreConfig, Wal, WalConfig, WalRecord,
};
use serde_json::Value;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

fn main() {
    let n = env_u64("ML4DB_STORAGE_N", 100_000);
    let batch = env_u64("ML4DB_STORAGE_BATCH", 64).max(1);
    let seed = env_u64("ML4DB_STORAGE_SEED", 42);
    let mut rng = StdRng::seed_from_u64(seed);

    // --- WAL append + commit throughput (SimDisk: measures the CPU
    // cost of framing/CRC/bookkeeping, not host fsync latency) --------
    let wal_cfg = WalConfig { segment_bytes: 1 << 20, ..WalConfig::default() };
    let mut disk = SimDisk::new();
    let mut wal = Wal::create(&mut disk, wal_cfg).expect("create");
    let records: Vec<(u64, u64)> =
        (0..n).map(|_| (rng.gen::<u64>(), rng.gen::<u64>())).collect();
    let (_, t_append) = time(|| {
        for chunk in records.chunks(batch as usize) {
            for &(key, value) in chunk {
                let seq = wal.alloc_seq();
                wal.append(&mut disk, &WalRecord::Put { seq, key, value }).expect("append");
            }
            let seq = wal.alloc_seq();
            wal.append(&mut disk, &WalRecord::Commit { seq }).expect("append");
            wal.sync(&mut disk).expect("sync");
        }
    });
    let wal_bytes = disk.durable_bytes();

    // --- Recovery: replay the log just written --------------------------
    let ((_, replay), t_recover) =
        time(|| Wal::recover(&mut disk, wal_cfg).expect("recover"));
    assert_eq!(replay.records.len() as u64, n + n.div_ceil(batch));
    black_box(&replay);

    // --- Full store recovery (runs + WAL + gated index rebuild) ---------
    let store_cfg = StoreConfig {
        wal: wal_cfg,
        memtable_limit: (n as usize / 4).max(1024),
    };
    let mut store = DurableStore::create(SimDisk::new(), store_cfg).expect("create");
    for chunk in records.chunks(batch as usize) {
        for &(key, value) in chunk {
            store.put(key, value).expect("put");
        }
        store.commit().expect("commit");
    }
    store.flush().expect("flush");
    let run_bytes: u64 = store.runs().iter().map(Run::file_bytes).sum();
    let run_entries: u64 = store.runs().iter().map(|r| r.len() as u64).sum();
    let medium = store.into_medium();
    let ((reopened, report), t_store_recover) =
        time(|| DurableStore::open(medium, store_cfg).expect("open"));
    assert_eq!(report.runs_rejected, 0);
    assert!(reopened.runs().iter().all(|r| matches!(r.index(), RunIndex::Learned(_))));

    // --- Run-index build (the lifecycle-gated PGM) ----------------------
    let mut entries: Vec<RunEntry> = {
        let mut keys: Vec<u64> = records.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter().map(|key| RunEntry::Put { key, value: key ^ 0xA5 }).collect()
    };
    entries.truncate(n as usize);
    let keys_built = entries.len() as u64;
    let (run, t_index_build) = time(|| Run::assemble(0, entries, 0));
    assert!(matches!(run.index(), RunIndex::Learned(_)), "gate rejected a clean build");

    // --- Probe throughput through the gated index -----------------------
    let probes: Vec<u64> = (0..200_000u64).map(|_| rng.gen::<u64>()).collect();
    let (sum_learned, t_probe) = time(|| {
        let mut sum = 0u64;
        for &k in &probes {
            if let Some(RunEntry::Put { value, .. }) = black_box(run.get(black_box(k))) {
                sum = sum.wrapping_add(value);
            }
        }
        sum
    });
    let (sum_binary, t_probe_binary) = time(|| {
        let mut sum = 0u64;
        for &k in &probes {
            if let Some(RunEntry::Put { value, .. }) = black_box(run.get_unindexed(black_box(k))) {
                sum = sum.wrapping_add(value);
            }
        }
        sum
    });
    assert_eq!(sum_learned, sum_binary, "gated index disagrees with binary search");

    let per_1e5 = 100_000.0 / n as f64;
    let mut o = BTreeMap::new();
    o.insert("bench".into(), Value::String("storage_durable".into()));
    o.insert("n_records".into(), Value::Number(n as f64));
    o.insert("batch".into(), Value::Number(batch as f64));
    o.insert("seed".into(), Value::Number(seed as f64));
    o.insert(
        "wal_append_records_per_sec".into(),
        Value::Number((n as f64 / t_append).round()),
    );
    o.insert(
        "wal_bytes_per_record".into(),
        Value::Number((wal_bytes as f64 / n as f64 * 100.0).round() / 100.0),
    );
    o.insert(
        "wal_recovery_ms_per_100k_records".into(),
        Value::Number((t_recover * 1e3 * per_1e5 * 100.0).round() / 100.0),
    );
    o.insert(
        "store_recovery_ms_per_100k_records".into(),
        Value::Number((t_store_recover * 1e3 * per_1e5 * 100.0).round() / 100.0),
    );
    o.insert(
        "run_index_build_ms".into(),
        Value::Number((t_index_build * 1e3 * 100.0).round() / 100.0),
    );
    o.insert("run_index_keys".into(), Value::Number(keys_built as f64));
    o.insert(
        "run_index_bytes_per_key".into(),
        Value::Number(
            (run.index_bytes() as f64 / keys_built as f64 * 1e4).round() / 1e4,
        ),
    );
    o.insert(
        "run_file_bytes_per_entry".into(),
        Value::Number((run_bytes as f64 / run_entries as f64 * 100.0).round() / 100.0),
    );
    o.insert(
        "run_probe_learned_per_sec".into(),
        Value::Number((probes.len() as f64 / t_probe).round()),
    );
    o.insert(
        "run_probe_binary_search_per_sec".into(),
        Value::Number((probes.len() as f64 / t_probe_binary).round()),
    );
    o.insert(
        "probe_speedup_vs_binary".into(),
        Value::Number((t_probe_binary / t_probe * 100.0).round() / 100.0),
    );
    let json = Value::Object(o).to_string();
    std::fs::write("BENCH_storage.json", format!("{json}\n"))
        .expect("write BENCH_storage.json");
    eprintln!("storage_bench: {json}");
}
