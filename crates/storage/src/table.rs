//! Columnar tables, schemas, and the catalog — the storage layer every
//! query in the workspace executes against.
//!
//! Columns are numeric (`Int` or `Float`): the surveyed ML4DB systems
//! featurize predicates over numeric domains, and synthetic workloads never
//! need more. Rows materialize as `Vec<Value>` during execution.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A column's data type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
}

/// A scalar value flowing through the executor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
}

impl Value {
    /// Numeric view of the value (ints widen to f64).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// Integer view; floats truncate.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
        }
    }

    /// A stable 64-bit hash key for join/group hashing. Floats are keyed by
    /// their bit pattern after normalizing -0.0 to 0.0.
    #[inline]
    pub fn hash_key(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Float(v) => {
                let v = if v == 0.0 { 0.0 } else { v };
                v.to_bits()
            }
        }
    }
}

/// A materialized row.
pub type Row = Vec<Value>;

/// Column definition inside a schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Data type.
    pub dtype: DataType,
}

/// An ordered set of column definitions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Column definitions, in storage order.
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, DataType)]) -> Self {
        Self {
            columns: cols
                .iter()
                .map(|&(name, dtype)| ColumnDef { name: name.to_string(), dtype })
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// Typed column storage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
}

impl ColumnData {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
        }
    }

    /// Numeric value at row `i`.
    #[inline]
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            ColumnData::Int(v) => v[i] as f64,
            ColumnData::Float(v) => v[i],
        }
    }

    /// The declared type of the column.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
        }
    }
}

/// A columnar table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Table name (unique within a catalog).
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// One [`ColumnData`] per schema column, all the same length.
    pub columns: Vec<ColumnData>,
}

impl Table {
    /// Creates a table; validates column count and lengths.
    ///
    /// # Panics
    /// Panics if the columns don't match the schema or have ragged lengths.
    pub fn new(name: &str, schema: Schema, columns: Vec<ColumnData>) -> Self {
        assert_eq!(schema.arity(), columns.len(), "table {name}: column count mismatch");
        for (def, col) in schema.columns.iter().zip(&columns) {
            assert_eq!(def.dtype, col.dtype(), "table {name}: column {} type mismatch", def.name);
        }
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "table {name}: ragged columns"
            );
        }
        Self { name: name.to_string(), schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.schema.column_index(name).map(|i| &self.columns[i])
    }

    /// Approximate bytes of data (8 bytes per value).
    pub fn data_bytes(&self) -> usize {
        self.num_rows() * self.schema.arity() * 8
    }
}

/// A named collection of tables — the "database instance" the experiments
/// run against.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over the tables.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        Table::new(
            "t",
            Schema::new(&[("id", DataType::Int), ("score", DataType::Float)]),
            vec![
                ColumnData::Int(vec![1, 2, 3]),
                ColumnData::Float(vec![0.5, 1.5, 2.5]),
            ],
        )
    }

    #[test]
    fn table_row_access() {
        let t = small_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(1), vec![Value::Int(2), Value::Float(1.5)]);
        assert_eq!(t.column("score").unwrap().get_f64(2), 2.5);
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        Table::new(
            "bad",
            Schema::new(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![ColumnData::Int(vec![1]), ColumnData::Int(vec![1, 2])],
        );
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_rejected() {
        Table::new(
            "bad",
            Schema::new(&[("a", DataType::Float)]),
            vec![ColumnData::Int(vec![1])],
        );
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        c.add_table(small_table());
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().num_rows(), 3);
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn value_hash_key_normalizes_zero() {
        assert_eq!(Value::Float(0.0).hash_key(), Value::Float(-0.0).hash_key());
        assert_ne!(Value::Int(1).hash_key(), Value::Int(2).hash_key());
    }
}
