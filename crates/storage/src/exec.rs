//! Physical operators with instrumented execution statistics and a
//! deterministic simulated-latency model.
//!
//! Substitution note (see DESIGN.md): the surveyed systems observe real
//! query latencies from PostgreSQL or production engines. Here every
//! operator counts the work it does (tuples, comparisons, hash builds and
//! probes, simulated page reads, sort operations) and latency is a fixed
//! weighted sum of those counters ([`TRUE_WEIGHTS`]). The weights are the
//! environment's ground truth: the formula cost model in `ml4db-plan` has
//! its *own* tunable parameters, and recovering the true weights from
//! observed latencies is exactly ParamTree's learning problem (E11).

use serde::{Deserialize, Serialize};

use crate::table::{Row, Table, Value};

/// Rows per simulated disk page.
pub const ROWS_PER_PAGE: u64 = 64;

/// Simulated B+Tree descent cost in random pages for an index over `n`
/// rows: one page per level of a fanout-16 tree, `ceil(log2(n)/4) + 1`.
///
/// This is the single source of truth shared by the executor
/// ([`index_scan`]) and the formula cost model in `ml4db-plan`; the
/// differential oracle asserts the two sides cannot drift apart.
pub fn index_descent_pages(n: u64) -> u64 {
    ((n.max(2) as f64).log2() / 4.0).ceil() as u64 + 1
}

/// Work counters accumulated by every operator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Rows produced.
    pub rows_out: u64,
    /// Tuples touched (CPU per-tuple work).
    pub tuples: u64,
    /// Predicate/key comparisons.
    pub comparisons: u64,
    /// Hash-table insertions.
    pub hash_builds: u64,
    /// Hash-table probes.
    pub hash_probes: u64,
    /// Simulated sequential page reads.
    pub pages_read: u64,
    /// Simulated random page reads (index traversals).
    pub random_pages: u64,
    /// Sort comparisons (n log n accounted).
    pub sort_ops: u64,
}

impl ExecStats {
    /// Accumulates another operator's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_out = other.rows_out; // the last operator defines output
        self.tuples += other.tuples;
        self.comparisons += other.comparisons;
        self.hash_builds += other.hash_builds;
        self.hash_probes += other.hash_probes;
        self.pages_read += other.pages_read;
        self.random_pages += other.random_pages;
        self.sort_ops += other.sort_ops;
    }

    /// Simulated latency in microseconds under the given weights.
    pub fn latency_us(&self, w: &CostWeights) -> f64 {
        self.tuples as f64 * w.cpu_tuple
            + self.comparisons as f64 * w.cpu_compare
            + self.hash_builds as f64 * w.hash_build
            + self.hash_probes as f64 * w.hash_probe
            + self.pages_read as f64 * w.seq_page
            + self.random_pages as f64 * w.random_page
            + self.sort_ops as f64 * w.sort_op
    }
}

/// Per-unit work weights (microseconds per unit).
///
/// These are the **R-params** of the tutorial's ParamTree discussion \[50\]:
/// PostgreSQL exposes the same knobs as `seq_page_cost`,
/// `random_page_cost`, `cpu_tuple_cost`, ... The executor uses
/// [`TRUE_WEIGHTS`]; cost models start from [`CostWeights::postgres_defaults`]
/// (deliberately mis-calibrated, as in real deployments) and ParamTree
/// learns the truth from observed latencies.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Cost per sequential page read.
    pub seq_page: f64,
    /// Cost per random page read.
    pub random_page: f64,
    /// Cost per tuple of CPU work.
    pub cpu_tuple: f64,
    /// Cost per comparison.
    pub cpu_compare: f64,
    /// Cost per hash-table insertion.
    pub hash_build: f64,
    /// Cost per hash-table probe.
    pub hash_probe: f64,
    /// Cost per sort comparison.
    pub sort_op: f64,
}

impl CostWeights {
    /// PostgreSQL-flavored default ratios (the mis-calibrated starting
    /// point a DBA ships with).
    pub fn postgres_defaults() -> Self {
        Self {
            seq_page: 1.0,
            random_page: 4.0,
            cpu_tuple: 0.01,
            cpu_compare: 0.005,
            hash_build: 0.02,
            hash_probe: 0.01,
            sort_op: 0.01,
        }
    }
}

/// The environment's ground-truth weights (µs per unit). Note the ratios
/// differ from the defaults: random pages are comparatively cheaper (fast
/// storage) and hashing comparatively more expensive, which is what a tuned
/// cost model must discover.
pub const TRUE_WEIGHTS: CostWeights = CostWeights {
    seq_page: 2.0,
    random_page: 3.0,
    cpu_tuple: 0.02,
    cpu_compare: 0.004,
    hash_build: 0.08,
    hash_probe: 0.03,
    sort_op: 0.02,
};

/// Comparison operator of a base-table predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

/// A predicate `column <op> value` over a row layout.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Column offset within the row.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Comparison constant.
    pub value: f64,
}

impl Predicate {
    /// Evaluates the predicate against a row.
    #[inline]
    pub fn eval(&self, row: &[Value]) -> bool {
        let v = row[self.column].as_f64();
        match self.op {
            CmpOp::Eq => v == self.value,
            CmpOp::Lt => v < self.value,
            CmpOp::Le => v <= self.value,
            CmpOp::Gt => v > self.value,
            CmpOp::Ge => v >= self.value,
        }
    }
}

/// Reports one physical-operator invocation to the observability sink:
/// coarse call/row counters per operator, merged associatively across
/// worker shards.
fn observe_op(op: &'static str, rows_out: u64) {
    ml4db_obs::counter_add(op, 1);
    ml4db_obs::histogram_observe("exec.rows_out", rows_out as f64);
}

/// Sequential scan with pushed-down predicates.
pub fn seq_scan(table: &Table, predicates: &[Predicate]) -> (Vec<Row>, ExecStats) {
    let n = table.num_rows();
    let mut out = Vec::new();
    let mut stats = ExecStats {
        tuples: n as u64,
        pages_read: (n as u64).div_ceil(ROWS_PER_PAGE),
        comparisons: 0,
        ..Default::default()
    };
    for i in 0..n {
        let row = table.row(i);
        let mut keep = true;
        for p in predicates {
            stats.comparisons += 1;
            if !p.eval(&row) {
                keep = false;
                break;
            }
        }
        if keep {
            out.push(row);
        }
    }
    stats.rows_out = out.len() as u64;
    observe_op("exec.seq_scan.calls", stats.rows_out);
    (out, stats)
}

/// Index scan: returns rows whose `column` value lies in `[lo, hi]`,
/// assuming an ordered auxiliary index exists (the caller guarantees it).
///
/// Cost model: one random page per index level plus one random page per
/// matching `ROWS_PER_PAGE` rows (unclustered access), plus per-tuple CPU
/// for the matches and residual predicate evaluation.
pub fn index_scan(
    table: &Table,
    column: usize,
    lo: f64,
    hi: f64,
    residual: &[Predicate],
) -> (Vec<Row>, ExecStats) {
    let n = table.num_rows();
    let col = &table.columns[column];
    let mut out = Vec::new();
    let mut stats = ExecStats::default();
    // Simulated B+Tree descent.
    stats.random_pages += index_descent_pages(n as u64);
    for i in 0..n {
        let v = col.get_f64(i);
        if v >= lo && v <= hi {
            stats.tuples += 1;
            let row = table.row(i);
            let mut keep = true;
            for p in residual {
                stats.comparisons += 1;
                if !p.eval(&row) {
                    keep = false;
                    break;
                }
            }
            if keep {
                out.push(row);
            }
        }
    }
    stats.random_pages += (stats.tuples).div_ceil(ROWS_PER_PAGE);
    stats.rows_out = out.len() as u64;
    observe_op("exec.index_scan.calls", stats.rows_out);
    (out, stats)
}

/// Index scan served by a learned [`SecondaryIndex`](crate::lindex::SecondaryIndex)
/// instead of the full-column sweep in [`index_scan`].
///
/// Produces byte-identical `(rows, stats)` to [`index_scan`] on the same
/// inputs — the simulated cost model (descent pages, matching-tuple pages,
/// residual comparisons) describes the *physical plan*, which is unchanged;
/// only the in-process probe work differs. Rows come out in ascending
/// row-id order, same as the sweep.
///
/// Equality probes (`lo == hi`) run allocation-free: the index returns a
/// borrowed, already-ascending row-id run. Range probes copy the matching
/// run once to restore row-id order (the postings are grouped by key).
pub fn index_scan_learned(
    table: &Table,
    lo: f64,
    hi: f64,
    residual: &[Predicate],
    sidx: &crate::lindex::SecondaryIndex,
) -> (Vec<Row>, ExecStats) {
    let n = table.num_rows();
    let mut out = Vec::new();
    let mut stats = ExecStats::default();
    // Same simulated B+Tree descent as the sweep path.
    stats.random_pages += index_descent_pages(n as u64);

    let mut emit = |i: usize, stats: &mut ExecStats| {
        stats.tuples += 1;
        let row = table.row(i);
        let mut keep = true;
        for p in residual {
            stats.comparisons += 1;
            if !p.eval(&row) {
                keep = false;
                break;
            }
        }
        if keep {
            out.push(row);
        }
    };

    if lo == hi {
        // Equality fast path: borrowed ascending run, no allocation.
        for &rid in sidx.probe_eq(lo) {
            emit(rid as usize, &mut stats);
        }
    } else {
        let matched = sidx.range_rows(lo, hi);
        // The run is grouped by key; one copy + sort restores row-id order.
        let mut rids: Vec<u32> = matched.to_vec();
        rids.sort_unstable();
        for &rid in &rids {
            emit(rid as usize, &mut stats);
        }
    }

    stats.random_pages += (stats.tuples).div_ceil(ROWS_PER_PAGE);
    stats.rows_out = out.len() as u64;
    ml4db_obs::counter_add("exec.index_scan.learned", 1);
    observe_op("exec.index_scan.calls", stats.rows_out);
    (out, stats)
}

/// Nested-loop equi-join: compares every pair.
pub fn nested_loop_join(
    left: &[Row],
    right: &[Row],
    left_col: usize,
    right_col: usize,
) -> (Vec<Row>, ExecStats) {
    let mut out = Vec::new();
    let mut stats = ExecStats {
        comparisons: (left.len() * right.len()) as u64,
        tuples: (left.len() + right.len()) as u64,
        ..Default::default()
    };
    for l in left {
        let lk = l[left_col].hash_key();
        for r in right {
            if lk == r[right_col].hash_key() {
                let mut row = l.clone();
                row.extend_from_slice(r);
                out.push(row);
            }
        }
    }
    stats.rows_out = out.len() as u64;
    stats.tuples += out.len() as u64;
    observe_op("exec.nested_loop_join.calls", stats.rows_out);
    (out, stats)
}

/// Hash equi-join: builds on the right input, probes with the left.
pub fn hash_join(
    left: &[Row],
    right: &[Row],
    left_col: usize,
    right_col: usize,
) -> (Vec<Row>, ExecStats) {
    let mut table: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, r) in right.iter().enumerate() {
        table.entry(r[right_col].hash_key()).or_default().push(i);
    }
    let mut out = Vec::new();
    for l in left {
        if let Some(matches) = table.get(&l[left_col].hash_key()) {
            for &ri in matches {
                let mut row = l.clone();
                row.extend_from_slice(&right[ri]);
                out.push(row);
            }
        }
    }
    let stats = ExecStats {
        hash_builds: right.len() as u64,
        hash_probes: left.len() as u64,
        tuples: (left.len() + right.len() + out.len()) as u64,
        rows_out: out.len() as u64,
        ..Default::default()
    };
    observe_op("exec.hash_join.calls", stats.rows_out);
    (out, stats)
}

/// Sort-merge equi-join.
pub fn sort_merge_join(
    left: &[Row],
    right: &[Row],
    left_col: usize,
    right_col: usize,
) -> (Vec<Row>, ExecStats) {
    let nlogn = |n: usize| -> u64 {
        if n <= 1 {
            n as u64
        } else {
            (n as f64 * (n as f64).log2()).ceil() as u64
        }
    };
    let mut l_sorted: Vec<&Row> = left.iter().collect();
    let mut r_sorted: Vec<&Row> = right.iter().collect();
    l_sorted.sort_by(|a, b| {
        a[left_col]
            .as_f64()
            .partial_cmp(&b[left_col].as_f64())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    r_sorted.sort_by(|a, b| {
        a[right_col]
            .as_f64()
            .partial_cmp(&b[right_col].as_f64())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = Vec::new();
    let mut comparisons = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < l_sorted.len() && j < r_sorted.len() {
        comparisons += 1;
        let lk = l_sorted[i][left_col].as_f64();
        let rk = r_sorted[j][right_col].as_f64();
        if lk < rk {
            i += 1;
        } else if lk > rk {
            j += 1;
        } else {
            // Emit the cross product of the equal runs.
            let mut j_end = j;
            while j_end < r_sorted.len() && r_sorted[j_end][right_col].as_f64() == lk {
                j_end += 1;
            }
            let mut i_run = i;
            while i_run < l_sorted.len() && l_sorted[i_run][left_col].as_f64() == lk {
                for r in &r_sorted[j..j_end] {
                    let mut row = l_sorted[i_run].clone();
                    row.extend_from_slice(r);
                    out.push(row);
                }
                i_run += 1;
            }
            i = i_run;
            j = j_end;
        }
    }
    let stats = ExecStats {
        sort_ops: nlogn(left.len()) + nlogn(right.len()),
        comparisons,
        tuples: (left.len() + right.len() + out.len()) as u64,
        rows_out: out.len() as u64,
        ..Default::default()
    };
    observe_op("exec.sort_merge_join.calls", stats.rows_out);
    (out, stats)
}

/// Filters materialized rows.
pub fn filter(rows: Vec<Row>, predicates: &[Predicate]) -> (Vec<Row>, ExecStats) {
    let mut stats = ExecStats { tuples: rows.len() as u64, ..Default::default() };
    let out: Vec<Row> = rows
        .into_iter()
        .filter(|row| {
            predicates.iter().all(|p| {
                stats.comparisons += 1;
                p.eval(row)
            })
        })
        .collect();
    stats.rows_out = out.len() as u64;
    (out, stats)
}

/// Hash aggregation: COUNT(*) per group key (or global count when
/// `group_col` is `None`). Returns `[group_key?, count]` rows.
pub fn hash_aggregate(rows: &[Row], group_col: Option<usize>) -> (Vec<Row>, ExecStats) {
    let mut stats = ExecStats {
        tuples: rows.len() as u64,
        hash_builds: rows.len() as u64,
        ..Default::default()
    };
    let out = match group_col {
        None => vec![vec![Value::Int(rows.len() as i64)]],
        Some(c) => {
            let mut groups: std::collections::BTreeMap<u64, (Value, i64)> =
                std::collections::BTreeMap::new();
            for r in rows {
                let e = groups.entry(r[c].hash_key()).or_insert((r[c], 0));
                e.1 += 1;
            }
            groups.into_values().map(|(v, c)| vec![v, Value::Int(c)]).collect()
        }
    };
    stats.rows_out = out.len() as u64;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnData, DataType, Schema};
    use proptest::prelude::*;

    fn table_ab() -> Table {
        Table::new(
            "t",
            Schema::new(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![
                ColumnData::Int((0..100).collect()),
                ColumnData::Int((0..100).map(|i| i % 10).collect()),
            ],
        )
    }

    #[test]
    fn seq_scan_filters() {
        let t = table_ab();
        let (rows, stats) = seq_scan(
            &t,
            &[Predicate { column: 1, op: CmpOp::Eq, value: 3.0 }],
        );
        assert_eq!(rows.len(), 10);
        assert_eq!(stats.rows_out, 10);
        assert_eq!(stats.tuples, 100);
        assert!(stats.pages_read >= 1);
    }

    #[test]
    fn index_scan_matches_seq_scan() {
        // Large table, selective range: the regime where an index scan wins.
        let t = Table::new(
            "big",
            Schema::new(&[("a", DataType::Int)]),
            vec![ColumnData::Int((0..20_000).collect())],
        );
        let (idx_rows, idx_stats) = index_scan(&t, 0, 20.0, 30.0, &[]);
        let (seq_rows, seq_stats) = seq_scan(
            &t,
            &[
                Predicate { column: 0, op: CmpOp::Ge, value: 20.0 },
                Predicate { column: 0, op: CmpOp::Le, value: 30.0 },
            ],
        );
        assert_eq!(idx_rows, seq_rows);
        // Selective index scan should cost less than the full scan under
        // the true weights.
        assert!(
            idx_stats.latency_us(&TRUE_WEIGHTS) < seq_stats.latency_us(&TRUE_WEIGHTS),
            "index {} !< seq {}",
            idx_stats.latency_us(&TRUE_WEIGHTS),
            seq_stats.latency_us(&TRUE_WEIGHTS)
        );
    }

    #[test]
    fn learned_index_scan_is_byte_identical_to_sweep() {
        // Duplicated, non-monotone column so equality runs and residual
        // short-circuits are exercised.
        let t = Table::new(
            "t",
            Schema::new(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![
                ColumnData::Int((0..10_000).map(|i| (i * 37) % 997).collect()),
                ColumnData::Int((0..10_000).map(|i| i % 10).collect()),
            ],
        );
        let sidx = crate::lindex::SecondaryIndex::build(&t.columns[0]);
        let residuals: [&[Predicate]; 2] = [
            &[],
            &[
                Predicate { column: 1, op: CmpOp::Ge, value: 3.0 },
                Predicate { column: 1, op: CmpOp::Lt, value: 7.0 },
            ],
        ];
        let ranges = [
            (100.0, 300.0), // range
            (42.0, 42.0),   // equality (multi-row run)
            (996.5, 996.5), // equality, absent key
            (2000.0, 3000.0), // above all keys
            (300.0, 100.0), // empty range
        ];
        for residual in residuals {
            for (lo, hi) in ranges {
                let (sweep_rows, sweep_stats) = index_scan(&t, 0, lo, hi, residual);
                let (learn_rows, learn_stats) =
                    index_scan_learned(&t, lo, hi, residual, &sidx);
                assert_eq!(learn_rows, sweep_rows, "rows differ for [{lo}, {hi}]");
                assert_eq!(learn_stats, sweep_stats, "stats differ for [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn joins_agree() {
        let left: Vec<Row> = (0..50).map(|i| vec![Value::Int(i % 7), Value::Int(i)]).collect();
        let right: Vec<Row> = (0..30).map(|i| vec![Value::Int(i % 5), Value::Int(i)]).collect();
        let (nl, _) = nested_loop_join(&left, &right, 0, 0);
        let (mut hj, _) = hash_join(&left, &right, 0, 0);
        let (mut smj, _) = sort_merge_join(&left, &right, 0, 0);
        let key = |r: &Row| (r[1].as_i64(), r[3].as_i64());
        let mut nl_sorted = nl.clone();
        nl_sorted.sort_by_key(|r| key(r));
        hj.sort_by_key(|r| key(r));
        smj.sort_by_key(|r| key(r));
        assert_eq!(nl_sorted, hj, "hash join disagrees with nested loop");
        assert_eq!(nl_sorted, smj, "merge join disagrees with nested loop");
    }

    #[test]
    fn join_cost_shapes() {
        // Large x large: nested loop must be far more expensive than hash.
        let left: Vec<Row> = (0..500).map(|i| vec![Value::Int(i % 50)]).collect();
        let right: Vec<Row> = (0..500).map(|i| vec![Value::Int(i % 50)]).collect();
        let (_, nl) = nested_loop_join(&left, &right, 0, 0);
        let (_, hj) = hash_join(&left, &right, 0, 0);
        assert!(nl.latency_us(&TRUE_WEIGHTS) > 5.0 * hj.latency_us(&TRUE_WEIGHTS));
        // Tiny inner: nested loop can win (no build cost).
        let tiny: Vec<Row> = vec![vec![Value::Int(1)]];
        let (_, nl2) = nested_loop_join(&tiny, &tiny, 0, 0);
        let (_, hj2) = hash_join(&tiny, &tiny, 0, 0);
        assert!(nl2.latency_us(&TRUE_WEIGHTS) <= hj2.latency_us(&TRUE_WEIGHTS));
    }

    #[test]
    fn aggregate_counts() {
        let rows: Vec<Row> = (0..20).map(|i| vec![Value::Int(i % 4)]).collect();
        let (groups, _) = hash_aggregate(&rows, Some(0));
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g[1], Value::Int(5));
        }
        let (global, _) = hash_aggregate(&rows, None);
        assert_eq!(global, vec![vec![Value::Int(20)]]);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats { tuples: 10, rows_out: 5, ..Default::default() };
        let b = ExecStats { tuples: 7, rows_out: 3, comparisons: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.tuples, 17);
        assert_eq!(a.comparisons, 2);
        assert_eq!(a.rows_out, 3, "rows_out reflects the downstream operator");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// All three join algorithms produce identical multisets of rows.
        #[test]
        fn join_equivalence(
            lkeys in proptest::collection::vec(0i64..20, 0..60),
            rkeys in proptest::collection::vec(0i64..20, 0..60),
        ) {
            let left: Vec<Row> = lkeys.iter().enumerate()
                .map(|(i, &k)| vec![Value::Int(k), Value::Int(i as i64)]).collect();
            let right: Vec<Row> = rkeys.iter().enumerate()
                .map(|(i, &k)| vec![Value::Int(k), Value::Int(1000 + i as i64)]).collect();
            let sort_key = |r: &Row| (r[1].as_i64(), r[3].as_i64());
            let (mut nl, _) = nested_loop_join(&left, &right, 0, 0);
            let (mut hj, _) = hash_join(&left, &right, 0, 0);
            let (mut smj, _) = sort_merge_join(&left, &right, 0, 0);
            nl.sort_by_key(sort_key);
            hj.sort_by_key(sort_key);
            smj.sort_by_key(sort_key);
            prop_assert_eq!(&nl, &hj);
            prop_assert_eq!(&nl, &smj);
        }
    }
}
