//! Synthetic dataset generators.
//!
//! Substitution note (DESIGN.md): the surveyed papers evaluate on IMDB/JOB
//! and TPC-H. We generate schema-compatible stand-ins — `joblite`, a movie
//! star schema with Zipf-skewed and *correlated* columns (the properties
//! that break independence-assumption estimators), and `tpchlite`, an
//! orders/lineitem chain — with controllable size and skew.

use rand::Rng;
use rand_distr::{Distribution, Zipf};

use crate::table::{Catalog, ColumnData, DataType, Schema, Table};

/// Scale and skew knobs for the generators.
#[derive(Clone, Copy, Debug)]
pub struct DatasetConfig {
    /// Base row scale; fact tables get multiples of this.
    pub base_rows: usize,
    /// Zipf skew exponent for categorical columns (0.0 = uniform).
    pub skew: f64,
    /// Strength of cross-column correlation in `[0, 1]`.
    pub correlation: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self { base_rows: 2000, skew: 1.1, correlation: 0.6 }
    }
}

fn zipf_column<R: Rng + ?Sized>(n: usize, domain: u64, skew: f64, rng: &mut R) -> Vec<i64> {
    if skew <= 0.01 {
        return (0..n).map(|_| rng.gen_range(0..domain as i64)).collect();
    }
    let z = Zipf::new(domain, skew).expect("valid zipf");
    (0..n).map(|_| z.sample(rng) as i64 - 1).collect()
}

/// The `joblite` star schema:
///
/// * `title(id, kind, year, votes)` — dimension with skewed `kind`,
///   `year` correlated with `votes`.
/// * `cast_info(movie_id, person_id, role)` — fact, ~5x base rows,
///   movie popularity Zipf-skewed.
/// * `movie_info(movie_id, info_type, score)` — fact, ~3x base rows;
///   `info_type` correlated with `score`.
/// * `person(id, gender, age)` — dimension.
/// * `company(id, country)` and `movie_companies(movie_id, company_id)`.
pub fn joblite<R: Rng + ?Sized>(cfg: &DatasetConfig, rng: &mut R) -> Catalog {
    let mut catalog = Catalog::new();
    let n_titles = cfg.base_rows;
    let n_people = cfg.base_rows / 2;
    let n_companies = (cfg.base_rows / 20).max(10);

    // title
    let kinds = zipf_column(n_titles, 7, cfg.skew, rng);
    let years: Vec<i64> = (0..n_titles).map(|_| rng.gen_range(1950..2024)).collect();
    let votes: Vec<i64> = years
        .iter()
        .map(|&y| {
            // Correlation: newer titles get more votes.
            let base = ((y - 1950) as f64 / 74.0 * cfg.correlation
                + rng.gen::<f64>() * (1.0 - cfg.correlation))
                * 10_000.0;
            base as i64 + rng.gen_range(0..100)
        })
        .collect();
    catalog.add_table(Table::new(
        "title",
        Schema::new(&[
            ("id", DataType::Int),
            ("kind", DataType::Int),
            ("year", DataType::Int),
            ("votes", DataType::Int),
        ]),
        vec![
            ColumnData::Int((0..n_titles as i64).collect()),
            ColumnData::Int(kinds),
            ColumnData::Int(years),
            ColumnData::Int(votes),
        ],
    ));

    // person
    let genders = zipf_column(n_people, 3, cfg.skew * 0.5, rng);
    let ages: Vec<i64> = (0..n_people).map(|_| rng.gen_range(18..90)).collect();
    catalog.add_table(Table::new(
        "person",
        Schema::new(&[("id", DataType::Int), ("gender", DataType::Int), ("age", DataType::Int)]),
        vec![
            ColumnData::Int((0..n_people as i64).collect()),
            ColumnData::Int(genders),
            ColumnData::Int(ages),
        ],
    ));

    // cast_info: popular movies appear much more often (Zipf over titles).
    let n_cast = cfg.base_rows * 5;
    let movie_ids = zipf_column(n_cast, n_titles as u64, cfg.skew, rng);
    let person_ids: Vec<i64> = (0..n_cast).map(|_| rng.gen_range(0..n_people as i64)).collect();
    let roles = zipf_column(n_cast, 12, cfg.skew, rng);
    catalog.add_table(Table::new(
        "cast_info",
        Schema::new(&[
            ("movie_id", DataType::Int),
            ("person_id", DataType::Int),
            ("role", DataType::Int),
        ]),
        vec![ColumnData::Int(movie_ids), ColumnData::Int(person_ids), ColumnData::Int(roles)],
    ));

    // movie_info: info_type correlated with score.
    let n_info = cfg.base_rows * 3;
    let info_movie_ids = zipf_column(n_info, n_titles as u64, cfg.skew, rng);
    let info_types = zipf_column(n_info, 10, cfg.skew * 0.8, rng);
    let scores: Vec<f64> = info_types
        .iter()
        .map(|&t| {
            let mean = t as f64 / 10.0 * cfg.correlation;
            (mean + rng.gen::<f64>() * (1.0 - cfg.correlation)).clamp(0.0, 1.0) * 10.0
        })
        .collect();
    catalog.add_table(Table::new(
        "movie_info",
        Schema::new(&[
            ("movie_id", DataType::Int),
            ("info_type", DataType::Int),
            ("score", DataType::Float),
        ]),
        vec![
            ColumnData::Int(info_movie_ids),
            ColumnData::Int(info_types),
            ColumnData::Float(scores),
        ],
    ));

    // company + movie_companies
    let countries = zipf_column(n_companies, 25, cfg.skew, rng);
    catalog.add_table(Table::new(
        "company",
        Schema::new(&[("id", DataType::Int), ("country", DataType::Int)]),
        vec![ColumnData::Int((0..n_companies as i64).collect()), ColumnData::Int(countries)],
    ));
    let n_mc = cfg.base_rows * 2;
    catalog.add_table(Table::new(
        "movie_companies",
        Schema::new(&[("movie_id", DataType::Int), ("company_id", DataType::Int)]),
        vec![
            ColumnData::Int(zipf_column(n_mc, n_titles as u64, cfg.skew, rng)),
            ColumnData::Int(zipf_column(n_mc, n_companies as u64, cfg.skew, rng)),
        ],
    ));
    catalog
}

/// The `tpchlite` schema: `customer → orders → lineitem` plus `nation`.
pub fn tpchlite<R: Rng + ?Sized>(cfg: &DatasetConfig, rng: &mut R) -> Catalog {
    let mut catalog = Catalog::new();
    let n_cust = cfg.base_rows;
    let n_orders = cfg.base_rows * 3;
    let n_items = cfg.base_rows * 10;
    let n_nations = 25;

    catalog.add_table(Table::new(
        "nation",
        Schema::new(&[("id", DataType::Int), ("region", DataType::Int)]),
        vec![
            ColumnData::Int((0..n_nations as i64).collect()),
            ColumnData::Int((0..n_nations).map(|i| (i % 5) as i64).collect()),
        ],
    ));

    let nations = zipf_column(n_cust, n_nations as u64, cfg.skew, rng);
    let balances: Vec<f64> = (0..n_cust).map(|_| rng.gen_range(-1000.0..10_000.0)).collect();
    catalog.add_table(Table::new(
        "customer",
        Schema::new(&[
            ("id", DataType::Int),
            ("nation_id", DataType::Int),
            ("balance", DataType::Float),
        ]),
        vec![
            ColumnData::Int((0..n_cust as i64).collect()),
            ColumnData::Int(nations),
            ColumnData::Float(balances),
        ],
    ));

    let cust_ids = zipf_column(n_orders, n_cust as u64, cfg.skew, rng);
    let dates: Vec<i64> = (0..n_orders).map(|_| rng.gen_range(0..2556)).collect();
    let priorities: Vec<i64> = dates
        .iter()
        .map(|&d| {
            // Correlation: later orders skew toward high priority.
            if rng.gen::<f64>() < cfg.correlation * d as f64 / 2556.0 {
                rng.gen_range(3..5)
            } else {
                rng.gen_range(0..3)
            }
        })
        .collect();
    catalog.add_table(Table::new(
        "orders",
        Schema::new(&[
            ("id", DataType::Int),
            ("cust_id", DataType::Int),
            ("date", DataType::Int),
            ("priority", DataType::Int),
        ]),
        vec![
            ColumnData::Int((0..n_orders as i64).collect()),
            ColumnData::Int(cust_ids),
            ColumnData::Int(dates),
            ColumnData::Int(priorities),
        ],
    ));

    let order_ids = zipf_column(n_items, n_orders as u64, cfg.skew * 0.6, rng);
    let qtys: Vec<i64> = (0..n_items).map(|_| rng.gen_range(1..51)).collect();
    let prices: Vec<f64> = qtys.iter().map(|&q| q as f64 * rng.gen_range(5.0..100.0)).collect();
    let discounts: Vec<f64> = (0..n_items).map(|_| rng.gen_range(0.0..0.1)).collect();
    catalog.add_table(Table::new(
        "lineitem",
        Schema::new(&[
            ("order_id", DataType::Int),
            ("qty", DataType::Int),
            ("price", DataType::Float),
            ("discount", DataType::Float),
        ]),
        vec![
            ColumnData::Int(order_ids),
            ColumnData::Int(qtys),
            ColumnData::Float(prices),
            ColumnData::Float(discounts),
        ],
    ));
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn joblite_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DatasetConfig { base_rows: 500, ..Default::default() };
        let cat = joblite(&cfg, &mut rng);
        assert_eq!(cat.len(), 6);
        assert_eq!(cat.table("title").unwrap().num_rows(), 500);
        assert_eq!(cat.table("cast_info").unwrap().num_rows(), 2500);
        // Foreign keys stay in range.
        let ci = cat.table("cast_info").unwrap();
        let col = ci.column("movie_id").unwrap();
        for i in 0..ci.num_rows() {
            let v = col.get_f64(i);
            assert!(v >= 0.0 && v < 500.0, "fk out of range: {v}");
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals = zipf_column(10_000, 1000, 1.3, &mut rng);
        let top = vals.iter().filter(|&&v| v < 10).count();
        assert!(
            top > 3000,
            "top-10 values hold {top}/10000 rows; expected heavy skew"
        );
    }

    #[test]
    fn correlation_knob_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let strong = joblite(
            &DatasetConfig { base_rows: 2000, skew: 0.0, correlation: 0.95 },
            &mut rng,
        );
        let t = strong.table("title").unwrap();
        let years: Vec<f64> =
            (0..t.num_rows()).map(|i| t.column("year").unwrap().get_f64(i)).collect();
        let votes: Vec<f64> =
            (0..t.num_rows()).map(|i| t.column("votes").unwrap().get_f64(i)).collect();
        let corr = ml4db_nn::metrics::pearson(&years, &votes);
        assert!(corr > 0.7, "year↔votes correlation too weak: {corr}");
    }

    #[test]
    fn tpchlite_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let cat = tpchlite(&DatasetConfig { base_rows: 300, ..Default::default() }, &mut rng);
        assert_eq!(cat.len(), 4);
        assert_eq!(cat.table("lineitem").unwrap().num_rows(), 3000);
    }
}
