//! # ml4db-storage — the relational engine substrate
//!
//! Every surveyed ML4DB system interacts with a DBMS through tables,
//! statistics, physical operators, and observed latencies. This crate is
//! that DBMS stand-in: columnar [`table::Table`]s in a [`table::Catalog`],
//! PostgreSQL-style [`stats`] (equi-depth histograms, MCVs, samples),
//! instrumented physical operators in [`exec`] with a deterministic
//! simulated-latency model, and synthetic [`datasets`] (`joblite`,
//! `tpchlite`) with controllable skew and correlation.
//!
//! [`Database`] bundles a catalog with its statistics and secondary indexes
//! and is the object the planner (`ml4db-plan`) and all learned components
//! operate on.

#![warn(missing_docs)]

pub mod datasets;
pub mod durable;
pub mod exec;
pub mod lindex;
pub mod stats;
pub mod table;

use std::collections::BTreeMap;

use rand::Rng;

pub use exec::{CmpOp, CostWeights, ExecStats, Predicate, TRUE_WEIGHTS};
pub use table::{Catalog, ColumnData, DataType, Row, Schema, Table, Value};

/// A catalog plus its statistics and declared secondary indexes — the
/// "database instance" handed to planners and learned components.
#[derive(Clone, Debug)]
pub struct Database {
    /// The tables.
    pub catalog: Catalog,
    /// Per-table statistics (ANALYZE output).
    pub stats: BTreeMap<String, stats::TableStats>,
    /// Columns with a secondary index, as `(table, column)` pairs. Index
    /// scans are only legal on these.
    pub indexes: Vec<(String, String)>,
    /// Built learned secondary indexes, keyed by `(table, column)`.
    secondary: BTreeMap<(String, String), lindex::SecondaryIndex>,
}

impl Database {
    /// Builds a database from a catalog, computing statistics for every
    /// table (the `ANALYZE` step).
    pub fn analyze<R: Rng + ?Sized>(catalog: Catalog, rng: &mut R) -> Self {
        let stats = catalog
            .iter()
            .map(|t| (t.name.clone(), stats::TableStats::build(t, rng)))
            .collect();
        Self { catalog, stats, indexes: Vec::new(), secondary: BTreeMap::new() }
    }

    /// Declares a secondary index on `table.column`.
    ///
    /// # Panics
    /// Panics if the table or column does not exist.
    pub fn add_index(&mut self, table: &str, column: &str) {
        let t = self.catalog.table(table).unwrap_or_else(|| panic!("no table {table}"));
        let ci = t
            .schema
            .column_index(column)
            .unwrap_or_else(|| panic!("no column {column} on table {table}"));
        let key = (table.to_string(), column.to_string());
        if !self.indexes.contains(&key) {
            let built = lindex::SecondaryIndex::build(&t.columns[ci]);
            self.indexes.push(key.clone());
            self.secondary.insert(key, built);
        }
    }

    /// True if `table.column` has a secondary index.
    pub fn has_index(&self, table: &str, column: &str) -> bool {
        self.indexes.iter().any(|(t, c)| t == table && c == column)
    }

    /// The built learned secondary index on `table.column`, if declared.
    pub fn secondary_index(&self, table: &str, column: &str) -> Option<&lindex::SecondaryIndex> {
        // Keyed lookup without allocating: the map is small, scan it.
        self.secondary
            .iter()
            .find(|((t, c), _)| t == table && c == column)
            .map(|(_, idx)| idx)
    }

    /// Statistics for a table.
    pub fn table_stats(&self, table: &str) -> Option<&stats::TableStats> {
        self.stats.get(table)
    }

    /// Total data size in bytes.
    pub fn data_bytes(&self) -> usize {
        self.catalog.iter().map(|t| t.data_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn analyze_builds_stats_for_all_tables() {
        let mut rng = StdRng::seed_from_u64(1);
        let cat = datasets::joblite(
            &datasets::DatasetConfig { base_rows: 200, ..Default::default() },
            &mut rng,
        );
        let db = Database::analyze(cat, &mut rng);
        assert_eq!(db.stats.len(), db.catalog.len());
        let ts = db.table_stats("title").unwrap();
        assert_eq!(ts.rows, 200);
        assert_eq!(ts.columns.len(), 4);
    }

    #[test]
    fn index_declaration() {
        let mut rng = StdRng::seed_from_u64(2);
        let cat = datasets::tpchlite(
            &datasets::DatasetConfig { base_rows: 100, ..Default::default() },
            &mut rng,
        );
        let mut db = Database::analyze(cat, &mut rng);
        db.add_index("orders", "cust_id");
        db.add_index("orders", "cust_id"); // idempotent
        assert!(db.has_index("orders", "cust_id"));
        assert!(!db.has_index("orders", "date"));
        assert_eq!(db.indexes.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn index_on_missing_column_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let cat = datasets::tpchlite(
            &datasets::DatasetConfig { base_rows: 50, ..Default::default() },
            &mut rng,
        );
        let mut db = Database::analyze(cat, &mut rng);
        db.add_index("orders", "nope");
    }
}
