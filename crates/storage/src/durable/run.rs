//! Immutable sorted runs and their per-run learned indexes.
//!
//! A run is one memtable flush frozen on disk: a header, the entries in
//! key order (tombstones included), and a CRC32 footer over everything
//! before it. Runs are never rewritten — the property that makes them
//! the safe home for a learned index, because the keys a model was
//! fitted on can never drift out from under it (the staleness collapse
//! PR 5 measured on mutable indexes cannot happen here).
//!
//! Every run's index goes through the **lifecycle gate** exactly like
//! any other learned component: a PGM model over the run's keys is
//! registered as a candidate against a binary-search incumbent, shadow-
//! probed on a deterministic key sample, and promoted only if its probe
//! results agree with binary search on every sample (score = fraction
//! of disagreements, gated at zero tolerance against an incumbent score
//! of zero). A rejected model leaves the run on plain binary search —
//! correct, just slower — and the `run_flush` trace event records which
//! way the gate went.

use ml4db_index::pgm::PgmCore;
use ml4db_index::search::last_mile_search_keys;
use ml4db_lifecycle::{GateConfig, ModelRegistry};

use super::medium::{IoFault, StorageMedium};
use super::wal::crc32;

/// Magic prefix of every run file.
pub const RUN_MAGIC: &[u8; 4] = b"RUN1";

/// PGM epsilon for run indexes — same bracket width as the secondary
/// index fast path so `predict_range` windows stay cache-friendly.
pub const RUN_INDEX_EPSILON: usize = 16;

/// One entry in a run: the latest committed fact about a key at flush
/// time. Tombstones must be stored — a delete in a newer run shadows a
/// put in an older one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunEntry {
    /// Key present with this value.
    Put {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Key deleted.
    Tombstone {
        /// Key.
        key: u64,
    },
}

impl RunEntry {
    /// The entry's key.
    pub fn key(&self) -> u64 {
        match *self {
            RunEntry::Put { key, .. } | RunEntry::Tombstone { key } => key,
        }
    }
}

/// Why a run file was rejected at load time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Footer CRC mismatch or truncated/garbled body — a torn flush.
    Corrupt(&'static str),
    /// The medium failed underneath the read.
    Io(IoFault),
}

/// File name of run `id`.
pub fn run_name(id: u32) -> String {
    format!("run-{id:08}.dat")
}

/// Parses a run file name back to its id.
pub fn parse_run_name(name: &str) -> Option<u32> {
    name.strip_prefix("run-")?.strip_suffix(".dat")?.parse().ok()
}

/// Serializes `entries` (must already be key-sorted) into the run file
/// format: `RUN1 | run_id u32 | count u64 | entries | crc32 u32`, each
/// entry `key u64 | tag u8 | value u64` (tag 1 = put, 2 = tombstone,
/// tombstone value = 0).
pub fn encode_run(run_id: u32, entries: &[RunEntry]) -> Vec<u8> {
    debug_assert!(entries.windows(2).all(|w| w[0].key() < w[1].key()));
    let mut out = Vec::with_capacity(16 + entries.len() * 17 + 4);
    out.extend_from_slice(RUN_MAGIC);
    out.extend_from_slice(&run_id.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        match *e {
            RunEntry::Put { key, value } => {
                out.extend_from_slice(&key.to_le_bytes());
                out.push(1);
                out.extend_from_slice(&value.to_le_bytes());
            }
            RunEntry::Tombstone { key } => {
                out.extend_from_slice(&key.to_le_bytes());
                out.push(2);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses and verifies a run file. With `checksums` off the footer CRC
/// is not checked — the unsafe mode the chaos harness demonstrates.
pub fn decode_run(buf: &[u8], checksums: bool) -> Result<(u32, Vec<RunEntry>), RunError> {
    if buf.len() < 20 || &buf[0..4] != RUN_MAGIC {
        return Err(RunError::Corrupt("missing header"));
    }
    if checksums {
        let body = &buf[..buf.len() - 4];
        let crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        if crc32(body) != crc {
            return Err(RunError::Corrupt("footer crc mismatch"));
        }
    }
    let run_id = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let count = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
    let body = &buf[16..buf.len() - 4];
    if body.len() != count * 17 {
        return Err(RunError::Corrupt("entry count mismatch"));
    }
    let mut entries = Vec::with_capacity(count);
    for chunk in body.chunks_exact(17) {
        let key = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let value = u64::from_le_bytes(chunk[9..17].try_into().unwrap());
        match chunk[8] {
            1 => entries.push(RunEntry::Put { key, value }),
            2 => entries.push(RunEntry::Tombstone { key }),
            _ => return Err(RunError::Corrupt("bad entry tag")),
        }
    }
    if !entries.windows(2).all(|w| w[0].key() < w[1].key()) {
        return Err(RunError::Corrupt("keys out of order"));
    }
    Ok((run_id, entries))
}

/// The probe model serving a run: the gate's winner.
#[derive(Clone, Debug)]
pub enum RunIndex {
    /// Gated PGM model: `predict_range` window + last-mile search.
    Learned(PgmCore),
    /// Fallback when the gate rejects the model (or the run is empty).
    BinarySearch,
}

impl RunIndex {
    /// Stable label for traces and benches.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunIndex::Learned(_) => "learned",
            RunIndex::BinarySearch => "binary_search",
        }
    }
}

/// A loaded, immutable run: sorted columns plus the gated probe model.
#[derive(Clone, Debug)]
pub struct Run {
    id: u32,
    /// Sorted keys (one per entry).
    keys: Vec<u64>,
    /// Parallel entries array.
    entries: Vec<RunEntry>,
    index: RunIndex,
    /// Bytes of the on-disk encoding (for bench bytes/key).
    file_bytes: u64,
}

impl Run {
    /// Builds the run's probe structures from decoded entries, pushing
    /// the PGM candidate through the lifecycle gate.
    pub fn assemble(id: u32, entries: Vec<RunEntry>, file_bytes: u64) -> Self {
        let keys: Vec<u64> = entries.iter().map(|e| e.key()).collect();
        let index = gate_run_index(id, &keys);
        ml4db_obs::counter_add("run.loads", 1);
        Self { id, keys, entries, index, file_bytes }
    }

    /// Run id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted entries, tombstones included.
    pub fn entries(&self) -> &[RunEntry] {
        &self.entries
    }

    /// The probe model the gate chose.
    pub fn index(&self) -> &RunIndex {
        &self.index
    }

    /// On-disk size of the run file.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Index model size (0 for binary search).
    pub fn index_bytes(&self) -> usize {
        match &self.index {
            RunIndex::Learned(core) => core.size_bytes(),
            RunIndex::BinarySearch => 0,
        }
    }

    /// Looks `key` up through the gated probe path.
    pub fn get(&self, key: u64) -> Option<RunEntry> {
        let at = match &self.index {
            RunIndex::Learned(core) => {
                let (lo, hi) = core.predict_range(key);
                last_mile_search_keys(&self.keys, key, lo, hi).ok()?
            }
            RunIndex::BinarySearch => self.keys.binary_search(&key).ok()?,
        };
        Some(self.entries[at])
    }

    /// Looks `key` up by plain binary search, bypassing the learned
    /// model — the reference the row-identity invariant compares
    /// against.
    pub fn get_unindexed(&self, key: u64) -> Option<RunEntry> {
        self.keys.binary_search(&key).ok().map(|at| self.entries[at])
    }

    /// All entries with keys in `[lo, hi]`, located via the probe path.
    pub fn range(&self, lo: u64, hi: u64) -> &[RunEntry] {
        let start = match &self.index {
            RunIndex::Learned(core) => {
                let (plo, phi) = core.predict_range(lo);
                match last_mile_search_keys(&self.keys, lo, plo, phi) {
                    Ok(i) | Err(i) => i,
                }
            }
            RunIndex::BinarySearch => self.keys.partition_point(|&k| k < lo),
        };
        let end = start + self.keys[start..].partition_point(|&k| k <= hi);
        &self.entries[start..end]
    }
}

/// Builds and gates a PGM model for one run's keys. Incumbent is binary
/// search (score 0 — it is never wrong); the candidate's score is the
/// fraction of deterministic sample probes whose result disagrees with
/// binary search, so any disagreement fails the zero-tolerance gate.
fn gate_run_index(run_id: u32, keys: &[u64]) -> RunIndex {
    if keys.len() < 2 {
        return RunIndex::BinarySearch;
    }
    let mut registry: ModelRegistry<Option<PgmCore>> =
        ModelRegistry::new("run_index", GateConfig { tolerance: 0.0 }, None);
    let core = PgmCore::build(keys, RUN_INDEX_EPSILON);
    let id = registry.register_candidate(Some(core), "run_flush");
    registry.begin_shadow(id);

    // Deterministic shadow probe sample: every k-th key plus just-miss
    // neighbours, capped so gating a huge run stays cheap.
    let step = (keys.len() / 64).max(1);
    let mut probes = 0u32;
    let mut disagreements = 0u32;
    let candidate = registry.version(id).and_then(|v| v.model.as_ref()).expect("registered");
    for i in (0..keys.len()).step_by(step) {
        for probe in [keys[i], keys[i].wrapping_add(1)] {
            probes += 1;
            let (lo, hi) = candidate.predict_range(probe);
            let learned = last_mile_search_keys(keys, probe, lo, hi).ok();
            let reference = keys.binary_search(&probe).ok();
            if learned != reference {
                disagreements += 1;
            }
        }
    }
    let score = f64::from(disagreements) / f64::from(probes.max(1));
    let verdict = registry.try_promote(id, score, 0.0, 0.0);
    if verdict.promoted {
        match registry.active().clone() {
            Some(core) => RunIndex::Learned(core),
            None => RunIndex::BinarySearch,
        }
    } else {
        ml4db_obs::counter_add("run.index_rejections", 1);
        let _ = run_id;
        RunIndex::BinarySearch
    }
}

/// Writes a run durably: append the encoding, then an fsync barrier.
/// Returns the assembled in-memory [`Run`].
pub fn write_run<M: StorageMedium>(
    medium: &mut M,
    run_id: u32,
    entries: Vec<RunEntry>,
    fsync_barriers: bool,
) -> Result<Run, IoFault> {
    let buf = encode_run(run_id, &entries);
    let name = run_name(run_id);
    medium.create(&name)?;
    medium.append(&name, &buf)?;
    if fsync_barriers {
        medium.sync(&name)?;
    }
    ml4db_obs::counter_add("run.flushes", 1);
    let run = Run::assemble(run_id, entries, buf.len() as u64);
    let (id, n, promoted) =
        (run.id(), run.len() as u64, matches!(run.index(), RunIndex::Learned(_)));
    ml4db_obs::emit_with(move || ml4db_obs::Event::RunFlush {
        run_id: id,
        entries: n,
        index_promoted: promoted,
    });
    Ok(run)
}

/// Loads and verifies one run file; `Err(RunError::Corrupt)` marks a
/// torn flush the caller must ignore (its data is still in the WAL).
pub fn load_run<M: StorageMedium>(
    medium: &mut M,
    name: &str,
    checksums: bool,
) -> Result<Run, RunError> {
    let buf = match medium.read(name) {
        Ok(b) => b,
        Err(e) => return Err(RunError::Io(e)),
    };
    // Cross-check against the medium's length: a silently short read
    // must not masquerade as a torn flush.
    if let Ok(expect) = medium.len(name) {
        if buf.len() as u64 != expect {
            return Err(RunError::Io(IoFault::ShortRead));
        }
    }
    let file_bytes = buf.len() as u64;
    let (run_id, entries) = decode_run(&buf, checksums)?;
    Ok(Run::assemble(run_id, entries, file_bytes))
}

#[cfg(test)]
mod tests {
    use super::super::medium::SimDisk;
    use super::*;

    fn sample_entries(n: u64) -> Vec<RunEntry> {
        (0..n)
            .map(|i| {
                if i % 7 == 3 {
                    RunEntry::Tombstone { key: i * 3 }
                } else {
                    RunEntry::Put { key: i * 3, value: i * 100 }
                }
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let entries = sample_entries(200);
        let buf = encode_run(7, &entries);
        let (id, got) = decode_run(&buf, true).unwrap();
        assert_eq!(id, 7);
        assert_eq!(got, entries);
    }

    #[test]
    fn any_corrupt_byte_is_rejected() {
        let buf = encode_run(1, &sample_entries(20));
        for i in 0..buf.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = buf.clone();
                bad[i] ^= bit;
                assert!(
                    decode_run(&bad, true).is_err(),
                    "flip of byte {i} (bit {bit:#x}) went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let buf = encode_run(1, &sample_entries(20));
        for cut in 0..buf.len() {
            assert!(decode_run(&buf[..cut], true).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn gated_index_probes_match_binary_search_for_every_key() {
        let entries = sample_entries(3000);
        let run = Run::assemble(0, entries.clone(), 0);
        assert!(
            matches!(run.index(), RunIndex::Learned(_)),
            "PGM on clean sorted keys should clear the gate"
        );
        for e in &entries {
            assert_eq!(run.get(e.key()), Some(*e));
            assert_eq!(run.get(e.key()), run.get_unindexed(e.key()));
            assert_eq!(run.get(e.key().wrapping_add(1)), None);
        }
    }

    #[test]
    fn range_matches_filter_sweep() {
        let entries = sample_entries(500);
        let run = Run::assemble(0, entries.clone(), 0);
        for (lo, hi) in [(0, 0), (3, 300), (299, 901), (0, u64::MAX), (1400, 1400)] {
            let want: Vec<RunEntry> =
                entries.iter().copied().filter(|e| (lo..=hi).contains(&e.key())).collect();
            assert_eq!(run.range(lo, hi), &want[..], "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn write_then_load_round_trips_through_a_medium() {
        let mut disk = SimDisk::new();
        let entries = sample_entries(100);
        let written = write_run(&mut disk, 4, entries.clone(), true).unwrap();
        let loaded = load_run(&mut disk, &run_name(4), true).unwrap();
        assert_eq!(loaded.id(), 4);
        assert_eq!(loaded.entries(), written.entries());
        assert_eq!(loaded.file_bytes(), written.file_bytes());
    }

    #[test]
    fn torn_run_write_is_rejected_at_load() {
        use super::super::medium::{FaultSpec, TailPolicy};
        let mut disk = SimDisk::new();
        // Crash on the fsync: create+append land volatile, a torn
        // prefix survives reboot.
        disk.arm(FaultSpec::CrashAt { op: disk.ops() + 2, tail: TailPolicy::Torn });
        let err = write_run(&mut disk, 0, sample_entries(50), true);
        assert!(err.is_err());
        disk.reboot(0xBEEF);
        match load_run(&mut disk, &run_name(0), true) {
            Err(RunError::Corrupt(_)) => {}
            Ok(run) => {
                // A zero-length surviving prefix may drop the file
                // entirely; anything loadable must be impossible.
                panic!("torn run loaded with {} entries", run.len());
            }
            Err(RunError::Io(IoFault::NotFound)) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
}
