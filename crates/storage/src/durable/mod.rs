//! The durability tier: crash-consistent storage under the in-memory
//! engine.
//!
//! Layering, bottom up:
//!
//! - [`medium`] — the [`medium::StorageMedium`] trait every byte of
//!   I/O goes through, with a real-filesystem implementation
//!   ([`medium::FsMedium`]) and a deterministic fault-injecting
//!   simulator ([`medium::SimDisk`]) driven by a call-count clock.
//! - [`wal`] — the checksummed, segmented write-ahead log: CRC-framed
//!   records, fsync barriers as the acknowledgement point, bounded
//!   deterministic retry on ENOSPC/transient errors, prefix-stopping
//!   replay.
//! - [`run`] — immutable sorted runs with footer CRCs, each carrying a
//!   per-run PGM learned index promoted (or rejected) through the
//!   lifecycle gate and probed via `predict_range` + last-mile search.
//! - [`store`] — [`store::DurableStore`]: the commit / flush /
//!   checkpoint / recovery protocol tying the layers together.
//!
//! The crash-matrix harness that proves the recovery invariants lives
//! in `ml4db_guard::diskchaos` (the guard crate sits above storage in
//! the dependency order); the oracle-side reference model is
//! `ml4db_oracle::recovery_check`.

pub mod medium;
pub mod run;
pub mod store;
pub mod wal;

pub use medium::{FaultSpec, FsMedium, IoFault, SimDisk, StorageMedium, TailPolicy};
pub use run::{Run, RunEntry, RunError, RunIndex};
pub use store::{DurableStore, RecoveryReport, StoreConfig};
pub use wal::{Wal, WalConfig, WalError, WalRecord};
