//! The checksummed, segmented write-ahead log.
//!
//! Every mutation is appended as a **frame** — `[len: u32][crc32: u32]
//! [payload]`, CRC over the payload — into the active segment
//! (`wal-XXXXXXXX.seg`), which rotates at a configurable size. A
//! [`Wal::sync`] barrier is the commit acknowledgement point: a
//! [`WalRecord::Commit`] frame followed by a successful fsync makes the
//! batch durable; everything after the last durable fsync is by
//! definition unacknowledged.
//!
//! Replay ([`Wal::recover`]) walks the segments in order, verifying
//! every frame's CRC, and **stops at the first torn or corrupt frame** —
//! which is always inside the unacknowledged tail on an honest medium,
//! so no committed record is ever dropped. The frame codec is exposed
//! ([`encode_frame`], [`decode_frame`]) for the property tests that
//! prove exactly that: corrupt any byte → the frame is rejected;
//! truncate at any offset → replay stops at the last whole frame.
//!
//! Append errors are survivable: [`IoFault::NoSpace`] and transient
//! write errors are retried a bounded number of times on a
//! deterministic call-count backoff clock, then surface as a clean
//! [`WalError`] (the guard layer trips a named breaker on it — see
//! `ml4db_guard::diskchaos`); the WAL itself never panics on I/O.

use super::medium::{IoFault, StorageMedium};

/// Sanity cap on one frame's payload: no record we write comes close,
/// so a garbage length prefix (torn tail with checksums off) cannot ask
/// replay to skip megabytes.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Frame header bytes: u32 length + u32 CRC.
pub const FRAME_HEADER: usize = 8;

/// WAL knobs. The protection switches exist for the chaos harness,
/// which proves recovery *fails* without them; production code leaves
/// them on.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Bounded retries for NoSpace/Transient append errors.
    pub retry_limit: u32,
    /// Verify (and write meaningful) per-frame CRCs.
    pub checksums: bool,
    /// Honor fsync barriers (off = sync is a lying no-op).
    pub fsync_barriers: bool,
    /// Cross-check replay reads against the medium's file length and
    /// retry short reads.
    pub read_retry: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 16 * 1024,
            retry_limit: 4,
            checksums: true,
            fsync_barriers: true,
            read_retry: true,
        }
    }
}

/// A WAL append/replay failure, after bounded retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The medium stayed out of space through every retry.
    NoSpace {
        /// Append attempts made (1 + retries).
        attempts: u32,
    },
    /// A write error persisted through every retry.
    Transient {
        /// Append attempts made.
        attempts: u32,
    },
    /// The (simulated) machine died mid-operation; nothing further can
    /// be appended until recovery.
    MediumCrashed,
    /// Replay could not make sense of the log in a way that is *not*
    /// an honest torn tail (e.g. a missing segment mid-sequence).
    Corrupt(&'static str),
}

impl WalError {
    /// Stable label for traces, breakers, and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            WalError::NoSpace { .. } => "no_space",
            WalError::Transient { .. } => "transient",
            WalError::MediumCrashed => "medium_crashed",
            WalError::Corrupt(_) => "corrupt",
        }
    }
}

/// One logical WAL record. `seq` is a store-wide monotone sequence
/// number; replay uses it to skip records already folded into runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// An upsert, staged until the next commit frame.
    Put {
        /// Sequence number.
        seq: u64,
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// A delete (tombstone), staged until the next commit frame.
    Delete {
        /// Sequence number.
        seq: u64,
        /// Key.
        key: u64,
    },
    /// Commits every staged record before it.
    Commit {
        /// Sequence number.
        seq: u64,
    },
    /// All records with `seq <= flushed_through` are durable in runs
    /// `0..=run_id`; replay skips them.
    Checkpoint {
        /// Sequence number of the checkpoint record itself.
        seq: u64,
        /// Highest run id the checkpoint covers.
        run_id: u32,
        /// Highest sequence number folded into those runs.
        flushed_through: u64,
    },
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            WalRecord::Put { seq, .. }
            | WalRecord::Delete { seq, .. }
            | WalRecord::Commit { seq }
            | WalRecord::Checkpoint { seq, .. } => seq,
        }
    }

    /// Serializes the record payload (tag + seq + fields, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(25);
        match *self {
            WalRecord::Put { seq, key, value } => {
                out.push(1);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            WalRecord::Delete { seq, key } => {
                out.push(2);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            WalRecord::Commit { seq } => {
                out.push(3);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            WalRecord::Checkpoint { seq, run_id, flushed_through } => {
                out.push(4);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&run_id.to_le_bytes());
                out.extend_from_slice(&flushed_through.to_le_bytes());
            }
        }
        out
    }

    /// Parses a record payload; `None` on a structurally invalid one.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let u64_at = |r: &[u8], at: usize| -> Option<u64> {
            r.get(at..at + 8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        match tag {
            1 if rest.len() == 24 => Some(WalRecord::Put {
                seq: u64_at(rest, 0)?,
                key: u64_at(rest, 8)?,
                value: u64_at(rest, 16)?,
            }),
            2 if rest.len() == 16 => {
                Some(WalRecord::Delete { seq: u64_at(rest, 0)?, key: u64_at(rest, 8)? })
            }
            3 if rest.len() == 8 => Some(WalRecord::Commit { seq: u64_at(rest, 0)? }),
            4 if rest.len() == 20 => Some(WalRecord::Checkpoint {
                seq: u64_at(rest, 0)?,
                run_id: u32::from_le_bytes(rest.get(8..12)?.try_into().unwrap()),
                flushed_through: u64_at(rest, 12)?,
            }),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps a record payload in a length-prefixed, CRC-protected frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() as u32 <= MAX_FRAME_PAYLOAD, "frame payload too large");
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why frame decoding stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameStop {
    /// Clean end of buffer: every byte belonged to a whole frame.
    End,
    /// The buffer ends inside a header or payload (torn write).
    Torn,
    /// A whole frame failed its CRC or decoded to no valid record.
    Corrupt,
}

/// Decodes one frame at `buf[at..]`. Returns the record and the offset
/// just past the frame, or the reason decoding must stop. With
/// `checksums` off the CRC field is ignored — the mode the chaos
/// harness proves unsafe.
pub fn decode_frame(
    buf: &[u8],
    at: usize,
    checksums: bool,
) -> Result<Option<(WalRecord, usize)>, FrameStop> {
    let rest = &buf[at.min(buf.len())..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < FRAME_HEADER {
        return Err(FrameStop::Torn);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        // A length this large is never written; with checksums off it is
        // the only line of defense against a garbage length prefix.
        return Err(FrameStop::Corrupt);
    }
    let want = crc32(&[]) ^ 0; // silence "unused" when checksums off
    let _ = want;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let end = FRAME_HEADER + len as usize;
    if rest.len() < end {
        return Err(FrameStop::Torn);
    }
    let payload = &rest[FRAME_HEADER..end];
    if checksums && crc32(payload) != crc {
        return Err(FrameStop::Corrupt);
    }
    match WalRecord::decode(payload) {
        Some(rec) => Ok(Some((rec, at + end))),
        None => Err(FrameStop::Corrupt),
    }
}

/// Decodes every whole valid frame from the start of `buf`, reporting
/// how decoding stopped.
pub fn decode_all(buf: &[u8], checksums: bool) -> (Vec<WalRecord>, FrameStop) {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        match decode_frame(buf, at, checksums) {
            Ok(Some((rec, next))) => {
                out.push(rec);
                at = next;
            }
            Ok(None) => return (out, FrameStop::End),
            Err(stop) => return (out, stop),
        }
    }
}

// ---------------------------------------------------------------------------
// Segmented appender
// ---------------------------------------------------------------------------

fn segment_name(id: u32) -> String {
    format!("wal-{id:08}.seg")
}

fn parse_segment(name: &str) -> Option<u32> {
    name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()
}

/// What [`Wal::recover`] found in the log.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Every whole, valid record, in log order.
    pub records: Vec<WalRecord>,
    /// Segments scanned.
    pub segments: u32,
    /// Whether replay stopped at a torn/corrupt tail.
    pub torn_tail: bool,
    /// Frames dropped at the tail for failing their CRC (0 or 1 — replay
    /// stops at the first).
    pub corrupt_frames: u64,
}

/// The segmented appender: tracks the active segment, the next sequence
/// number, and the durability high-water mark. All I/O goes through the
/// caller's [`StorageMedium`].
#[derive(Clone, Debug)]
pub struct Wal {
    cfg: WalConfig,
    /// Live segment ids, ascending; the last is active.
    segments: Vec<u32>,
    /// Bytes appended to the active segment.
    active_bytes: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Logical backoff clock: advanced by the retry loop instead of
    /// sleeping, so tests can assert the exact schedule.
    backoff_ticks: u64,
    /// Appends that needed at least one retry.
    retried_appends: u64,
}

impl Wal {
    /// Creates a fresh WAL (segment 0) on `medium`.
    pub fn create<M: StorageMedium>(medium: &mut M, cfg: WalConfig) -> Result<Self, WalError> {
        medium.create(&segment_name(0)).map_err(Self::map_create)?;
        Ok(Self {
            cfg,
            segments: vec![0],
            active_bytes: 0,
            // Sequence numbers start at 1 so `flushed_through = 0` can
            // mean "no checkpoint yet" without colliding with a record.
            next_seq: 1,
            backoff_ticks: 0,
            retried_appends: 0,
        })
    }

    fn map_create(e: IoFault) -> WalError {
        match e {
            IoFault::Crashed => WalError::MediumCrashed,
            IoFault::NoSpace => WalError::NoSpace { attempts: 1 },
            _ => WalError::Transient { attempts: 1 },
        }
    }

    /// The WAL's configuration.
    pub fn config(&self) -> WalConfig {
        self.cfg
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Live segment count.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The active segment's id.
    pub fn active_segment(&self) -> u32 {
        *self.segments.last().expect("wal always has an active segment")
    }

    /// Total ticks the deterministic backoff clock has advanced — the
    /// "time spent waiting" of the retry path, without a wall clock.
    pub fn backoff_ticks(&self) -> u64 {
        self.backoff_ticks
    }

    /// Folds externally accumulated retry waits (e.g. the store's
    /// run-load retries during open) into this WAL's backoff clock, so
    /// one counter audits the whole recovery path.
    pub(crate) fn absorb_backoff(&mut self, ticks: u64) {
        self.backoff_ticks += ticks;
    }

    /// Appends that succeeded only after at least one retry.
    pub fn retried_appends(&self) -> u64 {
        self.retried_appends
    }

    /// Assigns the next sequence number.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Forces rotation onto a fresh segment regardless of fill — the
    /// flush protocol rotates before its checkpoint frame so GC can
    /// reclaim every earlier segment.
    pub fn rotate<M: StorageMedium>(&mut self, medium: &mut M) -> Result<(), WalError> {
        // A segment must be fully durable before it stops being the
        // active one: `sync` only ever fsyncs the active segment, so a
        // volatile tail left behind here could hold records from an
        // already-acknowledged commit whose commit frame lands in the
        // next segment.
        self.sync(medium)?;
        let next = self.active_segment() + 1;
        self.try_io(|m| m.create(&segment_name(next)), medium)?;
        self.segments.push(next);
        self.active_bytes = 0;
        Ok(())
    }

    /// Appends one record, rotating segments and retrying NoSpace /
    /// transient errors on the deterministic backoff schedule
    /// (1, 2, 4, ... ticks). Returns the record's encoded frame size.
    pub fn append<M: StorageMedium>(
        &mut self,
        medium: &mut M,
        rec: &WalRecord,
    ) -> Result<u64, WalError> {
        let frame = encode_frame(&rec.encode());
        if self.active_bytes >= self.cfg.segment_bytes {
            self.rotate(medium)?;
        }
        let name = segment_name(self.active_segment());
        self.try_io(|m| m.append(&name, &frame), medium)?;
        self.active_bytes += frame.len() as u64;
        ml4db_obs::counter_add("wal.appends", 1);
        Ok(frame.len() as u64)
    }

    /// Runs one I/O action under the bounded-retry policy.
    fn try_io<M: StorageMedium>(
        &mut self,
        mut op: impl FnMut(&mut M) -> Result<(), IoFault>,
        medium: &mut M,
    ) -> Result<(), WalError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match op(medium) {
                Ok(()) => {
                    if attempts > 1 {
                        self.retried_appends += 1;
                        ml4db_obs::counter_add("wal.retried_appends", 1);
                    }
                    return Ok(());
                }
                Err(IoFault::Crashed) => return Err(WalError::MediumCrashed),
                Err(e @ (IoFault::NoSpace | IoFault::Transient)) => {
                    ml4db_obs::counter_add("wal.append_errors", 1);
                    if attempts > self.cfg.retry_limit {
                        return Err(match e {
                            IoFault::NoSpace => WalError::NoSpace { attempts },
                            _ => WalError::Transient { attempts },
                        });
                    }
                    // Deterministic exponential backoff on the logical
                    // clock: no wall time, identical on every run.
                    self.backoff_ticks += 1u64 << (attempts - 1).min(16);
                }
                Err(_) => return Err(WalError::Corrupt("append on missing segment")),
            }
        }
    }

    /// The fsync barrier: makes the active segment durable (when
    /// `fsync_barriers` is on) and emits the `wal_fsync` trace event.
    pub fn sync<M: StorageMedium>(&mut self, medium: &mut M) -> Result<(), WalError> {
        let seg = self.active_segment();
        let name = segment_name(seg);
        if self.cfg.fsync_barriers {
            match medium.sync(&name) {
                Ok(()) => {}
                Err(IoFault::Crashed) => return Err(WalError::MediumCrashed),
                Err(IoFault::NoSpace) => return Err(WalError::NoSpace { attempts: 1 }),
                Err(_) => return Err(WalError::Transient { attempts: 1 }),
            }
        }
        let bytes = self.active_bytes;
        ml4db_obs::counter_add("wal.fsyncs", 1);
        ml4db_obs::emit_with(move || ml4db_obs::Event::WalFsync { segment: seg, bytes });
        Ok(())
    }

    /// Deletes every segment below the active one — called after a
    /// checkpoint frame covering them is durable.
    pub fn gc_below_active<M: StorageMedium>(
        &mut self,
        medium: &mut M,
    ) -> Result<(), WalError> {
        let active = self.active_segment();
        for id in std::mem::take(&mut self.segments) {
            if id != active {
                match medium.delete(&segment_name(id)) {
                    Ok(()) => {
                        ml4db_obs::counter_add("wal.segments_gced", 1);
                    }
                    Err(IoFault::Crashed) => {
                        self.segments.push(active);
                        return Err(WalError::MediumCrashed);
                    }
                    // A leftover segment is harmless: replay skips its
                    // records by sequence number.
                    Err(_) => {}
                }
            }
        }
        self.segments.push(active);
        Ok(())
    }

    /// Reads one file with the short-read cross-check: the returned
    /// buffer must match the medium's reported length. Transient read
    /// errors and detected short reads are retried under the same
    /// bounded deterministic policy appends get (`retry_limit` retries
    /// on the 1, 2, 4, … tick backoff clock), then surface as a clean
    /// [`WalError::Transient`]. With `read_retry` off the length
    /// cross-check is skipped and the first successful answer is
    /// trusted — the unprotected mode the chaos harness breaks.
    fn read_checked<M: StorageMedium>(
        medium: &mut M,
        name: &str,
        cfg: &WalConfig,
        backoff: &mut u64,
    ) -> Result<Vec<u8>, WalError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let buf = match medium.read(name) {
                Ok(b) => b,
                Err(IoFault::Crashed) => return Err(WalError::MediumCrashed),
                Err(IoFault::NotFound) => return Err(WalError::Corrupt("segment vanished")),
                Err(_) => {
                    ml4db_obs::counter_add("wal.read_errors", 1);
                    if attempts > cfg.retry_limit {
                        return Err(WalError::Transient { attempts });
                    }
                    *backoff += 1u64 << (attempts - 1).min(16);
                    continue;
                }
            };
            if !cfg.read_retry {
                return Ok(buf);
            }
            match medium.len(name) {
                Ok(expect) if buf.len() as u64 == expect => return Ok(buf),
                Err(IoFault::Crashed) => return Err(WalError::MediumCrashed),
                Ok(_) | Err(_) => {
                    ml4db_obs::counter_add("wal.short_reads", 1);
                    if attempts > cfg.retry_limit {
                        return Err(WalError::Transient { attempts });
                    }
                    *backoff += 1u64 << (attempts - 1).min(16);
                }
            }
        }
    }

    /// Runs one read-side I/O action under the append retry policy:
    /// `retry_limit` retries of NoSpace/Transient faults on the
    /// deterministic backoff clock, crash and not-found fatal. Shared
    /// with `DurableStore::open`, whose recovery enumeration must ride
    /// out the same transient reads replay does.
    pub(crate) fn retry_read_io<M: StorageMedium, T>(
        cfg: &WalConfig,
        backoff: &mut u64,
        medium: &mut M,
        mut op: impl FnMut(&mut M) -> Result<T, IoFault>,
    ) -> Result<T, WalError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match op(medium) {
                Ok(v) => return Ok(v),
                Err(IoFault::Crashed) => return Err(WalError::MediumCrashed),
                Err(IoFault::NotFound) => return Err(WalError::Corrupt("segment vanished")),
                Err(_) => {
                    ml4db_obs::counter_add("wal.read_errors", 1);
                    if attempts > cfg.retry_limit {
                        return Err(WalError::Transient { attempts });
                    }
                    *backoff += 1u64 << (attempts - 1).min(16);
                }
            }
        }
    }

    /// Scans the log on `medium`, returning every whole valid record and
    /// a [`Wal`] positioned to continue appending after the survivors.
    ///
    /// Replay stops at the first torn or corrupt frame; a defect in a
    /// **non-final** segment is not an honest crash artifact and fails
    /// with [`WalError::Corrupt`] rather than silently dropping the
    /// segments after it.
    pub fn recover<M: StorageMedium>(
        medium: &mut M,
        cfg: WalConfig,
    ) -> Result<(Self, Replay), WalError> {
        let mut backoff = 0u64;
        let names = Self::retry_read_io(&cfg, &mut backoff, medium, |m| m.list())?;
        let mut seg_ids: Vec<u32> = names.iter().filter_map(|n| parse_segment(n)).collect();
        seg_ids.sort_unstable();
        if seg_ids.is_empty() {
            let wal = Self::create(medium, cfg)?;
            return Ok((
                wal,
                Replay { records: Vec::new(), segments: 0, torn_tail: false, corrupt_frames: 0 },
            ));
        }
        let mut records = Vec::new();
        let mut torn_tail = false;
        let mut corrupt_frames = 0u64;
        let mut active_bytes = 0u64;
        for (i, &id) in seg_ids.iter().enumerate() {
            let buf = Self::read_checked(medium, &segment_name(id), &cfg, &mut backoff)?;
            let (mut recs, stop) = decode_all(&buf, cfg.checksums);
            let last = i + 1 == seg_ids.len();
            match stop {
                FrameStop::End => {}
                FrameStop::Torn | FrameStop::Corrupt if last => {
                    torn_tail = true;
                    if stop == FrameStop::Corrupt {
                        corrupt_frames += 1;
                    }
                }
                // Damage before the final segment cannot come from a
                // torn crash tail: surface it instead of replaying a
                // log with a hole in the middle.
                _ => return Err(WalError::Corrupt("defect in non-final segment")),
            }
            if last {
                // Continue appending after the valid prefix: the torn
                // bytes (if any) are dead — they are unacknowledged by
                // construction — and will be overwritten only by
                // rotation, never reinterpreted, because replay already
                // stopped in front of them. Re-create the segment with
                // just the valid prefix so future frames butt against
                // whole frames.
                if torn_tail {
                    let valid: usize = {
                        let mut at = 0usize;
                        for r in &recs {
                            at += FRAME_HEADER + r.encode().len();
                        }
                        at
                    };
                    let name = segment_name(id);
                    Self::retry_read_io(&cfg, &mut backoff, medium, |m| m.create(&name))?;
                    Self::retry_read_io(&cfg, &mut backoff, medium, |m| {
                        m.append(&name, &buf[..valid])
                    })?;
                    active_bytes = valid as u64;
                } else {
                    active_bytes = buf.len() as u64;
                }
            }
            records.append(&mut recs);
        }
        let next_seq = records.iter().map(|r| r.seq() + 1).max().unwrap_or(1);
        let wal = Self {
            cfg,
            segments: seg_ids.clone(),
            active_bytes,
            next_seq,
            // Carry recovery's retry waits so the schedule is auditable
            // from the recovered handle, exactly like the append path.
            backoff_ticks: backoff,
            retried_appends: 0,
        };
        Ok((
            wal,
            Replay {
                records,
                segments: seg_ids.len() as u32,
                torn_tail,
                corrupt_frames,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::medium::SimDisk;
    use super::*;

    #[test]
    fn frame_round_trip() {
        for rec in [
            WalRecord::Put { seq: 7, key: 42, value: 99 },
            WalRecord::Delete { seq: 8, key: 42 },
            WalRecord::Commit { seq: 9 },
            WalRecord::Checkpoint { seq: 10, run_id: 3, flushed_through: 9 },
        ] {
            let frame = encode_frame(&rec.encode());
            let (got, stop) = decode_all(&frame, true);
            assert_eq!(stop, FrameStop::End);
            assert_eq!(got, vec![rec]);
        }
    }

    #[test]
    fn corrupt_byte_rejects_frame() {
        let rec = WalRecord::Put { seq: 1, key: 2, value: 3 };
        let frame = encode_frame(&rec.encode());
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let (got, stop) = decode_all(&bad, true);
            assert!(
                got.is_empty() && stop != FrameStop::End,
                "byte {i} flip decoded to {got:?} / {stop:?}"
            );
        }
    }

    #[test]
    fn append_sync_recover_round_trip() {
        let mut disk = SimDisk::new();
        let mut wal = Wal::create(&mut disk, WalConfig::default()).unwrap();
        let mut written = Vec::new();
        for i in 0..10u64 {
            let seq = wal.alloc_seq();
            let rec = WalRecord::Put { seq, key: i, value: i * 10 };
            wal.append(&mut disk, &rec).unwrap();
            written.push(rec);
        }
        let seq = wal.alloc_seq();
        written.push(WalRecord::Commit { seq });
        wal.append(&mut disk, written.last().unwrap()).unwrap();
        wal.sync(&mut disk).unwrap();

        let (wal2, replay) = Wal::recover(&mut disk, WalConfig::default()).unwrap();
        assert_eq!(replay.records, written);
        assert!(!replay.torn_tail);
        assert_eq!(wal2.next_seq(), wal.next_seq());
    }

    #[test]
    fn segments_rotate_and_recover_in_order() {
        let mut disk = SimDisk::new();
        let cfg = WalConfig { segment_bytes: 64, ..WalConfig::default() };
        let mut wal = Wal::create(&mut disk, cfg).unwrap();
        for i in 0..32u64 {
            let seq = wal.alloc_seq();
            wal.append(&mut disk, &WalRecord::Put { seq, key: i, value: i }).unwrap();
        }
        wal.sync(&mut disk).unwrap();
        assert!(wal.num_segments() > 1, "rotation never fired");
        let (_, replay) = Wal::recover(&mut disk, cfg).unwrap();
        assert_eq!(replay.segments as usize, wal.num_segments());
        let keys: Vec<u64> = replay
            .records
            .iter()
            .map(|r| match r {
                WalRecord::Put { key, .. } => *key,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(keys, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn enospc_retries_then_clean_error() {
        use super::super::medium::FaultSpec;
        let mut disk = SimDisk::new();
        let cfg = WalConfig { retry_limit: 2, ..WalConfig::default() };
        let mut wal = Wal::create(&mut disk, cfg).unwrap();
        // Clears after 2 failures: retry path succeeds.
        disk.arm(FaultSpec::NoSpaceAt { op: disk.ops(), times: 2 });
        let seq = wal.alloc_seq();
        wal.append(&mut disk, &WalRecord::Put { seq, key: 1, value: 1 }).unwrap();
        assert_eq!(wal.retried_appends(), 1);
        assert_eq!(wal.backoff_ticks(), 1 + 2, "deterministic 1,2 schedule");
        // Never clears: clean error after the bounded schedule, no panic.
        disk.arm(FaultSpec::NoSpaceAt { op: disk.ops(), times: 1000 });
        let seq = wal.alloc_seq();
        let err = wal.append(&mut disk, &WalRecord::Put { seq, key: 2, value: 2 });
        assert_eq!(err, Err(WalError::NoSpace { attempts: 3 }));
    }

    #[test]
    fn truncation_at_every_offset_stops_at_last_whole_frame() {
        let recs: Vec<WalRecord> =
            (0..6).map(|i| WalRecord::Put { seq: i, key: i, value: i + 100 }).collect();
        let mut log = Vec::new();
        let mut ends = vec![0usize];
        for r in &recs {
            log.extend_from_slice(&encode_frame(&r.encode()));
            ends.push(log.len());
        }
        for cut in 0..=log.len() {
            let (got, _) = decode_all(&log[..cut], true);
            let whole = ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(got.len(), whole, "cut at {cut}");
            assert_eq!(&got[..], &recs[..whole]);
        }
    }
}
