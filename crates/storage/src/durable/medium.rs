//! The I/O boundary of the durable tier: every byte the WAL and run
//! writers touch goes through a [`StorageMedium`], so the same code runs
//! against real files ([`FsMedium`]) and against a deterministic
//! simulated disk ([`SimDisk`]) that injects faults at seeded crash
//! points — kill-before-fsync, torn tails, bit-flipped records, short
//! reads, ENOSPC on append.
//!
//! The medium models the durability boundary explicitly: appended bytes
//! are **volatile** until a [`StorageMedium::sync`] barrier succeeds.
//! `SimDisk` keeps the volatile tail separate and throws it away (whole,
//! torn, or flipped, per the installed [`FaultPlan`]) when a crash
//! fires, which is exactly the behaviour the recovery invariants are
//! proven against.

use std::collections::BTreeMap;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::PathBuf;

/// An I/O failure surfaced by a [`StorageMedium`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The device is out of space (may clear on retry — compaction,
    /// another tenant freeing segments).
    NoSpace,
    /// A transient write error (EIO-style); retryable.
    Transient,
    /// A read returned fewer bytes than the file holds (detected by the
    /// caller's length cross-check); retryable.
    ShortRead,
    /// The named file does not exist.
    NotFound,
    /// The medium crashed: every subsequent call fails until the
    /// simulated machine reboots ([`SimDisk::reboot`]).
    Crashed,
}

impl IoFault {
    /// Stable label for traces and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            IoFault::NoSpace => "no_space",
            IoFault::Transient => "transient",
            IoFault::ShortRead => "short_read",
            IoFault::NotFound => "not_found",
            IoFault::Crashed => "crashed",
        }
    }
}

/// Flat-namespace file storage with an explicit volatile/durable
/// boundary. All paths are simple names ("wal-000001.seg"); nesting is
/// the caller's concern.
pub trait StorageMedium {
    /// Creates (or truncates) a file.
    fn create(&mut self, name: &str) -> Result<(), IoFault>;
    /// Appends bytes to a file (volatile until [`Self::sync`]).
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), IoFault>;
    /// Durability barrier: everything appended to `name` so far survives
    /// a crash once this returns `Ok`.
    fn sync(&mut self, name: &str) -> Result<(), IoFault>;
    /// Reads the whole file.
    fn read(&mut self, name: &str) -> Result<Vec<u8>, IoFault>;
    /// Deletes a file (idempotent; deleting a missing file is `Ok`).
    fn delete(&mut self, name: &str) -> Result<(), IoFault>;
    /// All file names, sorted — deterministic recovery enumeration.
    fn list(&mut self) -> Result<Vec<String>, IoFault>;
    /// Current length of a file in bytes.
    fn len(&mut self, name: &str) -> Result<u64, IoFault>;
}

// ---------------------------------------------------------------------------
// Real files
// ---------------------------------------------------------------------------

/// [`StorageMedium`] over a real directory via `std::fs`. `sync` maps to
/// `File::sync_all`.
#[derive(Debug)]
pub struct FsMedium {
    root: PathBuf,
}

impl FsMedium {
    /// Opens (creating if needed) a medium rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

fn map_io(e: std::io::Error) -> IoFault {
    match e.kind() {
        std::io::ErrorKind::NotFound => IoFault::NotFound,
        std::io::ErrorKind::StorageFull => IoFault::NoSpace,
        _ => IoFault::Transient,
    }
}

impl StorageMedium for FsMedium {
    fn create(&mut self, name: &str) -> Result<(), IoFault> {
        std::fs::File::create(self.path(name)).map(|_| ()).map_err(map_io)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), IoFault> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(map_io)?;
        f.write_all(data).map_err(map_io)
    }

    fn sync(&mut self, name: &str) -> Result<(), IoFault> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))
            .map_err(map_io)?;
        // Position at the end so sync_all covers every appended byte.
        f.seek(std::io::SeekFrom::End(0)).map_err(map_io)?;
        f.sync_all().map_err(map_io)
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, IoFault> {
        let mut buf = Vec::new();
        std::fs::File::open(self.path(name))
            .map_err(map_io)?
            .read_to_end(&mut buf)
            .map_err(map_io)?;
        Ok(buf)
    }

    fn delete(&mut self, name: &str) -> Result<(), IoFault> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(map_io(e)),
        }
    }

    fn list(&mut self) -> Result<Vec<String>, IoFault> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .map_err(map_io)?
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort_unstable();
        Ok(names)
    }

    fn len(&mut self, name: &str) -> Result<u64, IoFault> {
        std::fs::metadata(self.path(name)).map(|m| m.len()).map_err(map_io)
    }
}

// ---------------------------------------------------------------------------
// Simulated disk with seeded fault injection
// ---------------------------------------------------------------------------

/// What happens to a file's volatile tail when the machine dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailPolicy {
    /// The whole unsynced tail is lost (clean kill).
    DropAll,
    /// A seeded-length prefix of the unsynced tail survives — possibly
    /// ending mid-frame (torn write).
    Torn,
    /// The whole unsynced tail survives but one byte at `offset` (into
    /// the tail) has `bit` flipped — latent sector corruption.
    BitFlip {
        /// Byte offset into the volatile tail.
        offset: u64,
        /// Bit (0–7) to flip.
        bit: u8,
    },
}

/// One injected fault, armed on a [`SimDisk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// The machine dies *before* I/O op number `op` (a call-count clock
    /// across all medium operations) takes effect. What survives of each
    /// file's volatile tail is decided by `tail` at [`SimDisk::reboot`].
    CrashAt {
        /// Call-count at which the crash fires.
        op: u64,
        /// Fate of unsynced bytes.
        tail: TailPolicy,
    },
    /// Appends fail with [`IoFault::NoSpace`] starting at op `op`, for
    /// `times` consecutive append attempts, then space clears.
    NoSpaceAt {
        /// First failing append's call-count.
        op: u64,
        /// Consecutive failures before space frees up.
        times: u32,
    },
    /// Appends fail with [`IoFault::Transient`] starting at op `op`, for
    /// `times` attempts.
    TransientAt {
        /// First failing append's call-count.
        op: u64,
        /// Consecutive failures.
        times: u32,
    },
    /// The next `times` reads **silently** return only half the file —
    /// the `read(2)`-returned-less-than-requested failure mode. A
    /// careful caller detects it by cross-checking [`StorageMedium::len`]
    /// and retries; a careless one replays a truncated log.
    ShortReads {
        /// Reads that come up short before the path clears.
        times: u32,
    },
    /// Read-side operations (`read`, `list`, `len`) fail with
    /// [`IoFault::Transient`] — the EIO-on-read failure mode. Starting
    /// at op `op`, the next `times` read-family calls error, then the
    /// path clears. Recovery must ride this out with the same bounded
    /// deterministic retry appends get, not treat it as fatal.
    ReadTransientAt {
        /// First failing read's call-count.
        op: u64,
        /// Consecutive read-family failures before the path clears.
        times: u32,
    },
}

#[derive(Clone, Debug, Default)]
struct SimFile {
    /// Bytes that survive a crash.
    durable: Vec<u8>,
    /// Bytes appended since the last successful sync.
    volatile: Vec<u8>,
}

/// A deterministic in-memory disk: appended bytes stay volatile until
/// `sync`, an armed [`FaultSpec`] fires on an exact I/O-op count, and
/// [`SimDisk::reboot`] applies the crash's tail policy — everything a
/// crash-matrix harness needs to kill a store at every single injection
/// point and replay recovery.
#[derive(Clone, Debug)]
pub struct SimDisk {
    files: BTreeMap<String, SimFile>,
    fault: Option<FaultSpec>,
    /// I/O operations performed (the injection clock).
    ops: u64,
    crashed: bool,
    short_reads_left: u32,
    read_transient_left: u32,
    fault_hits: u64,
}

impl Default for SimDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl SimDisk {
    /// An empty, fault-free disk.
    pub fn new() -> Self {
        Self {
            files: BTreeMap::new(),
            fault: None,
            ops: 0,
            crashed: false,
            short_reads_left: 0,
            read_transient_left: 0,
            fault_hits: 0,
        }
    }

    /// Arms a fault (replacing any previous one).
    pub fn arm(&mut self, fault: FaultSpec) {
        if let FaultSpec::ShortReads { times } = fault {
            self.short_reads_left = times;
        }
        if let FaultSpec::ReadTransientAt { times, .. } = fault {
            self.read_transient_left = times;
        }
        self.fault = Some(fault);
    }

    /// Fires the armed read-transient fault if `at` is inside its
    /// window; counts down so exactly `times` read-family calls fail.
    fn read_fault(&mut self, at: u64) -> Result<(), IoFault> {
        if let Some(FaultSpec::ReadTransientAt { op, .. }) = self.fault {
            if at >= op && self.read_transient_left > 0 {
                self.read_transient_left -= 1;
                self.fault_hits += 1;
                return Err(IoFault::Transient);
            }
        }
        Ok(())
    }

    /// I/O operations performed so far — the injection clock a crash
    /// matrix sweeps over.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// True once an armed crash fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// How many times the armed fault fired (ENOSPC/transient/short-read
    /// faults count each failed call).
    pub fn fault_hits(&self) -> u64 {
        self.fault_hits
    }

    /// Total durable bytes across files (bench/diagnostic).
    pub fn durable_bytes(&self) -> u64 {
        self.files.values().map(|f| f.durable.len() as u64).sum()
    }

    /// "Reboots the machine" after a crash: applies the crash's
    /// [`TailPolicy`] to every file's volatile tail, clears the crashed
    /// flag and the fault, and returns the disk ready for recovery.
    /// `torn_seed` drives the surviving-prefix length for [`TailPolicy::Torn`].
    ///
    /// # Panics
    /// Panics if no crash fired ([`SimDisk::crashed`] is false).
    pub fn reboot(&mut self, torn_seed: u64) {
        assert!(self.crashed, "reboot without a crash");
        let tail = match self.fault {
            Some(FaultSpec::CrashAt { tail, .. }) => tail,
            _ => TailPolicy::DropAll,
        };
        let mut mix = torn_seed ^ 0x9E37_79B9_7F4A_7C15;
        for file in self.files.values_mut() {
            match tail {
                TailPolicy::DropAll => file.volatile.clear(),
                TailPolicy::Torn => {
                    // Seeded split point per file: keep a strict prefix
                    // (possibly empty, possibly mid-frame).
                    mix ^= mix << 13;
                    mix ^= mix >> 7;
                    mix ^= mix << 17;
                    if !file.volatile.is_empty() {
                        let keep = (mix % (file.volatile.len() as u64 + 1)) as usize;
                        file.volatile.truncate(keep);
                        file.durable.append(&mut file.volatile);
                    }
                }
                TailPolicy::BitFlip { offset, bit } => {
                    if !file.volatile.is_empty() {
                        let at = (offset as usize).min(file.volatile.len() - 1);
                        file.volatile[at] ^= 1 << (bit & 7);
                    }
                    file.durable.append(&mut file.volatile);
                }
            }
            file.volatile.clear();
        }
        // Drop empty-and-never-synced files the way a journaling fs
        // drops uncreated inodes.
        self.files.retain(|_, f| !(f.durable.is_empty() && f.volatile.is_empty()));
        self.crashed = false;
        self.fault = None;
    }

    /// Advances the injection clock; returns an error if a crash fires
    /// at this op or has already fired.
    fn tick(&mut self) -> Result<u64, IoFault> {
        if self.crashed {
            return Err(IoFault::Crashed);
        }
        let at = self.ops;
        self.ops += 1;
        if let Some(FaultSpec::CrashAt { op, .. }) = self.fault {
            if at == op {
                self.crashed = true;
                self.fault_hits += 1;
                return Err(IoFault::Crashed);
            }
        }
        Ok(at)
    }

    fn file_mut(&mut self, name: &str) -> &mut SimFile {
        self.files.entry(name.to_string()).or_default()
    }
}

impl StorageMedium for SimDisk {
    fn create(&mut self, name: &str) -> Result<(), IoFault> {
        self.tick()?;
        let f = self.file_mut(name);
        f.durable.clear();
        f.volatile.clear();
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), IoFault> {
        let at = self.tick()?;
        match self.fault {
            Some(FaultSpec::NoSpaceAt { op, times }) if at >= op && at < op + times as u64 => {
                self.fault_hits += 1;
                return Err(IoFault::NoSpace);
            }
            Some(FaultSpec::TransientAt { op, times }) if at >= op && at < op + times as u64 => {
                self.fault_hits += 1;
                return Err(IoFault::Transient);
            }
            _ => {}
        }
        self.file_mut(name).volatile.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), IoFault> {
        self.tick()?;
        let f = self.files.get_mut(name).ok_or(IoFault::NotFound)?;
        let mut tail = std::mem::take(&mut f.volatile);
        f.durable.append(&mut tail);
        Ok(())
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, IoFault> {
        let at = self.tick()?;
        self.read_fault(at)?;
        let f = self.files.get(name).ok_or(IoFault::NotFound)?;
        // Reads see durable + volatile (the page cache), like a real fs.
        let mut out = f.durable.clone();
        out.extend_from_slice(&f.volatile);
        if self.short_reads_left > 0 {
            self.short_reads_left -= 1;
            self.fault_hits += 1;
            out.truncate(out.len() / 2);
        }
        Ok(out)
    }

    fn delete(&mut self, name: &str) -> Result<(), IoFault> {
        self.tick()?;
        self.files.remove(name);
        Ok(())
    }

    fn list(&mut self) -> Result<Vec<String>, IoFault> {
        let at = self.tick()?;
        self.read_fault(at)?;
        Ok(self.files.keys().cloned().collect())
    }

    fn len(&mut self, name: &str) -> Result<u64, IoFault> {
        let at = self.tick()?;
        self.read_fault(at)?;
        let f = self.files.get(name).ok_or(IoFault::NotFound)?;
        Ok((f.durable.len() + f.volatile.len()) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_disk_round_trip() {
        let mut d = SimDisk::new();
        d.create("a").unwrap();
        d.append("a", b"hello ").unwrap();
        d.append("a", b"world").unwrap();
        assert_eq!(d.read("a").unwrap(), b"hello world");
        assert_eq!(d.len("a").unwrap(), 11);
        d.sync("a").unwrap();
        assert_eq!(d.list().unwrap(), vec!["a".to_string()]);
        d.delete("a").unwrap();
        assert_eq!(d.read("a"), Err(IoFault::NotFound));
    }

    #[test]
    fn crash_drops_unsynced_tail() {
        let mut d = SimDisk::new();
        d.create("w").unwrap();
        d.append("w", b"durable|").unwrap();
        d.sync("w").unwrap();
        d.append("w", b"volatile").unwrap();
        d.arm(FaultSpec::CrashAt { op: d.ops(), tail: TailPolicy::DropAll });
        assert_eq!(d.append("w", b"x"), Err(IoFault::Crashed));
        assert_eq!(d.read("w"), Err(IoFault::Crashed));
        d.reboot(1);
        assert_eq!(d.read("w").unwrap(), b"durable|");
    }

    #[test]
    fn torn_tail_keeps_seeded_prefix() {
        for seed in 0..32u64 {
            let mut d = SimDisk::new();
            d.create("w").unwrap();
            d.append("w", b"AB|").unwrap();
            d.sync("w").unwrap();
            d.append("w", b"0123456789").unwrap();
            d.arm(FaultSpec::CrashAt { op: d.ops(), tail: TailPolicy::Torn });
            assert!(d.sync("w").is_err());
            d.reboot(seed);
            let got = d.read("w").unwrap();
            assert!(got.starts_with(b"AB|"), "durable prefix lost: {got:?}");
            assert!(got.len() <= 13);
            assert_eq!(&got[..], &b"AB|0123456789"[..got.len()]);
        }
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_of_the_tail() {
        let mut d = SimDisk::new();
        d.create("w").unwrap();
        d.append("w", b"dur").unwrap();
        d.sync("w").unwrap();
        d.append("w", &[0u8; 8]).unwrap();
        d.arm(FaultSpec::CrashAt {
            op: d.ops(),
            tail: TailPolicy::BitFlip { offset: 5, bit: 3 },
        });
        assert!(d.sync("w").is_err());
        d.reboot(0);
        let got = d.read("w").unwrap();
        assert_eq!(got.len(), 11);
        assert_eq!(got[3 + 5], 1 << 3);
        assert!(got.iter().skip(3).enumerate().all(|(i, &b)| (i == 5) == (b != 0)));
    }

    #[test]
    fn enospc_fires_for_exactly_n_appends() {
        let mut d = SimDisk::new();
        d.create("w").unwrap();
        d.arm(FaultSpec::NoSpaceAt { op: d.ops(), times: 2 });
        assert_eq!(d.append("w", b"x"), Err(IoFault::NoSpace));
        assert_eq!(d.append("w", b"x"), Err(IoFault::NoSpace));
        assert_eq!(d.append("w", b"x"), Ok(()));
        assert_eq!(d.fault_hits(), 2);
        assert_eq!(d.read("w").unwrap(), b"x");
    }

    #[test]
    fn read_transients_fail_exactly_n_read_ops_then_clear() {
        let mut d = SimDisk::new();
        d.create("w").unwrap();
        d.append("w", b"data").unwrap();
        d.sync("w").unwrap();
        d.arm(FaultSpec::ReadTransientAt { op: d.ops(), times: 3 });
        assert_eq!(d.read("w"), Err(IoFault::Transient));
        assert_eq!(d.list(), Err(IoFault::Transient));
        assert_eq!(d.len("w"), Err(IoFault::Transient));
        // Budget consumed: the path clears for every read-family op.
        assert_eq!(d.read("w").unwrap(), b"data");
        assert_eq!(d.list().unwrap(), vec!["w".to_string()]);
        assert_eq!(d.len("w").unwrap(), 4);
        // Writes were never in scope for the read fault.
        assert_eq!(d.fault_hits(), 3);
    }

    #[test]
    fn read_transients_do_not_fire_before_their_op() {
        let mut d = SimDisk::new();
        d.create("w").unwrap();
        d.append("w", b"x").unwrap();
        d.arm(FaultSpec::ReadTransientAt { op: d.ops() + 1, times: 1 });
        assert_eq!(d.read("w").unwrap(), b"x"); // at == op-1: clean
        assert_eq!(d.read("w"), Err(IoFault::Transient));
        assert_eq!(d.read("w").unwrap(), b"x");
    }

    #[test]
    fn short_reads_silently_truncate_then_clear() {
        let mut d = SimDisk::new();
        d.create("w").unwrap();
        d.append("w", b"data").unwrap();
        d.arm(FaultSpec::ShortReads { times: 1 });
        assert_eq!(d.read("w").unwrap(), b"da");
        assert_eq!(d.read("w").unwrap(), b"data");
        assert_eq!(d.fault_hits(), 1);
    }
}
