//! The durable key-value store: WAL → memtable → immutable runs.
//!
//! ## Commit protocol
//! [`DurableStore::put`] / [`DurableStore::delete`] append `Put` /
//! `Delete` frames and stage the mutation; nothing is visible or owed to
//! the caller yet. [`DurableStore::commit`] appends a `Commit` frame and
//! drives an fsync barrier — only when that returns `Ok` is the batch
//! **acknowledged**, and only then does it enter the memtable. Recovery
//! mirrors this exactly: replayed records are buffered until their
//! `Commit` frame, so an uncommitted tail can never surface.
//!
//! ## Flush protocol
//! [`DurableStore::flush`] freezes the memtable into a sorted immutable
//! run (written and fsynced **before** anything else changes), then
//! rotates the WAL onto a fresh segment, writes a durable
//! `Checkpoint { run_id, flushed_through }` frame there, GCs the old
//! segments, and clears the memtable. A crash between any two of those
//! steps is safe: an orphaned run without its checkpoint merely
//! duplicates data the WAL still holds (replay is idempotent — the run
//! stores the same latest values the records rebuild), and a torn run
//! fails its footer CRC and is ignored, its data still in the un-GC'd
//! log.
//!
//! ## Reads
//! [`DurableStore::get`] checks the memtable, then runs newest-first
//! through their gated learned indexes. [`DurableStore::committed_state`]
//! folds everything into the canonical map the oracle compares against.

use std::collections::BTreeMap;

use super::medium::{IoFault, StorageMedium};
use super::run::{self, Run, RunEntry, RunError};
use super::wal::{Wal, WalConfig, WalError, WalRecord};

/// Knobs for the durable store.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// WAL knobs, including the protection switches.
    pub wal: WalConfig,
    /// Flush the memtable once it holds this many distinct keys.
    pub memtable_limit: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { wal: WalConfig::default(), memtable_limit: 1024 }
    }
}

/// Staged or applied state of one key in the memtable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemVal {
    Put(u64),
    Tombstone,
}

/// What [`DurableStore::open`] found while recovering.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// WAL segments scanned.
    pub wal_segments: u32,
    /// Whole, valid WAL records replayed.
    pub wal_records: u64,
    /// Whether replay stopped at a torn/corrupt tail.
    pub torn_tail: bool,
    /// Put/Delete records dropped because their commit frame never made
    /// it to the log (the batch was never acknowledged).
    pub uncommitted_dropped: u64,
    /// Valid runs loaded.
    pub runs_loaded: u32,
    /// Run files ignored for failing their footer CRC (torn flushes).
    pub runs_rejected: u32,
}

/// The durable store over any [`StorageMedium`].
#[derive(Debug)]
pub struct DurableStore<M: StorageMedium> {
    medium: M,
    wal: Wal,
    cfg: StoreConfig,
    /// Acknowledged, un-flushed state.
    memtable: BTreeMap<u64, MemVal>,
    /// Appended but not yet committed.
    pending: Vec<(u64, MemVal)>,
    /// Immutable runs, oldest first.
    runs: Vec<Run>,
    next_run_id: u32,
    /// Highest sequence number folded into runs.
    flushed_through: u64,
    /// Acknowledged commits (fsync returned) this process lifetime.
    acked_commits: u64,
}

impl<M: StorageMedium> DurableStore<M> {
    /// Creates a fresh store (empty WAL, no runs) on `medium`.
    pub fn create(mut medium: M, cfg: StoreConfig) -> Result<Self, WalError> {
        let wal = Wal::create(&mut medium, cfg.wal)?;
        Ok(Self {
            medium,
            wal,
            cfg,
            memtable: BTreeMap::new(),
            pending: Vec::new(),
            runs: Vec::new(),
            next_run_id: 0,
            flushed_through: 0,
            acked_commits: 0,
        })
    }

    /// Opens a store on a medium that may hold a previous life's state,
    /// replaying the WAL against the surviving runs.
    pub fn open(mut medium: M, cfg: StoreConfig) -> Result<(Self, RecoveryReport), WalError> {
        let mut report = RecoveryReport::default();

        // Load every run file that verifies; torn flushes are ignored
        // (their records are still in the WAL). Transient read errors
        // and silent short reads are retried under the WAL's bounded
        // deterministic policy; if they persist past the retry budget
        // they surface as a clean error rather than silently dropping
        // the run — after a checkpoint GC'd the log, a dropped run is
        // lost data, not a recoverable artifact.
        let mut backoff = 0u64;
        let names = Wal::retry_read_io(&cfg.wal, &mut backoff, &mut medium, |m| m.list())?;
        let mut runs: Vec<Run> = Vec::new();
        for name in names.iter().filter(|n| run::parse_run_name(n).is_some()) {
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                match run::load_run(&mut medium, name, cfg.wal.checksums) {
                    Ok(r) => {
                        runs.push(r);
                        break;
                    }
                    Err(RunError::Io(IoFault::Crashed)) => return Err(WalError::MediumCrashed),
                    Err(RunError::Io(e @ (IoFault::ShortRead | IoFault::Transient)))
                        if cfg.wal.read_retry || e == IoFault::Transient =>
                    {
                        ml4db_obs::counter_add("wal.read_errors", 1);
                        if attempts > cfg.wal.retry_limit {
                            return Err(WalError::Transient { attempts });
                        }
                        backoff += 1u64 << (attempts - 1).min(16);
                    }
                    Err(_) => {
                        report.runs_rejected += 1;
                        break;
                    }
                }
            }
        }
        runs.sort_by_key(Run::id);
        report.runs_loaded = runs.len() as u32;
        let next_run_id = runs.last().map(|r| r.id() + 1).unwrap_or(0);

        // Replay the WAL, folding committed batches into the memtable
        // and honouring checkpoints (records at or below the flush
        // high-water mark are already in runs).
        let (mut wal, replay) = Wal::recover(&mut medium, cfg.wal)?;
        wal.absorb_backoff(backoff);
        report.wal_segments = replay.segments;
        report.wal_records = replay.records.len() as u64;
        report.torn_tail = replay.torn_tail;

        let flushed_through = replay
            .records
            .iter()
            .filter_map(|r| match *r {
                WalRecord::Checkpoint { flushed_through, .. } => Some(flushed_through),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        // Drop runs newer than any checkpoint acknowledges *only if*
        // they failed verification — a valid orphan run (crash after
        // run fsync, before checkpoint) stays: replaying its records
        // again from the WAL is idempotent.

        let mut memtable = BTreeMap::new();
        let mut staged: Vec<(u64, MemVal)> = Vec::new();
        for rec in &replay.records {
            match *rec {
                WalRecord::Put { seq, key, value } => {
                    if seq > flushed_through {
                        staged.push((key, MemVal::Put(value)));
                    }
                }
                WalRecord::Delete { seq, key } => {
                    if seq > flushed_through {
                        staged.push((key, MemVal::Tombstone));
                    }
                }
                WalRecord::Commit { .. } => {
                    for (k, v) in staged.drain(..) {
                        memtable.insert(k, v);
                    }
                }
                WalRecord::Checkpoint { .. } => {}
            }
        }
        report.uncommitted_dropped = staged.len() as u64;

        let (segments, records, torn, dropped) = (
            report.wal_segments,
            report.wal_records,
            report.torn_tail,
            report.uncommitted_dropped,
        );
        ml4db_obs::counter_add("wal.replays", 1);
        ml4db_obs::counter_add("wal.replayed_records", records);
        ml4db_obs::emit_with(move || ml4db_obs::Event::WalReplay {
            segments,
            records,
            torn_tail: torn,
            uncommitted_dropped: dropped,
        });

        let store = Self {
            medium,
            wal,
            cfg,
            memtable,
            pending: Vec::new(),
            runs,
            next_run_id,
            flushed_through,
            acked_commits: 0,
        };
        Ok((store, report))
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Immutable runs, oldest first.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The WAL appender (segment counts, retry stats).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Gives the harness direct access to the medium (fault arming,
    /// op counting). The store is single-threaded by design; callers
    /// must not mutate files the store owns.
    pub fn medium_mut(&mut self) -> &mut M {
        &mut self.medium
    }

    /// Read-only view of the medium (snapshotting in tests).
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Consumes the store, returning the medium (for reboot simulation).
    pub fn into_medium(self) -> M {
        self.medium
    }

    /// Acknowledged commits since this store instance started.
    pub fn acked_commits(&self) -> u64 {
        self.acked_commits
    }

    /// Highest sequence folded into runs.
    pub fn flushed_through(&self) -> u64 {
        self.flushed_through
    }

    /// Distinct keys currently staged in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Stages an upsert in the current batch.
    pub fn put(&mut self, key: u64, value: u64) -> Result<(), WalError> {
        let seq = self.wal.alloc_seq();
        self.wal.append(&mut self.medium, &WalRecord::Put { seq, key, value })?;
        self.pending.push((key, MemVal::Put(value)));
        Ok(())
    }

    /// Stages a delete in the current batch.
    pub fn delete(&mut self, key: u64) -> Result<(), WalError> {
        let seq = self.wal.alloc_seq();
        self.wal.append(&mut self.medium, &WalRecord::Delete { seq, key })?;
        self.pending.push((key, MemVal::Tombstone));
        Ok(())
    }

    /// Commits the staged batch: `Commit` frame + fsync barrier. On
    /// `Ok` the batch is acknowledged and visible; on `Err` the caller
    /// must treat it as unacknowledged (it may or may not survive a
    /// crash — prefix consistency, not atomic visibility, is the
    /// contract for in-flight batches).
    pub fn commit(&mut self) -> Result<u64, WalError> {
        let seq = self.wal.alloc_seq();
        self.wal.append(&mut self.medium, &WalRecord::Commit { seq })?;
        self.wal.sync(&mut self.medium)?;
        for (k, v) in self.pending.drain(..) {
            self.memtable.insert(k, v);
        }
        self.acked_commits += 1;
        ml4db_obs::counter_add("store.commits", 1);
        if self.memtable.len() >= self.cfg.memtable_limit {
            self.flush()?;
        }
        Ok(seq)
    }

    /// Freezes the memtable into a new immutable run and truncates the
    /// log under it. See the module docs for the crash-safety argument.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let entries: Vec<RunEntry> = self
            .memtable
            .iter()
            .map(|(&key, &v)| match v {
                MemVal::Put(value) => RunEntry::Put { key, value },
                MemVal::Tombstone => RunEntry::Tombstone { key },
            })
            .collect();
        let run_id = self.next_run_id;
        let run = match run::write_run(
            &mut self.medium,
            run_id,
            entries,
            self.cfg.wal.fsync_barriers,
        ) {
            Ok(r) => r,
            Err(IoFault::Crashed) => return Err(WalError::MediumCrashed),
            Err(IoFault::NoSpace) => return Err(WalError::NoSpace { attempts: 1 }),
            Err(_) => return Err(WalError::Transient { attempts: 1 }),
        };
        // The run is durable; everything up to the last assigned seq is
        // covered by it plus older runs.
        let flushed_through = self.wal.next_seq().saturating_sub(1);
        let seq = self.wal.alloc_seq();
        self.wal.rotate(&mut self.medium)?;
        self.wal.append(
            &mut self.medium,
            &WalRecord::Checkpoint { seq, run_id, flushed_through },
        )?;
        self.wal.sync(&mut self.medium)?;
        self.wal.gc_below_active(&mut self.medium)?;
        self.runs.push(run);
        self.next_run_id += 1;
        self.flushed_through = flushed_through;
        self.memtable.clear();
        Ok(())
    }

    /// Reads the committed value of `key` (memtable first, then runs
    /// newest-first through their gated indexes).
    pub fn get(&self, key: u64) -> Option<u64> {
        match self.memtable.get(&key) {
            Some(MemVal::Put(v)) => return Some(*v),
            Some(MemVal::Tombstone) => return None,
            None => {}
        }
        for run in self.runs.iter().rev() {
            match run.get(key) {
                Some(RunEntry::Put { value, .. }) => return Some(value),
                Some(RunEntry::Tombstone { .. }) => return None,
                None => {}
            }
        }
        None
    }

    /// The full committed state as a map — the canonical form the
    /// oracle's reference is compared against.
    pub fn committed_state(&self) -> BTreeMap<u64, u64> {
        let mut state = BTreeMap::new();
        for run in &self.runs {
            for e in run.entries() {
                match *e {
                    RunEntry::Put { key, value } => {
                        state.insert(key, value);
                    }
                    RunEntry::Tombstone { key } => {
                        state.remove(&key);
                    }
                }
            }
        }
        for (&k, &v) in &self.memtable {
            match v {
                MemVal::Put(value) => {
                    state.insert(k, value);
                }
                MemVal::Tombstone => {
                    state.remove(&k);
                }
            }
        }
        state
    }

    /// All committed `(key, value)` pairs with keys in `[lo, hi]`,
    /// merged across memtable and runs via the probe path.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut merged: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for run in &self.runs {
            for e in run.range(lo, hi) {
                match *e {
                    RunEntry::Put { key, value } => {
                        merged.insert(key, Some(value));
                    }
                    RunEntry::Tombstone { key } => {
                        merged.insert(key, None);
                    }
                }
            }
        }
        for (&k, &v) in self.memtable.range(lo..=hi) {
            match v {
                MemVal::Put(value) => {
                    merged.insert(k, Some(value));
                }
                MemVal::Tombstone => {
                    merged.insert(k, None);
                }
            }
        }
        merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::medium::SimDisk;
    use super::*;

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            wal: WalConfig { segment_bytes: 256, ..WalConfig::default() },
            memtable_limit: 16,
        }
    }

    #[test]
    fn commit_then_reopen_preserves_state() {
        let mut store = DurableStore::create(SimDisk::new(), small_cfg()).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..100u64 {
            store.put(i, i * 2).unwrap();
            model.insert(i, i * 2);
            if i % 5 == 4 {
                store.delete(i - 2).unwrap();
                model.remove(&(i - 2));
            }
            store.commit().unwrap();
        }
        assert!(!store.runs().is_empty(), "memtable_limit should have forced flushes");
        assert_eq!(store.committed_state(), model);

        let disk = store.into_medium();
        let (reopened, report) = DurableStore::open(disk, small_cfg()).unwrap();
        assert_eq!(reopened.committed_state(), model);
        assert_eq!(report.uncommitted_dropped, 0);
        assert!(!report.torn_tail);
        for (&k, &v) in &model {
            assert_eq!(reopened.get(k), Some(v));
        }
    }

    #[test]
    fn uncommitted_tail_never_surfaces() {
        let mut store = DurableStore::create(SimDisk::new(), small_cfg()).unwrap();
        store.put(1, 10).unwrap();
        store.commit().unwrap();
        // Staged but never committed.
        store.put(2, 20).unwrap();
        store.delete(1).unwrap();
        let disk = store.into_medium();
        let (reopened, report) = DurableStore::open(disk, small_cfg()).unwrap();
        assert_eq!(report.uncommitted_dropped, 2);
        assert_eq!(reopened.get(1), Some(10));
        assert_eq!(reopened.get(2), None);
    }

    #[test]
    fn flush_survives_reopen_and_gc_keeps_log_bounded() {
        let mut store = DurableStore::create(SimDisk::new(), small_cfg()).unwrap();
        for i in 0..200u64 {
            store.put(i, i + 1).unwrap();
            store.commit().unwrap();
        }
        store.flush().unwrap();
        assert!(store.wal().num_segments() <= 1, "GC left old segments behind");
        let model = store.committed_state();
        let (reopened, _) = DurableStore::open(store.into_medium(), small_cfg()).unwrap();
        assert_eq!(reopened.committed_state(), model);
    }

    #[test]
    fn range_merges_runs_and_memtable() {
        let mut store = DurableStore::create(SimDisk::new(), small_cfg()).unwrap();
        for i in 0..50u64 {
            store.put(i, i).unwrap();
            store.commit().unwrap();
        }
        store.flush().unwrap();
        // Overwrite and delete some keys post-flush (stay in memtable).
        store.put(10, 999).unwrap();
        store.delete(11).unwrap();
        store.commit().unwrap();
        let got = store.range(8, 13);
        assert_eq!(got, vec![(8, 8), (9, 9), (10, 999), (12, 12), (13, 13)]);
    }
}
