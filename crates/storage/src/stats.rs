//! Database statistics: equi-depth histograms, most-common values, distinct
//! counts, and reservoir samples — the "database statistics" feature family
//! of the query-plan-representation foundation (§3.1) and the inputs of the
//! classical cardinality estimator.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::table::{ColumnData, Table};

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;
/// Number of most-common values tracked.
pub const MCV_ENTRIES: usize = 8;
/// Reservoir sample size.
pub const SAMPLE_SIZE: usize = 100;

/// An equi-depth histogram over a numeric column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// Ascending bucket boundaries; bucket `i` covers
    /// `[bounds[i], bounds[i+1])` (last bucket inclusive).
    pub bounds: Vec<f64>,
    /// Rows per bucket (equi-depth: roughly equal).
    pub counts: Vec<u64>,
    /// Total rows.
    pub total: u64,
}

impl Histogram {
    /// Builds an equi-depth histogram from column values.
    pub fn build(values: &[f64], buckets: usize) -> Self {
        let total = values.len() as u64;
        if values.is_empty() {
            return Self { bounds: vec![0.0, 0.0], counts: vec![0], total: 0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let buckets = buckets.clamp(1, sorted.len());
        let per = sorted.len() as f64 / buckets as f64;
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        bounds.push(sorted[0]);
        let mut prev_idx = 0usize;
        for b in 1..=buckets {
            let idx = ((b as f64 * per).round() as usize).clamp(prev_idx + 1, sorted.len());
            let bound = if idx >= sorted.len() {
                sorted[sorted.len() - 1]
            } else {
                sorted[idx]
            };
            bounds.push(bound);
            counts.push((idx - prev_idx) as u64);
            prev_idx = idx;
            if prev_idx >= sorted.len() {
                break;
            }
        }
        // Merge any leftover tail into the last bucket.
        if prev_idx < sorted.len() {
            *counts.last_mut().expect("non-empty") += (sorted.len() - prev_idx) as u64;
            *bounds.last_mut().expect("non-empty") = sorted[sorted.len() - 1];
        }
        Self { bounds, counts, total }
    }

    /// Estimated selectivity of `value <= x` (CDF), in `[0, 1]`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // Accumulate in f64: truncating the partial-bucket mass to whole
        // rows biases selectivity low and breaks additivity of adjacent
        // ranges (the in-bucket interpolation is fractional by design).
        let mut acc = 0.0f64;
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x >= hi {
                acc += count as f64;
            } else if x >= lo {
                let frac = if hi > lo { (x - lo) / (hi - lo) } else { 1.0 };
                acc += count as f64 * frac;
                break;
            } else {
                break;
            }
        }
        (acc / self.total as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `lo <= value <= hi`.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo) + self.eq_selectivity(lo)).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `value = x` (uniform within bucket).
    pub fn eq_selectivity(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            let last = i + 1 == self.counts.len();
            if x >= lo && (x < hi || (last && x <= hi)) {
                // Assume ~uniform distinct values inside the bucket; use a
                // conservative per-bucket distinct guess.
                let width = (hi - lo).max(1.0);
                let sel = count as f64 / self.total as f64 / width.min(count as f64).max(1.0);
                return sel.clamp(0.0, 1.0);
            }
        }
        0.0
    }

    /// Domain minimum.
    pub fn min(&self) -> f64 {
        *self.bounds.first().expect("bounds non-empty")
    }

    /// Domain maximum.
    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("bounds non-empty")
    }
}

/// Per-column statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Equi-depth histogram.
    pub histogram: Histogram,
    /// `(value, frequency)` of the most common values, descending.
    pub mcv: Vec<(f64, u64)>,
    /// Exact distinct count.
    pub distinct: u64,
    /// Uniform sample of values.
    pub sample: Vec<f64>,
}

impl ColumnStats {
    /// Computes statistics for one column.
    pub fn build<R: Rng + ?Sized>(col: &ColumnData, rng: &mut R) -> Self {
        let values: Vec<f64> = (0..col.len()).map(|i| col.get_f64(i)).collect();
        let histogram = Histogram::build(&values, HISTOGRAM_BUCKETS);
        // Frequencies (on the f64 bit pattern; columns are well-behaved).
        let mut freq = std::collections::HashMap::new();
        for &v in &values {
            *freq.entry(v.to_bits()).or_insert(0u64) += 1;
        }
        let distinct = freq.len() as u64;
        let mut mcv: Vec<(f64, u64)> =
            freq.into_iter().map(|(bits, c)| (f64::from_bits(bits), c)).collect();
        mcv.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)));
        mcv.truncate(MCV_ENTRIES);
        // Reservoir sample.
        let mut sample = Vec::with_capacity(SAMPLE_SIZE.min(values.len()));
        for (i, &v) in values.iter().enumerate() {
            if sample.len() < SAMPLE_SIZE {
                sample.push(v);
            } else {
                let j = rng.gen_range(0..=i);
                if j < SAMPLE_SIZE {
                    sample[j] = v;
                }
            }
        }
        Self { histogram, mcv, distinct, sample }
    }
}

/// Table-level statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for every column of a table.
    pub fn build<R: Rng + ?Sized>(table: &Table, rng: &mut R) -> Self {
        Self {
            rows: table.num_rows() as u64,
            columns: table.columns.iter().map(|c| ColumnStats::build(c, rng)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_uniform_cdf() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 16);
        assert!((h.cdf(500.0) - 0.5).abs() < 0.05);
        assert!(h.cdf(-1.0) < 0.01);
        assert!(h.cdf(2000.0) > 0.99);
    }

    #[test]
    fn histogram_equi_depth_on_skew() {
        // Heavy skew: equi-depth buckets get narrower near the mode.
        let mut values = vec![0.0f64; 900];
        values.extend((1..=100).map(|i| i as f64 * 10.0));
        let h = Histogram::build(&values, 10);
        // 90% of mass at 0 → CDF at tiny epsilon is already large.
        assert!(h.cdf(0.5) > 0.5, "cdf(0.5) = {}", h.cdf(0.5));
    }

    #[test]
    fn range_selectivity_sane() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let h = Histogram::build(&values, 20);
        let sel = h.range_selectivity(10.0, 19.0);
        assert!((sel - 0.1).abs() < 0.07, "sel {sel}");
        assert_eq!(h.range_selectivity(50.0, 10.0), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(&[], 8);
        assert_eq!(h.cdf(0.0), 0.0);
        assert_eq!(h.range_selectivity(0.0, 10.0), 0.0);
    }

    #[test]
    fn column_stats_mcv_and_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let col = ColumnData::Int(vec![1, 1, 1, 2, 2, 3]);
        let s = ColumnStats::build(&col, &mut rng);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.mcv[0], (1.0, 3));
        assert_eq!(s.mcv[1], (2.0, 2));
    }

    #[test]
    fn sample_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let col = ColumnData::Int((0..10_000).collect());
        let s = ColumnStats::build(&col, &mut rng);
        assert_eq!(s.sample.len(), SAMPLE_SIZE);
    }

    proptest! {
        /// CDF is monotone and bounded in [0,1] for arbitrary data.
        #[test]
        fn cdf_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let h = Histogram::build(&values, 16);
            let mut probes: Vec<f64> = values.clone();
            probes.push(-2e6);
            probes.push(2e6);
            probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = -1.0;
            for &p in &probes {
                let c = h.cdf(p);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c + 1e-9 >= prev, "cdf not monotone at {p}: {c} < {prev}");
                prev = c;
            }
        }

        /// Bucket counts sum to the row count.
        #[test]
        fn counts_sum(values in proptest::collection::vec(-1e3f64..1e3, 1..300)) {
            let h = Histogram::build(&values, 8);
            prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        }
    }
}
