//! Learned secondary indexes over table columns.
//!
//! A [`SecondaryIndex`] maps a column to a postings layout — distinct
//! encoded keys, per-key offsets, and row ids grouped by key — with a
//! [`PgmCore`] (two-phase `predict_range`) over the key array. Because row
//! ids for one key form a contiguous run, an equality probe returns a
//! borrowed `&[u32]` slice with **zero allocation**: model prediction,
//! last-mile search over the borrowed key column, slice the run. Range
//! probes return one contiguous slice covering every matching key.
//!
//! Column values are `f64` (ints widen), so keys are stored in an
//! order-preserving `u64` encoding ([`encode_f64`]) that makes integer
//! comparison agree with `f64` ordering.

use ml4db_index::search::last_mile_search_keys;
use ml4db_index::PgmCore;

use crate::table::ColumnData;

/// Order-preserving encoding of an `f64` into a `u64`: for any two non-NaN
/// floats `a < b` iff `encode_f64(a) < encode_f64(b)`.
///
/// `-0.0` is normalized to `0.0` first (they compare equal as floats, so
/// they must encode equal — the same rule as `Value::hash_key`). NaNs
/// encode above `+inf` (positive NaN) or below `-inf` (negative NaN), so
/// any range probe with finite or infinite bounds excludes them — matching
/// the executor's predicate semantics, where every comparison with NaN is
/// false.
#[inline]
pub fn encode_f64(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// ε for the per-index PGM core: small enough that last-mile windows fit a
/// few cache lines, large enough that segments stay coarse.
const INDEX_EPSILON: usize = 16;

/// A learned secondary index over one column: postings grouped by distinct
/// key with a PGM model over the key array.
#[derive(Clone, Debug)]
pub struct SecondaryIndex {
    /// Distinct encoded keys, ascending.
    keys: Vec<u64>,
    /// `offsets[k]..offsets[k + 1]` is key `k`'s run in `row_ids`
    /// (`keys.len() + 1` entries).
    offsets: Vec<u32>,
    /// Row ids grouped by key ascending; ascending within each run.
    row_ids: Vec<u32>,
    /// Two-phase model over `keys`.
    core: PgmCore,
}

impl SecondaryIndex {
    /// Builds the index over a column.
    pub fn build(col: &ColumnData) -> Self {
        let n = col.len();
        assert!(n <= u32::MAX as usize, "SecondaryIndex: > u32::MAX rows");
        let mut pairs: Vec<(u64, u32)> =
            (0..n).map(|i| (encode_f64(col.get_f64(i)), i as u32)).collect();
        // Sorting (key, row_id) groups by key with ascending row ids per run.
        pairs.sort_unstable();
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut row_ids = Vec::with_capacity(n);
        for (k, r) in pairs {
            if keys.last() != Some(&k) {
                keys.push(k);
                offsets.push(row_ids.len() as u32);
            }
            row_ids.push(r);
        }
        offsets.push(row_ids.len() as u32);
        let core = PgmCore::build(&keys, INDEX_EPSILON);
        Self { keys, offsets, row_ids, core }
    }

    /// Number of rows indexed.
    pub fn num_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Structural footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * 8 + self.offsets.len() * 4 + self.row_ids.len() * 4
            + self.core.size_bytes()
    }

    /// First index in `keys` whose key is `>= ek` (two-phase: model window,
    /// then last-mile over the borrowed key column).
    #[inline]
    fn key_lower_bound(&self, ek: u64) -> usize {
        let (lo, hi) = self.core.predict_range(ek);
        match last_mile_search_keys(&self.keys, ek, lo, hi) {
            Ok(i) | Err(i) => i,
        }
    }

    /// Row ids whose column value equals `v`, as a borrowed run — zero
    /// allocation. Empty for NaN (never equal to anything) and absent keys.
    #[inline]
    pub fn probe_eq(&self, v: f64) -> &[u32] {
        if v.is_nan() {
            return &[];
        }
        let ek = encode_f64(v);
        let (lo, hi) = self.core.predict_range(ek);
        match last_mile_search_keys(&self.keys, ek, lo, hi) {
            Ok(i) => &self.row_ids[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Row ids whose column value lies in `[lo, hi]`, as one borrowed
    /// contiguous slice (grouped by key, **not** sorted by row id). Empty
    /// when the range is empty or either bound is NaN.
    pub fn range_rows(&self, lo: f64, hi: f64) -> &[u32] {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return &[];
        }
        let ki_lo = self.key_lower_bound(encode_f64(lo));
        let ek_hi = encode_f64(hi);
        // Distinct keys: upper bound is the lower bound nudged past an
        // exact hit.
        let ki_hi = match {
            let (wlo, whi) = self.core.predict_range(ek_hi);
            last_mile_search_keys(&self.keys, ek_hi, wlo, whi)
        } {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        if ki_lo >= ki_hi {
            return &[];
        }
        &self.row_ids[self.offsets[ki_lo] as usize..self.offsets[ki_hi] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_preserves_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            0.0,
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(encode_f64(w[0]) < encode_f64(w[1]), "{} vs {}", w[0], w[1]);
        }
        // -0.0 and 0.0 compare equal as floats, so they must encode equal.
        assert_eq!(encode_f64(-0.0), encode_f64(0.0));
        // NaN sorts outside the infinities, so ranges never include it.
        assert!(encode_f64(f64::NAN) > encode_f64(f64::INFINITY));
    }

    fn col(values: &[i64]) -> ColumnData {
        ColumnData::Int(values.to_vec())
    }

    #[test]
    fn probe_eq_returns_ascending_run() {
        let c = col(&[5, 3, 5, 1, 5, 3]);
        let idx = SecondaryIndex::build(&c);
        assert_eq!(idx.probe_eq(5.0), &[0, 2, 4]);
        assert_eq!(idx.probe_eq(3.0), &[1, 5]);
        assert_eq!(idx.probe_eq(1.0), &[3]);
        assert_eq!(idx.probe_eq(2.0), &[] as &[u32]);
        assert_eq!(idx.probe_eq(f64::NAN), &[] as &[u32]);
        assert_eq!(idx.num_rows(), 6);
        assert_eq!(idx.num_keys(), 3);
    }

    #[test]
    fn range_rows_matches_scan() {
        let values: Vec<i64> = (0..5000).map(|i| (i * 37) % 251 - 100).collect();
        let c = col(&values);
        let idx = SecondaryIndex::build(&c);
        for (lo, hi) in [(-50.0, 50.0), (-200.0, 300.0), (10.0, 10.0), (40.0, 20.0)] {
            let mut got: Vec<u32> = idx.range_rows(lo, hi).to_vec();
            got.sort_unstable();
            let expected: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|&(_, &v)| (v as f64) >= lo && (v as f64) <= hi)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, expected, "range [{lo}, {hi}]");
        }
        assert!(idx.range_rows(f64::NAN, 10.0).is_empty());
        assert!(idx.range_rows(0.0, f64::NAN).is_empty());
    }

    #[test]
    fn negative_and_zero_keys() {
        let c = ColumnData::Float(vec![-2.5, -0.0, 0.0, 2.5, -2.5]);
        let idx = SecondaryIndex::build(&c);
        // -0.0 and 0.0 share a key.
        assert_eq!(idx.probe_eq(0.0), &[1, 2]);
        assert_eq!(idx.probe_eq(-0.0), &[1, 2]);
        assert_eq!(idx.probe_eq(-2.5), &[0, 4]);
        let mut r: Vec<u32> = idx.range_rows(-3.0, 0.0).to_vec();
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 4]);
    }

    #[test]
    fn large_index_probe_everything() {
        let values: Vec<i64> = (0..50_000).map(|i| (i * 7919) % 10_007).collect();
        let c = col(&values);
        let idx = SecondaryIndex::build(&c);
        for probe in (0..10_007).step_by(97) {
            let expected: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v == probe)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(idx.probe_eq(probe as f64), expected.as_slice(), "probe {probe}");
        }
    }
}
