//! Zero-shot cost models (Hilprecht & Binnig \[11\]): disentangle
//! database-agnostic from database-specific features. A model trained on
//! **statistics-only** plan features (injected cardinality/cost estimates,
//! no table or column identities) transfers to an unseen database out of
//! the box; a model trained with identity features does not.

use rand::Rng;

use ml4db_plan::{PlanNode, Query};
use ml4db_repr::{featurize_plan, CostRegressor, FeatureConfig, TreeModelKind, NODE_DIM};
use ml4db_storage::Database;

use crate::corpus::LabeledCorpus;

/// A zero-shot cost model.
pub struct ZeroShotModel {
    /// The underlying regressor.
    pub model: CostRegressor,
    /// The feature configuration used (statistics-only for true zero-shot).
    pub features: FeatureConfig,
}

impl ZeroShotModel {
    /// Creates a zero-shot model (statistics-only features).
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            model: CostRegressor::new(TreeModelKind::TreeCnn, NODE_DIM, 24, rng),
            features: FeatureConfig::statistics_only(),
        }
    }

    /// A database-specific control model (semantic features included) for
    /// the transfer comparison.
    pub fn new_db_specific<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            model: CostRegressor::new(TreeModelKind::TreeCnn, NODE_DIM, 24, rng),
            features: FeatureConfig::full(),
        }
    }

    /// Trains on a labeled corpus from (possibly several) source databases.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        corpus: &LabeledCorpus,
        epochs: usize,
        rng: &mut R,
    ) {
        let data: Vec<(ml4db_nn::Tree, f64)> = corpus
            .items
            .iter()
            .map(|(db, q, p, lat)| (featurize_plan(db, q, p, self.features), *lat))
            .collect();
        self.model.fit(&data, epochs, 0.005, rng);
    }

    /// Predicted latency on an arbitrary (possibly unseen) database —
    /// cardinality estimates are injected through the plan annotations, the
    /// zero-shot channel.
    pub fn predict(&self, db: &Database, query: &Query, plan: &PlanNode) -> f64 {
        self.model
            .predict_latency(&featurize_plan(db, query, plan, self.features))
    }

    /// Rank correlation of predictions vs true latencies on a corpus (the
    /// transfer metric).
    pub fn eval_rank(&self, corpus: &LabeledCorpus) -> f64 {
        let preds: Vec<f64> = corpus
            .items
            .iter()
            .map(|(db, q, p, _)| self.predict(db, q, p))
            .collect();
        let truth: Vec<f64> = corpus.items.iter().map(|(_, _, _, l)| *l).collect();
        ml4db_nn::metrics::spearman(&preds, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use ml4db_storage::datasets::{joblite, tpchlite, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_only_model_transfers_across_schemas() {
        let mut rng = StdRng::seed_from_u64(7);
        let db_a = Database::analyze(
            joblite(&DatasetConfig { base_rows: 100, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let db_b = Database::analyze(
            tpchlite(&DatasetConfig { base_rows: 80, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let train = build_corpus(
            &db_a,
            &ml4db_datagen::SchemaGraph::joblite(),
            25,
            2,
            &mut rng,
        );
        let test = build_corpus(
            &db_b,
            &ml4db_datagen::SchemaGraph::tpchlite(),
            12,
            2,
            &mut rng,
        );
        let mut zero = ZeroShotModel::new(&mut rng);
        zero.train(&train, 25, &mut rng);
        let transfer_corr = zero.eval_rank(&test);
        assert!(
            transfer_corr > 0.5,
            "zero-shot transfer correlation too low: {transfer_corr}"
        );
    }

    #[test]
    fn zero_shot_beats_db_specific_on_unseen_database() {
        let mut rng = StdRng::seed_from_u64(8);
        let db_a = Database::analyze(
            joblite(&DatasetConfig { base_rows: 100, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let db_b = Database::analyze(
            tpchlite(&DatasetConfig { base_rows: 80, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let train =
            build_corpus(&db_a, &ml4db_datagen::SchemaGraph::joblite(), 25, 2, &mut rng);
        let test =
            build_corpus(&db_b, &ml4db_datagen::SchemaGraph::tpchlite(), 12, 2, &mut rng);
        let mut zero = ZeroShotModel::new(&mut rng);
        zero.train(&train, 25, &mut rng);
        let mut specific = ZeroShotModel::new_db_specific(&mut rng);
        specific.train(&train, 25, &mut rng);
        let z = zero.eval_rank(&test);
        let s = specific.eval_rank(&test);
        assert!(
            z >= s - 0.05,
            "zero-shot ({z}) should transfer at least as well as db-specific ({s})"
        );
    }
}
