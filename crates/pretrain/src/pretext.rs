//! Unsupervised pretraining of plan encoders (Paul et al. \[35\]): a masked
//! feature-reconstruction pretext task over unlabeled plans — no execution
//! traces needed — after which the encoder fine-tunes to any downstream
//! task from few labeled examples.

use rand::Rng;

use ml4db_nn::layers::{Activation, Linear, Mlp};
use ml4db_nn::optim::{Adam, Optimizer};
use ml4db_nn::{loss, Matrix, Trainable, Tree};
use ml4db_repr::{CostRegressor, PlanEncoder, TreeModelKind};

/// Fraction of nodes whose features are masked during pretraining.
const MASK_FRACTION: f64 = 0.3;

/// An encoder paired with a reconstruction decoder for pretraining.
pub struct PretrainedEncoder {
    /// The plan encoder being pretrained.
    pub encoder: PlanEncoder,
    decoder: Linear,
    in_dim: usize,
}

impl PretrainedEncoder {
    /// Creates an encoder + decoder pair. The decoder reconstructs the
    /// mean node features **and** two structural summaries (node count,
    /// depth) — structure correlates with every downstream target (cost,
    /// cardinality), which is what makes the pretext transfer.
    pub fn new<R: Rng + ?Sized>(
        kind: TreeModelKind,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let encoder = PlanEncoder::new(kind, in_dim, hidden, rng);
        let decoder = Linear::new(encoder.out_dim(), in_dim + 2, rng);
        Self { encoder, decoder, in_dim }
    }

    /// One pretraining pass over unlabeled trees: mask a fraction of node
    /// features, encode, and reconstruct the *mean original* node features.
    /// Returns the mean reconstruction loss.
    pub fn pretrain_epoch<R: Rng + ?Sized>(
        &mut self,
        trees: &[Tree],
        opt: &mut Adam,
        rng: &mut R,
    ) -> f32 {
        let mut total = 0.0;
        for tree in trees {
            // Target: mean of original node features + structure summary.
            let mut target = vec![0.0f32; self.in_dim + 2];
            for i in 0..tree.len() {
                for (t, &v) in target.iter_mut().zip(tree.feats.row_slice(i)) {
                    *t += v / tree.len() as f32;
                }
            }
            target[self.in_dim] = tree.len() as f32 / 16.0;
            target[self.in_dim + 1] = tree.depths().iter().max().copied().unwrap_or(0) as f32 / 8.0;
            // Masked copy.
            let mut masked = tree.clone();
            for i in 0..masked.len() {
                if rng.gen::<f64>() < MASK_FRACTION {
                    masked.feats.row_slice_mut(i).fill(0.0);
                }
            }
            self.encoder.zero_grad();
            self.decoder.zero_grad();
            let (emb, ec) = self.encoder.forward(&masked);
            let (recon, dc) = self.decoder.forward(&emb);
            let (l, dy) = loss::mse(&recon, &Matrix::row(target));
            total += l;
            let demb = self.decoder.backward(&dc, &dy);
            self.encoder.backward(&ec, &demb);
            let mut params = self.encoder.params_mut();
            params.extend(self.decoder.params_mut());
            opt.step(&mut params);
        }
        total / trees.len().max(1) as f32
    }

    /// Pretrains for `epochs` passes; returns `(first, last)` epoch losses.
    pub fn pretrain<R: Rng + ?Sized>(
        &mut self,
        trees: &[Tree],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> (f32, f32) {
        let mut opt = Adam::new(lr);
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..epochs {
            last = self.pretrain_epoch(trees, &mut opt, rng);
            if e == 0 {
                first = last;
            }
        }
        (first, last)
    }

    /// Converts into a task model, keeping the pretrained encoder weights
    /// and attaching a fresh regression head (the fine-tuning setup).
    pub fn into_regressor<R: Rng + ?Sized>(self, hidden: usize, rng: &mut R) -> CostRegressor {
        let head = Mlp::new(&[self.encoder.out_dim(), hidden, 1], Activation::LeakyRelu, rng);
        CostRegressor { encoder: self.encoder, head }
    }
}

/// Two-phase fine-tuning for a pretrained model: first train only the
/// fresh head with the encoder frozen (so the random head's early
/// gradients cannot destroy the pretrained representation), then train
/// jointly. This is the standard transfer recipe; fine-tuning jointly from
/// step one frequently *underperforms* training from scratch.
pub fn finetune_two_phase<R: Rng + ?Sized>(
    model: &mut CostRegressor,
    data: &[(Tree, f64)],
    warmup_epochs: usize,
    joint_epochs: usize,
    lr: f32,
    rng: &mut R,
) -> f32 {
    use ml4db_repr::task::latency_to_target;
    let mut opt = Adam::new(lr);
    for _ in 0..warmup_epochs {
        for (tree, latency) in data {
            model.encoder.zero_grad();
            model.head.zero_grad();
            let emb = model.encoder.encode(tree);
            let (y, hc) = model.head.forward(&emb);
            let target = Matrix::row(vec![latency_to_target(*latency)]);
            let (_, dy) = loss::huber(&y, &target, 0.1);
            model.head.backward(&hc, &dy);
            opt.step(&mut model.head.params_mut());
        }
    }
    model.fit(data, joint_epochs, lr * 0.3, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth_trees(rng: &mut StdRng, n: usize) -> Vec<(Tree, f64)> {
        (0..n)
            .map(|_| {
                let depth = rng.gen_range(1..5);
                let x = rng.gen_range(0.0f32..1.0);
                let mut t = Tree::leaf(vec![x, 0.0, 1.0]);
                for _ in 0..depth {
                    t = Tree::branch(
                        vec![rng.gen_range(0.0..1.0), 1.0, 0.0],
                        Some(t),
                        Some(Tree::leaf(vec![rng.gen_range(0.0..1.0), 0.0, 1.0])),
                    );
                }
                (t, 50.0 * (depth as f64).exp() * (1.0 + x as f64))
            })
            .collect()
    }

    #[test]
    fn pretraining_reduces_reconstruction_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let trees: Vec<Tree> = synth_trees(&mut rng, 40).into_iter().map(|(t, _)| t).collect();
        let mut pe = PretrainedEncoder::new(TreeModelKind::TreeCnn, 3, 12, &mut rng);
        let (first, last) = pe.pretrain(&trees, 20, 0.01, &mut rng);
        assert!(
            last < first * 0.5,
            "reconstruction loss did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn finetuning_from_pretrained_is_sample_efficient() {
        let mut rng = StdRng::seed_from_u64(2);
        let unlabeled: Vec<Tree> =
            synth_trees(&mut rng, 60).into_iter().map(|(t, _)| t).collect();
        let few_labeled = synth_trees(&mut rng, 8);
        let eval = synth_trees(&mut rng, 30);

        // Pretrained path.
        let mut pe = PretrainedEncoder::new(TreeModelKind::TreeCnn, 3, 12, &mut rng);
        pe.pretrain(&unlabeled, 25, 0.01, &mut rng);
        let mut pretrained = pe.into_regressor(12, &mut rng);
        pretrained.fit(&few_labeled, 15, 0.01, &mut rng);
        let corr_pre = pretrained.eval_rank_correlation(&eval);

        // From-scratch path with the same few labels.
        let mut scratch = CostRegressor::new(TreeModelKind::TreeCnn, 3, 12, &mut rng);
        scratch.fit(&few_labeled, 15, 0.01, &mut rng);
        let corr_scratch = scratch.eval_rank_correlation(&eval);

        // The pretrained model must be at least competitive in the few-shot
        // regime (the decisive comparison runs in bench E13 with averages).
        assert!(
            corr_pre >= corr_scratch - 0.1,
            "pretrained {corr_pre} much worse than scratch {corr_scratch}"
        );
        assert!(corr_pre > 0.3, "pretrained few-shot correlation too low: {corr_pre}");
    }
}
