//! Labeled plan corpora: (database, query, annotated plan, latency) tuples
//! shared by the pretraining, zero-shot, multi-task, and meta-learning
//! experiments.

use rand::Rng;

use ml4db_datagen::{SchemaGraph, WorkloadConfig, WorkloadGenerator};
use ml4db_plan::{ClassicEstimator, CostModel, Planner, PlanNode, Query};
use ml4db_storage::Database;

/// A labeled corpus over one database.
pub struct LabeledCorpus {
    /// `(database, query, annotated plan, observed latency µs)` items. The
    /// database reference is cloned per corpus (databases are in-memory).
    pub items: Vec<(Database, Query, PlanNode, f64)>,
}

impl LabeledCorpus {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Splits off the tail into a second corpus.
    pub fn split_off(&mut self, at: usize) -> LabeledCorpus {
        LabeledCorpus { items: self.items.split_off(at.min(self.items.len())) }
    }
}

/// Builds a corpus: `n_queries` random queries, `plans_per_query` plans
/// each (the expert plan plus random alternatives), executed for labels.
pub fn build_corpus<R: Rng + ?Sized>(
    db: &Database,
    graph: &SchemaGraph,
    n_queries: usize,
    plans_per_query: usize,
    rng: &mut R,
) -> LabeledCorpus {
    let generator = WorkloadGenerator::new(
        graph.clone(),
        WorkloadConfig { min_tables: 2, max_tables: 3, ..Default::default() },
    );
    let planner = Planner::default();
    let cost_model = CostModel::default();
    let mut items = Vec::new();
    for q in generator.generate_many(db, n_queries, rng) {
        let mut plans = Vec::new();
        if let Some(p) = planner.best_plan(db, &q, &ClassicEstimator) {
            plans.push(p);
        }
        plans.extend(planner.random_plans(
            db,
            &q,
            &ClassicEstimator,
            plans_per_query.saturating_sub(1),
            rng,
        ));
        for mut p in plans {
            cost_model.cost_plan(db, &q, &mut p, &ClassicEstimator);
            if let Ok(result) = ml4db_plan::execute(db, &q, &p) {
                items.push((db.clone(), q.clone(), p, result.latency_us));
            }
        }
    }
    LabeledCorpus { items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corpus_has_annotated_plans_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = Database::analyze(
            joblite(&DatasetConfig { base_rows: 80, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let corpus = build_corpus(&db, &SchemaGraph::joblite(), 5, 2, &mut rng);
        assert!(corpus.len() >= 8);
        for (_, _, p, lat) in &corpus.items {
            assert!(p.est_cost > 0.0, "plan not annotated");
            assert!(*lat > 0.0);
        }
    }
}
