//! Reptile meta-learning across ML4DB tasks: the trained initialization
//! adapts to a new task/dataset from a handful of examples — the
//! "foundation models for ML4DB" direction of open problem 3.

use rand::Rng;

use ml4db_nn::{Matrix, Trainable, Tree};
use ml4db_repr::CostRegressor;

/// Snapshot of every parameter value of a model.
fn snapshot(model: &mut CostRegressor) -> Vec<Matrix> {
    let mut params = model.encoder.params_mut();
    params.extend(model.head.params_mut());
    params.iter().map(|p| p.value.clone()).collect()
}

/// Restores `θ := before + meta_lr * (after − before)` — the Reptile
/// meta-update.
fn interpolate(model: &mut CostRegressor, before: &[Matrix], meta_lr: f32) {
    let mut params = model.encoder.params_mut();
    params.extend(model.head.params_mut());
    for (p, b) in params.iter_mut().zip(before) {
        // p.value currently holds θ_after.
        let mut v = b.clone();
        let diff = &p.value - b;
        v.axpy(meta_lr, &diff);
        p.value = v;
    }
}

/// One Reptile outer step: adapt on a task for `inner_epochs`, then move
/// the meta-parameters a fraction of the way toward the adapted solution.
pub fn reptile_step<R: Rng + ?Sized>(
    model: &mut CostRegressor,
    task_data: &[(Tree, f64)],
    inner_epochs: usize,
    inner_lr: f32,
    meta_lr: f32,
    rng: &mut R,
) {
    let before = snapshot(model);
    model.fit(task_data, inner_epochs, inner_lr, rng);
    interpolate(model, &before, meta_lr);
}

/// Meta-trains over a set of tasks for `outer_steps` rounds (cycling).
pub fn meta_train<R: Rng + ?Sized>(
    model: &mut CostRegressor,
    tasks: &[Vec<(Tree, f64)>],
    outer_steps: usize,
    inner_epochs: usize,
    inner_lr: f32,
    meta_lr: f32,
    rng: &mut R,
) {
    assert!(!tasks.is_empty(), "meta_train needs tasks");
    for step in 0..outer_steps {
        let task = &tasks[step % tasks.len()];
        reptile_step(model, task, inner_epochs, inner_lr, meta_lr, rng);
    }
}

/// Few-shot evaluation: adapt a copy-by-snapshot of the model on `k` shots
/// of a new task, return the rank correlation on the task's held-out set.
pub fn few_shot_eval<R: Rng + ?Sized>(
    model: &mut CostRegressor,
    shots: &[(Tree, f64)],
    heldout: &[(Tree, f64)],
    adapt_epochs: usize,
    lr: f32,
    rng: &mut R,
) -> f64 {
    let before = snapshot(model);
    model.fit(shots, adapt_epochs, lr, rng);
    let corr = model.eval_rank_correlation(heldout);
    // Restore the meta-parameters so evaluation is side-effect free.
    let mut params = model.encoder.params_mut();
    params.extend(model.head.params_mut());
    for (p, b) in params.iter_mut().zip(&before) {
        p.value = b.clone();
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4db_repr::TreeModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Task family: latency = scale * exp(depth) — tasks differ in scale.
    fn task(rng: &mut StdRng, scale: f64, n: usize) -> Vec<(Tree, f64)> {
        (0..n)
            .map(|_| {
                let depth = rng.gen_range(1..5);
                let mut t = Tree::leaf(vec![rng.gen_range(0.0..1.0), 0.0]);
                for _ in 0..depth {
                    t = Tree::branch(
                        vec![rng.gen_range(0.0..1.0), 1.0],
                        Some(t),
                        Some(Tree::leaf(vec![rng.gen_range(0.0..1.0), 0.0])),
                    );
                }
                (t, scale * (depth as f64).exp())
            })
            .collect()
    }

    #[test]
    fn meta_trained_model_adapts_faster_than_fresh() {
        let mut rng = StdRng::seed_from_u64(3);
        let tasks: Vec<Vec<(Tree, f64)>> =
            [30.0, 100.0, 300.0].iter().map(|&s| task(&mut rng, s, 25)).collect();
        let mut meta = CostRegressor::new(TreeModelKind::TreeCnn, 2, 12, &mut rng);
        meta_train(&mut meta, &tasks, 12, 3, 0.01, 0.5, &mut rng);

        // New task with an unseen scale; few shots.
        let new_task = task(&mut rng, 700.0, 40);
        let (shots, heldout) = new_task.split_at(6);
        let meta_corr = few_shot_eval(&mut meta, shots, heldout, 8, 0.01, &mut rng);
        let mut fresh = CostRegressor::new(TreeModelKind::TreeCnn, 2, 12, &mut rng);
        fresh.fit(shots, 8, 0.01, &mut rng);
        let fresh_corr = fresh.eval_rank_correlation(heldout);
        assert!(
            meta_corr >= fresh_corr - 0.05,
            "meta-init ({meta_corr}) should adapt at least as fast as fresh ({fresh_corr})"
        );
        assert!(meta_corr > 0.5, "meta few-shot correlation too low: {meta_corr}");
    }

    #[test]
    fn few_shot_eval_restores_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = CostRegressor::new(TreeModelKind::TreeCnn, 2, 8, &mut rng);
        let data = task(&mut rng, 50.0, 20);
        let before = snapshot(&mut model);
        few_shot_eval(&mut model, &data[..5], &data[5..], 5, 0.01, &mut rng);
        let after = snapshot(&mut model);
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.as_slice(), a.as_slice(), "parameters mutated");
        }
    }
}
