//! # ml4db-pretrain — pretrained, zero-shot, and meta-learned models
//!
//! ML4DB Foundation #2 and open problem 3 of the tutorial: escape the
//! single-task/single-dataset regime.
//!
//! * [`pretext`] — unsupervised masked-feature pretraining of plan
//!   encoders (Paul et al. \[35\]) with sample-efficient fine-tuning;
//! * [`zeroshot`] — database-agnostic cost models that transfer to unseen
//!   schemas via injected statistics (Hilprecht & Binnig \[11\]);
//! * [`mtmlf`] — the quadrant-decomposed multi-task architecture of MTMLF
//!   \[46\]: shared trunk + per-database adapters + per-task heads;
//! * [`meta`] — Reptile meta-learning for few-shot cross-task adaptation;
//! * [`corpus`] — labeled plan corpora shared by all of the above.

#![warn(missing_docs)]

pub mod corpus;
pub mod meta;
pub mod mtmlf;
pub mod pretext;
pub mod zeroshot;

pub use corpus::{build_corpus, LabeledCorpus};
pub use meta::{few_shot_eval, meta_train, reptile_step};
pub use mtmlf::{Mtmlf, MtmlfSample, Task};
pub use pretext::{finetune_two_phase, PretrainedEncoder};
pub use zeroshot::ZeroShotModel;
