//! MTMLF (Wu et al. \[46\]) — a unified transferable model for ML-enhanced
//! DBMS tasks. The features split into four quadrants
//! (database-specific/agnostic × task-specific/agnostic); the architecture
//! mirrors that: a **shared** encoder over database-agnostic statistics
//! features, small **per-database adapters** over semantic features, and
//! **per-task heads** (cost and cardinality here). A new database only
//! needs its adapter trained; the shared trunk transfers.

use std::collections::HashMap;

use rand::Rng;

use ml4db_nn::layers::{Activation, Mlp};
use ml4db_nn::optim::{Adam, Optimizer};
use ml4db_nn::{loss, Matrix, Trainable};
use ml4db_plan::{PlanNode, Query};
use ml4db_repr::{featurize_plan, FeatureConfig, PlanEncoder, TreeModelKind, NODE_DIM};
use ml4db_storage::Database;

/// The downstream task of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// Latency regression (log space).
    Cost,
    /// Cardinality regression (log space).
    Cardinality,
}

/// One multi-task training sample.
pub struct MtmlfSample {
    /// Database identifier (adapter key).
    pub db_id: String,
    /// The database.
    pub db: Database,
    /// The query.
    pub query: Query,
    /// The annotated plan.
    pub plan: PlanNode,
    /// Task of this sample.
    pub task: Task,
    /// Raw target (latency µs or rows).
    pub target: f64,
}

/// The unified model.
pub struct Mtmlf {
    /// Shared encoder over database-agnostic (statistics) features.
    pub shared: PlanEncoder,
    /// Per-database adapters over the database-specific embedding.
    pub adapters: HashMap<String, Mlp>,
    /// Per-task heads.
    pub heads: HashMap<Task, Mlp>,
    hidden: usize,
}

fn target_space(task: Task, raw: f64) -> f32 {
    match task {
        Task::Cost => ((raw + 1.0).log10() / 8.0) as f32,
        Task::Cardinality => ((raw + 1.0).log10() / 7.0) as f32,
    }
}

impl Mtmlf {
    /// Creates the shared trunk and task heads (adapters are created
    /// lazily per database).
    pub fn new<R: Rng + ?Sized>(hidden: usize, rng: &mut R) -> Self {
        let shared = PlanEncoder::new(TreeModelKind::TreeCnn, NODE_DIM, hidden, rng);
        let mut heads = HashMap::new();
        heads.insert(
            Task::Cost,
            Mlp::new(&[hidden, hidden, 1], Activation::LeakyRelu, rng),
        );
        heads.insert(
            Task::Cardinality,
            Mlp::new(&[hidden, hidden, 1], Activation::LeakyRelu, rng),
        );
        Self { shared, adapters: HashMap::new(), heads, hidden }
    }

    fn ensure_adapter<R: Rng + ?Sized>(&mut self, db_id: &str, rng: &mut R) {
        if !self.adapters.contains_key(db_id) {
            self.adapters.insert(
                db_id.to_string(),
                Mlp::new(&[self.hidden, self.hidden], Activation::Tanh, rng),
            );
        }
    }

    /// Prediction in target space for a sample-shaped input.
    pub fn predict(
        &self,
        db_id: &str,
        db: &Database,
        query: &Query,
        plan: &PlanNode,
        task: Task,
    ) -> f32 {
        let tree = featurize_plan(db, query, plan, FeatureConfig::statistics_only());
        let emb = self.shared.encode(&tree);
        // Adapters are residual: identity plus a learned correction, so a
        // freshly created adapter barely perturbs the shared embedding.
        let adapted = match self.adapters.get(db_id) {
            Some(a) => {
                let delta = a.predict(&emb);
                emb.zip(&delta, |e, d| e + 0.1 * d)
            }
            None => emb, // unseen database: shared trunk only (zero-shot)
        };
        let head = self.heads.get(&task).expect("task head exists");
        head.predict(&adapted)[(0, 0)]
    }

    /// One multi-task training pass. `freeze_shared` trains only adapters
    /// and heads (the few-shot new-database mode).
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        samples: &[MtmlfSample],
        opt: &mut Adam,
        freeze_shared: bool,
        rng: &mut R,
    ) -> f32 {
        let mut total = 0.0;
        for s in samples {
            self.ensure_adapter(&s.db_id, rng);
            let tree =
                featurize_plan(&s.db, &s.query, &s.plan, FeatureConfig::statistics_only());
            self.shared.zero_grad();
            for a in self.adapters.values_mut() {
                a.zero_grad();
            }
            for h in self.heads.values_mut() {
                h.zero_grad();
            }
            let (emb, ec) = self.shared.forward(&tree);
            let adapter = self.adapters.get(&s.db_id).expect("ensured");
            let (delta, ac) = adapter.forward(&emb);
            let adapted = emb.zip(&delta, |e, d| e + 0.1 * d);
            let head = self.heads.get(&s.task).expect("head");
            let (y, hc) = head.forward(&adapted);
            let t = Matrix::row(vec![target_space(s.task, s.target)]);
            let (l, dy) = loss::huber(&y, &t, 0.1);
            total += l;
            let head = self.heads.get_mut(&s.task).expect("head");
            let dadapted = head.backward(&hc, &dy);
            let adapter = self.adapters.get_mut(&s.db_id).expect("ensured");
            let mut demb = adapter.backward(&ac, &dadapted.scaled(0.1));
            demb += &dadapted; // residual path
            if !freeze_shared {
                self.shared.backward(&ec, &demb);
            }
            let mut params = Vec::new();
            if !freeze_shared {
                params.extend(self.shared.params_mut());
            }
            params.extend(
                self.adapters.get_mut(&s.db_id).expect("ensured").params_mut(),
            );
            params.extend(self.heads.get_mut(&s.task).expect("head").params_mut());
            ml4db_nn::optim::clip_grad_norm(&mut params, 5.0);
            opt.step(&mut params);
        }
        total / samples.len().max(1) as f32
    }

    /// Rank correlation per task on an evaluation set.
    pub fn eval_rank(&self, samples: &[MtmlfSample], task: Task) -> f64 {
        let filtered: Vec<&MtmlfSample> =
            samples.iter().filter(|s| s.task == task).collect();
        let preds: Vec<f64> = filtered
            .iter()
            .map(|s| self.predict(&s.db_id, &s.db, &s.query, &s.plan, s.task) as f64)
            .collect();
        let truth: Vec<f64> = filtered.iter().map(|s| s.target).collect();
        ml4db_nn::metrics::spearman(&preds, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use ml4db_datagen::SchemaGraph;
    use ml4db_storage::datasets::{joblite, tpchlite, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples_from_corpus(
        corpus: crate::corpus::LabeledCorpus,
        db_id: &str,
    ) -> Vec<MtmlfSample> {
        corpus
            .items
            .into_iter()
            .flat_map(|(db, q, p, lat)| {
                let rows = p.est_rows.max(1.0);
                [
                    MtmlfSample {
                        db_id: db_id.to_string(),
                        db: db.clone(),
                        query: q.clone(),
                        plan: p.clone(),
                        task: Task::Cost,
                        target: lat,
                    },
                    MtmlfSample {
                        db_id: db_id.to_string(),
                        db,
                        query: q,
                        plan: p,
                        task: Task::Cardinality,
                        target: rows,
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn multi_task_multi_db_training_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let db_a = Database::analyze(
            joblite(&DatasetConfig { base_rows: 80, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let db_b = Database::analyze(
            tpchlite(&DatasetConfig { base_rows: 60, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let mut train = samples_from_corpus(
            build_corpus(&db_a, &SchemaGraph::joblite(), 12, 2, &mut rng),
            "joblite",
        );
        train.extend(samples_from_corpus(
            build_corpus(&db_b, &SchemaGraph::tpchlite(), 12, 2, &mut rng),
            "tpchlite",
        ));
        let mut model = Mtmlf::new(16, &mut rng);
        let mut opt = Adam::new(0.005);
        for _ in 0..12 {
            model.train_epoch(&train, &mut opt, false, &mut rng);
        }
        let cost_corr = model.eval_rank(&train, Task::Cost);
        let card_corr = model.eval_rank(&train, Task::Cardinality);
        assert!(cost_corr > 0.5, "cost task correlation {cost_corr}");
        assert!(card_corr > 0.5, "card task correlation {card_corr}");
        assert_eq!(model.adapters.len(), 2);
    }

    #[test]
    fn new_database_needs_only_adapter_training() {
        let mut rng = StdRng::seed_from_u64(12);
        let db_a = Database::analyze(
            joblite(&DatasetConfig { base_rows: 80, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let db_b = Database::analyze(
            tpchlite(&DatasetConfig { base_rows: 60, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let train_a = samples_from_corpus(
            build_corpus(&db_a, &SchemaGraph::joblite(), 15, 2, &mut rng),
            "joblite",
        );
        let mut model = Mtmlf::new(16, &mut rng);
        let mut opt = Adam::new(0.005);
        for _ in 0..12 {
            model.train_epoch(&train_a, &mut opt, false, &mut rng);
        }
        // Few-shot new database: train only adapter + heads (shared frozen).
        let mut corpus_b = build_corpus(&db_b, &SchemaGraph::tpchlite(), 10, 2, &mut rng);
        let eval_b = samples_from_corpus(corpus_b.split_off(4), "tpchlite");
        let few_b = samples_from_corpus(corpus_b, "tpchlite");
        let mut opt2 = Adam::new(0.01);
        for _ in 0..10 {
            model.train_epoch(&few_b, &mut opt2, true, &mut rng);
        }
        let corr = model.eval_rank(&eval_b, Task::Cost);
        assert!(corr > 0.3, "adapter-only transfer correlation {corr}");
    }
}
