//! Per-tenant serving reports: exactly-once accounting plus latency
//! quantiles out of `ml4db-obs` histograms.

use std::collections::BTreeMap;

use ml4db_obs::Histogram;
use serde_json::Value;

/// One tenant's serving ledger. The accounting identity
/// `admitted + shed + rejected == submitted` and
/// `completed + failed == admitted` (once drained) are the serving
/// layer's exactly-once contract; [`ServeReport::check_invariants`]
/// asserts them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantReport {
    /// Requests offered by this tenant's sessions.
    pub submitted: u64,
    /// Requests admitted past the queue.
    pub admitted: u64,
    /// Requests refused by load control.
    pub shed: u64,
    /// Malformed requests refused outright.
    pub rejected: u64,
    /// Admitted requests that executed to a result.
    pub completed: u64,
    /// Admitted requests that could not produce a result (no plan, or a
    /// panic contained by the worker).
    pub failed: u64,
    /// p50 sojourn/latency in µs (`None` before any completion).
    pub p50_us: Option<f64>,
    /// p99 sojourn/latency in µs.
    pub p99_us: Option<f64>,
    /// p999 sojourn/latency in µs.
    pub p999_us: Option<f64>,
}

impl TenantReport {
    /// Fills the quantile fields from a latency histogram.
    pub fn with_quantiles(mut self, h: &Histogram) -> Self {
        self.p50_us = h.quantile(0.50);
        self.p99_us = h.quantile(0.99);
        self.p999_us = h.quantile(0.999);
        self
    }
}

/// The whole run's serving report: per-tenant ledgers plus run-level
/// throughput. Canonical JSON is deterministic (sorted keys, exact
/// counts, quantiles derived from mergeable bucket counts).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Per-tenant ledgers, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
    /// Virtual makespan of the run in nanoseconds (simulated runs only).
    pub virtual_ns: Option<u64>,
    /// Completed queries per *virtual* second (simulated runs only).
    pub queries_per_sec: Option<f64>,
}

impl ServeReport {
    /// Sum of a per-tenant field across tenants.
    fn sum(&self, f: impl Fn(&TenantReport) -> u64) -> u64 {
        self.tenants.iter().map(f).sum()
    }

    /// Total requests submitted.
    pub fn submitted(&self) -> u64 {
        self.sum(|t| t.submitted)
    }

    /// Total requests admitted.
    pub fn admitted(&self) -> u64 {
        self.sum(|t| t.admitted)
    }

    /// Total requests shed.
    pub fn shed(&self) -> u64 {
        self.sum(|t| t.shed)
    }

    /// Total requests rejected.
    pub fn rejected(&self) -> u64 {
        self.sum(|t| t.rejected)
    }

    /// Total requests completed.
    pub fn completed(&self) -> u64 {
        self.sum(|t| t.completed)
    }

    /// Total admitted requests that failed to produce a result.
    pub fn failed(&self) -> u64 {
        self.sum(|t| t.failed)
    }

    /// Fraction of submitted requests shed; 0 when nothing was offered.
    pub fn shed_rate(&self) -> f64 {
        let s = self.submitted();
        if s == 0 {
            0.0
        } else {
            self.shed() as f64 / s as f64
        }
    }

    /// Worst p99 across tenants, the serving headline number.
    pub fn p99_us(&self) -> Option<f64> {
        self.tenants.iter().filter_map(|t| t.p99_us).fold(None, |a, v| {
            Some(match a {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Asserts the exactly-once ledger identities, per tenant and in
    /// total. `drained` additionally requires every admitted request to
    /// have resolved (`completed + failed == admitted`).
    ///
    /// # Panics
    /// Panics with the violated identity when accounting is broken.
    pub fn check_invariants(&self, drained: bool) {
        for (i, t) in self.tenants.iter().enumerate() {
            assert_eq!(
                t.admitted + t.shed + t.rejected,
                t.submitted,
                "tenant {i}: admitted+shed+rejected != submitted ({t:?})"
            );
            assert!(
                t.completed + t.failed <= t.admitted,
                "tenant {i}: more resolutions than admissions ({t:?})"
            );
            if drained {
                assert_eq!(
                    t.completed + t.failed,
                    t.admitted,
                    "tenant {i}: admitted request lost ({t:?})"
                );
            }
        }
    }

    /// Deterministic JSON rendering: sorted keys, counts exact,
    /// quantiles from bucket counts. Wall-clock never appears here.
    pub fn to_canonical_json(&self) -> Value {
        let quant = |v: Option<f64>| v.map(Value::Number).unwrap_or(Value::Null);
        let tenants: Vec<Value> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut o = BTreeMap::new();
                o.insert("tenant".to_string(), Value::Number(i as f64));
                o.insert("submitted".to_string(), Value::Number(t.submitted as f64));
                o.insert("admitted".to_string(), Value::Number(t.admitted as f64));
                o.insert("shed".to_string(), Value::Number(t.shed as f64));
                o.insert("rejected".to_string(), Value::Number(t.rejected as f64));
                o.insert("completed".to_string(), Value::Number(t.completed as f64));
                o.insert("failed".to_string(), Value::Number(t.failed as f64));
                o.insert("p50_us".to_string(), quant(t.p50_us));
                o.insert("p99_us".to_string(), quant(t.p99_us));
                o.insert("p999_us".to_string(), quant(t.p999_us));
                Value::Object(o)
            })
            .collect();
        let mut o = BTreeMap::new();
        o.insert("tenants".to_string(), Value::Array(tenants));
        o.insert("submitted".to_string(), Value::Number(self.submitted() as f64));
        o.insert("admitted".to_string(), Value::Number(self.admitted() as f64));
        o.insert("shed".to_string(), Value::Number(self.shed() as f64));
        o.insert("rejected".to_string(), Value::Number(self.rejected() as f64));
        o.insert("completed".to_string(), Value::Number(self.completed() as f64));
        o.insert("failed".to_string(), Value::Number(self.failed() as f64));
        o.insert("shed_rate".to_string(), Value::Number(self.shed_rate()));
        o.insert("p99_us".to_string(), quant(self.p99_us()));
        if let Some(v) = self.virtual_ns {
            o.insert("virtual_ns".to_string(), Value::Number(v as f64));
        }
        if let Some(q) = self.queries_per_sec {
            o.insert("queries_per_sec".to_string(), Value::Number(q));
        }
        Value::Object(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_catch_lost_requests() {
        let good = ServeReport {
            tenants: vec![TenantReport {
                submitted: 10,
                admitted: 7,
                shed: 2,
                rejected: 1,
                completed: 7,
                ..Default::default()
            }],
            ..Default::default()
        };
        good.check_invariants(true);
        let lost = ServeReport {
            tenants: vec![TenantReport {
                submitted: 10,
                admitted: 7,
                shed: 2,
                rejected: 1,
                completed: 6,
                ..Default::default()
            }],
            ..Default::default()
        };
        lost.check_invariants(false); // in flight is fine...
        let r = std::panic::catch_unwind(|| lost.check_invariants(true));
        assert!(r.is_err(), "...but a drained run must resolve every admission");
    }

    #[test]
    fn canonical_json_is_stable_and_complete() {
        let mut h = Histogram::latency_us();
        for v in [10.0, 20.0, 500.0] {
            h.observe(v);
        }
        let rep = ServeReport {
            tenants: vec![TenantReport {
                submitted: 3,
                admitted: 3,
                completed: 3,
                ..Default::default()
            }
            .with_quantiles(&h)],
            virtual_ns: Some(1_000_000),
            queries_per_sec: Some(3000.0),
        };
        let a = rep.to_canonical_json().to_string();
        let b = rep.to_canonical_json().to_string();
        assert_eq!(a, b);
        for key in ["queries_per_sec", "p99_us", "shed_rate", "tenants"] {
            assert!(a.contains(key), "missing {key}: {a}");
        }
    }
}
