//! The deterministic closed-loop serving simulator.
//!
//! This is where throughput numbers come from: a discrete-event
//! simulation of the whole serving loop — seeded client arrivals from
//! [`LoadGen`], admission control, a pool of virtual workers whose
//! service times are the executor's *simulated* latencies, and closed-
//! loop think-time feedback — on a virtual nanosecond clock.
//!
//! Because every input is deterministic (integer virtual time, seeded
//! RNG streams, the simulated executor) the run is a pure function of
//! `(database, spec, mix, seed, config)`: the canonical report is
//! byte-identical across repeated runs **and across `ML4DB_THREADS`
//! settings** — the simulator itself is single-threaded; thread count
//! only changes who warmed the shared plan cache, which cannot change
//! any cached value. `tests/serve_determinism.rs` pins this.
//!
//! Wall-clock enters nowhere: real time spent *driving* the simulation
//! is reported separately by the bench binary as a non-canonical
//! drive-rate figure.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ml4db_datagen::{GenRequest, LoadGen};
use ml4db_obs::Histogram;
use ml4db_optimizer::Env;

use crate::admission::{AdmissionConfig, AdmissionQueue, AdmissionVerdict};
use crate::report::{ServeReport, TenantReport};

/// Simulator knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Virtual worker count — the service parallelism being modeled.
    pub workers: usize,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { workers: 8, admission: AdmissionConfig::default() }
    }
}

/// A queued admitted request: payload plus its arrival timestamp, so
/// sojourn time (queueing + service) is measurable at completion.
struct Pending {
    req: GenRequest,
    arrived_ns: u64,
}

/// One in-flight service, keyed into the completion heap by
/// `(finish_ns, seq)` — the seq tiebreak keeps simultaneous finishes in
/// start order, so the schedule is a total order.
struct InFlight {
    worker: usize,
    client: u32,
    tenant: u32,
    arrived_ns: u64,
    ok: bool,
    latency_us: f64,
}

/// Runs the closed loop to exhaustion: every request the population
/// issues is submitted, admitted work is serviced by `cfg.workers`
/// virtual workers (FIFO within class, strict class priority), and
/// clients think and retry off their verdicts — shed clients back off
/// and re-arrive like real ones. Returns the drained per-tenant report
/// with virtual-time throughput.
pub fn run_closed_loop(env: &Env<'_>, gen: &mut LoadGen, cfg: &SimConfig) -> ServeReport {
    assert!(cfg.workers > 0, "at least one virtual worker");
    let tenants = (0..gen.spec().clients).map(|c| gen.tenant_of(c) + 1).max().unwrap_or(1) as usize;

    let mut queue: AdmissionQueue<Pending> = AdmissionQueue::new(cfg.admission);
    let mut counters = vec![TenantReport::default(); tenants];
    let mut hist: Vec<Histogram> = (0..tenants).map(|_| Histogram::latency_us()).collect();
    // Per-worker session views — the same hot path the threaded server
    // runs: session-local memo first, sharded engine caches on miss.
    let mut views: Vec<_> = (0..cfg.workers).map(|w| env.session(w as u64)).collect();
    let mut idle: Vec<usize> = (0..cfg.workers).rev().collect();
    let mut completions: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut in_flight: Vec<Option<InFlight>> = (0..cfg.workers).map(|_| None).collect();
    let mut seq = 0u64;
    // Monotone virtual clock: the timestamp of the event being handled.
    let mut now_ns = 0u64;

    loop {
        // Start queued work on every idle worker before advancing time.
        while let (Some(&w), true) = (idle.last(), queue.depth() > 0) {
            let Some(ticket) = queue.pop() else { break };
            idle.pop();
            let Pending { req, arrived_ns } = ticket.item;
            let (ok, latency_us) = match views[w].serve(&req.query) {
                Some(us) => (true, us),
                None => (false, 0.0),
            };
            let service_ns = ((latency_us * 1_000.0).round() as u64).max(1);
            let finish_ns = now_ns.max(arrived_ns).saturating_add(service_ns);
            in_flight[w] = Some(InFlight {
                worker: w,
                client: req.client,
                tenant: req.tenant,
                arrived_ns,
                ok,
                latency_us,
            });
            completions.push(Reverse((finish_ns, seq, w)));
            seq += 1;
        }

        // Next event: the earlier of next completion and next arrival;
        // completions win ties so capacity frees before a simultaneous
        // arrival is judged (a defined, deterministic order). The
        // arrival is *peeked*, not held, because handling a completion
        // can schedule an earlier re-arrival.
        let tc = completions.peek().map(|Reverse((t, _, _))| *t);
        let ta = gen.peek_arrival().map(|a| a.vtime_ns);
        let take_completion = match (tc, ta) {
            (None, None) => break,
            (Some(tc), Some(ta)) => tc <= ta,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if take_completion {
            {
                let Reverse((t, _, w)) = completions.pop().unwrap();
                now_ns = t;
                let c = in_flight[w].take().expect("completion without in-flight work");
                idle.push(c.worker);
                let tr = &mut counters[c.tenant as usize];
                if c.ok {
                    tr.completed += 1;
                    hist[c.tenant as usize].observe((t - c.arrived_ns) as f64 / 1_000.0);
                    ml4db_obs::histogram_observe("serve.latency_us", c.latency_us);
                } else {
                    tr.failed += 1;
                }
                gen.complete(c.client, t);
            }
        } else {
            {
                let ta = ta.expect("arrival branch without an arrival");
                let arrival = gen.next_arrival().expect("peeked arrival vanished");
                now_ns = ta;
                let req = gen.request_for(arrival.client);
                let (tenant, class, client) = (req.tenant, req.class, req.client);
                counters[tenant as usize].submitted += 1;
                let offered = queue.offer(Pending { req, arrived_ns: ta }, class);
                let depth = queue.depth() as u32;
                let verdict = match &offered {
                    Ok(v) => *v,
                    Err((_, v)) => *v,
                };
                observe(tenant, class, verdict.kind(), depth);
                match verdict {
                    AdmissionVerdict::Admitted => counters[tenant as usize].admitted += 1,
                    AdmissionVerdict::Shed(_) => {
                        counters[tenant as usize].shed += 1;
                        gen.complete(client, ta);
                    }
                    AdmissionVerdict::Rejected(_) => {
                        counters[tenant as usize].rejected += 1;
                        gen.complete(client, ta);
                    }
                }
            }
        }
    }

    let tenants_report: Vec<TenantReport> =
        counters.into_iter().zip(&hist).map(|(t, h)| t.with_quantiles(h)).collect();
    let completed: u64 = tenants_report.iter().map(|t| t.completed).sum();
    let makespan_ns = now_ns;
    let qps =
        if makespan_ns > 0 { completed as f64 / (makespan_ns as f64 / 1e9) } else { 0.0 };
    let report = ServeReport {
        tenants: tenants_report,
        virtual_ns: Some(makespan_ns),
        queries_per_sec: Some(qps),
    };
    report.check_invariants(true);
    report
}

fn observe(tenant: u32, class: u8, verdict: &'static str, depth: u32) {
    ml4db_obs::emit_with(|| ml4db_obs::Event::ServeVerdict {
        tenant,
        class,
        verdict,
        queue_depth: depth,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4db_datagen::{LoadSpec, SchemaGraph, TemplateMix};
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use ml4db_storage::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(3);
        let db = Database::analyze(
            joblite(&DatasetConfig { base_rows: 120, ..Default::default() }, &mut rng),
            &mut rng,
        );
        let env = Env::new(&db);
        let mix = TemplateMix::generate(&db, &SchemaGraph::joblite(), 3, 3, 2, 5);
        let spec = LoadSpec {
            clients: 400,
            classes: 3,
            mean_think_ns: 3_000_000,
            total_requests: 3_000,
        };
        let mut gen = LoadGen::new(spec, mix, seed);
        let cfg = SimConfig {
            workers: 4,
            admission: AdmissionConfig { capacity: 32, soft_limit: 16, classes: 3, seed },
        };
        let report = run_closed_loop(&env, &mut gen, &cfg);
        assert_eq!(report.submitted(), 3_000);
        assert!(report.completed() > 0, "some work must complete");
        assert!(report.queries_per_sec.unwrap() > 0.0);
        report.to_canonical_json().to_string()
    }

    #[test]
    fn closed_loop_drains_and_repeats_byte_identically() {
        let a = run_once(9);
        let b = run_once(9);
        assert_eq!(a, b);
        let c = run_once(10);
        assert_ne!(a, c, "the load seed must matter");
    }
}
