//! Serving benchmark: drives the deterministic closed-loop simulator at
//! a 10⁵-client scale and writes `BENCH_serve.json`.
//!
//! Every headline number (queries/s, p99 µs, shed rate) is measured on
//! the **virtual** clock, so the file is byte-stable across machines
//! and across `ML4DB_THREADS`; the only wall-clock figure is the
//! non-canonical `drive_rate_per_sec` (how fast this host stepped the
//! simulation), included for curiosity and excluded from any
//! comparison.
//!
//! Knobs (all optional, all env vars):
//!
//! * `ML4DB_SERVE_CLIENTS`   — virtual clients (default 100 000)
//! * `ML4DB_SERVE_REQUESTS`  — total requests issued (default 150 000)
//! * `ML4DB_SERVE_THINK_NS`  — mean think time in virtual ns
//! * `ML4DB_SERVE_WORKERS`   — virtual service workers (default 8)
//! * `ML4DB_SERVE_SEED`      — load seed (default 42)

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml4db_datagen::{LoadGen, LoadSpec, SchemaGraph, TemplateMix};
use ml4db_obs as obs;
use ml4db_optimizer::Env;
use ml4db_serve::{run_closed_loop, AdmissionConfig, SimConfig};
use ml4db_storage::datasets::{joblite, DatasetConfig};
use ml4db_storage::Database;
use serde_json::Value;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let clients = env_u64("ML4DB_SERVE_CLIENTS", 100_000) as u32;
    let requests = env_u64("ML4DB_SERVE_REQUESTS", 60_000);
    let think_ns = env_u64("ML4DB_SERVE_THINK_NS", 4_000_000_000);
    let workers = env_u64("ML4DB_SERVE_WORKERS", 8) as usize;
    let seed = env_u64("ML4DB_SERVE_SEED", 42);

    let mut rng = StdRng::seed_from_u64(seed);
    let db = Database::analyze(
        joblite(&DatasetConfig { base_rows: 400, ..Default::default() }, &mut rng),
        &mut rng,
    );
    let env = Env::new(&db);
    let mix = TemplateMix::generate(&db, &SchemaGraph::joblite(), 4, 6, 4, seed ^ 0xA5A5);
    let spec = LoadSpec {
        clients,
        classes: 3,
        mean_think_ns: think_ns,
        total_requests: requests,
    };
    let mut gen = LoadGen::new(spec, mix, seed);

    let cfg = SimConfig {
        workers,
        admission: AdmissionConfig { capacity: 256, soft_limit: 192, classes: 3, seed },
    };

    obs::set_mode(obs::Mode::Noop);
    let wall = Instant::now();
    let report = run_closed_loop(&env, &mut gen, &cfg);
    let drive_secs = wall.elapsed().as_secs_f64();

    let mut o = match report.to_canonical_json() {
        Value::Object(o) => o,
        _ => BTreeMap::new(),
    };
    o.insert("bench".to_string(), Value::String("serve_closed_loop".to_string()));
    o.insert("clients".to_string(), Value::Number(f64::from(clients)));
    o.insert("requests".to_string(), Value::Number(requests as f64));
    o.insert("workers".to_string(), Value::Number(workers as f64));
    o.insert("seed".to_string(), Value::Number(seed as f64));
    // Non-canonical: how fast this host drove the virtual clock. Never
    // compare this across machines; it is not part of the report proper.
    o.insert(
        "drive_rate_per_sec_noncanonical".to_string(),
        Value::Number(if drive_secs > 0.0 { report.submitted() as f64 / drive_secs } else { 0.0 }),
    );
    let json = Value::Object(o).to_string();

    std::fs::write("BENCH_serve.json", format!("{json}\n")).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!(
        "serve_bench: {} submitted, {} completed, qps={:.1}, p99={:?}us, shed_rate={:.4}, wall={:.2}s",
        report.submitted(),
        report.completed(),
        report.queries_per_sec.unwrap_or(0.0),
        report.p99_us(),
        report.shed_rate(),
        drive_secs
    );
}
