//! The threaded serving front end: session-per-client submission,
//! admission control, worker threads executing over [`SessionView`]s,
//! and an exactly-once response table.
//!
//! # Threading model
//!
//! The server is a passive shared object: client threads call
//! [`Server::submit`] and then [`Server::await_take`]; worker threads
//! run [`Server::run_worker`] until [`Server::close`] is called and the
//! queue drains. All shared state is sharded and every lock acquisition
//! recovers from poisoning — a panicking worker (or a panic injected by
//! a test) can never wedge submission, execution, or response delivery.
//!
//! # Exactly-once contract
//!
//! Every submitted request resolves to **exactly one** [`Response`]
//! deposited in the response table: shed and rejected requests resolve
//! synchronously inside `submit`, admitted requests resolve when a
//! worker finishes them (including by contained panic). The table
//! counts double-deposits ([`Server::duplicate_responses`], always 0
//! unless accounting breaks) and `await_take` *removes* the response,
//! so a second take of the same id observably returns nothing.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use ml4db_obs::Histogram;
use ml4db_optimizer::Env;
use ml4db_plan::Query;
use ml4db_storage::durable::{DurableStore, StorageMedium, WalError};

use crate::admission::{AdmissionConfig, AdmissionQueue, AdmissionVerdict, Ticket};
use crate::report::{ServeReport, TenantReport};

/// One client request. Ids must be unique per run — sessions own an id
/// namespace (e.g. `session << 32 | seq`).
#[derive(Clone, Debug)]
pub struct Request {
    /// Caller-unique request id; the response is filed under it.
    pub id: u64,
    /// Session (client) the request belongs to.
    pub session: u64,
    /// Tenant for accounting and reporting.
    pub tenant: u32,
    /// Priority class (0 = most latency-sensitive).
    pub class: u8,
    /// The query to serve.
    pub query: Query,
}

/// How a request resolved.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Executed; simulated latency in µs.
    Done {
        /// Simulated execution latency (µs).
        latency_us: f64,
    },
    /// Refused by load control.
    Shed(&'static str),
    /// Refused as malformed.
    Rejected(&'static str),
    /// Admitted but could not produce a result ("no_plan" or "panic").
    Failed(&'static str),
}

/// The single response every submitted request eventually receives.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request this answers.
    pub request_id: u64,
    /// Tenant copied from the request.
    pub tenant: u32,
    /// Resolution.
    pub outcome: Outcome,
}

/// Serving-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Number of tenants; requests naming others are rejected.
    pub tenants: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { admission: AdmissionConfig::default(), tenants: 4 }
    }
}

const RESPONSE_SHARDS: usize = 64;

/// Sharded rendezvous between workers depositing responses and
/// sessions awaiting them.
struct ResponseTable {
    shards: Vec<(Mutex<HashMap<u64, Response>>, Condvar)>,
    duplicates: AtomicU64,
}

impl ResponseTable {
    fn new() -> Self {
        Self {
            shards: (0..RESPONSE_SHARDS).map(|_| (Mutex::new(HashMap::new()), Condvar::new())).collect(),
            duplicates: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u64) -> &(Mutex<HashMap<u64, Response>>, Condvar) {
        &self.shards[(id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % RESPONSE_SHARDS]
    }

    fn lock<'s>(
        m: &'s Mutex<HashMap<u64, Response>>,
    ) -> MutexGuard<'s, HashMap<u64, Response>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn deposit(&self, resp: Response) {
        let (m, cv) = self.shard(resp.request_id);
        let prev = Self::lock(m).insert(resp.request_id, resp);
        if prev.is_some() {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
        }
        cv.notify_all();
    }

    fn try_take(&self, id: u64) -> Option<Response> {
        let (m, _) = self.shard(id);
        Self::lock(m).remove(&id)
    }

    fn await_take(&self, id: u64) -> Response {
        let (m, cv) = self.shard(id);
        let mut g = Self::lock(m);
        loop {
            if let Some(r) = g.remove(&id) {
                return r;
            }
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Per-tenant monotone counters (relaxed atomics; read at report time).
#[derive(Default)]
struct TenantCounters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

/// Where accepted requests are made durable. Implemented by
/// [`DurableStore`] over any medium: `record` journals one accepted
/// request (staged), `sync` drives the WAL's commit + fsync barrier.
/// The graceful-shutdown contract is built on this: [`Server::shutdown`]
/// drains the admission queue and then `sync`s, so an accepted request
/// can never be lost by a clean exit.
pub trait DurabilitySink: Send {
    /// Journals one accepted request (`request_id → packed metadata`).
    fn record(&mut self, request_id: u64, tenant: u32) -> Result<(), WalError>;
    /// Commits and fsyncs everything recorded so far.
    fn sync(&mut self) -> Result<(), WalError>;
}

impl<M: StorageMedium + Send> DurabilitySink for DurableStore<M> {
    fn record(&mut self, request_id: u64, tenant: u32) -> Result<(), WalError> {
        self.put(request_id, u64::from(tenant))
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.commit().map(|_| ())
    }
}

/// The serving front end over an [`Env`] engine core. See the module
/// docs for the threading model and the exactly-once contract.
pub struct Server<'e, 'db> {
    env: &'e Env<'db>,
    cfg: ServeConfig,
    queue: Mutex<AdmissionQueue<Request>>,
    qcv: Condvar,
    closed: AtomicBool,
    responses: ResponseTable,
    counters: Vec<TenantCounters>,
    latency: Vec<Mutex<Histogram>>,
    journal: Mutex<Option<Box<dyn DurabilitySink>>>,
    journal_errors: AtomicU64,
}

impl<'e, 'db> Server<'e, 'db> {
    /// A server over `env` with `cfg`.
    pub fn new(env: &'e Env<'db>, cfg: ServeConfig) -> Self {
        assert!(cfg.tenants > 0, "at least one tenant");
        Self {
            env,
            cfg,
            queue: Mutex::new(AdmissionQueue::new(cfg.admission)),
            qcv: Condvar::new(),
            closed: AtomicBool::new(false),
            responses: ResponseTable::new(),
            counters: (0..cfg.tenants).map(|_| TenantCounters::default()).collect(),
            latency: (0..cfg.tenants).map(|_| Mutex::new(Histogram::latency_us())).collect(),
            journal: Mutex::new(None),
            journal_errors: AtomicU64::new(0),
        }
    }

    /// Attaches a durability journal: every subsequently accepted
    /// request is recorded in it, and [`Server::shutdown`] fsyncs it
    /// after the queue drains.
    pub fn set_journal(&self, sink: Box<dyn DurabilitySink>) {
        *self.lock_journal() = Some(sink);
    }

    fn lock_journal(&self) -> MutexGuard<'_, Option<Box<dyn DurabilitySink>>> {
        self.journal.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Journal record/sync failures so far (the serving path degrades to
    /// in-memory rather than refusing traffic; callers watching this
    /// counter decide when to trip a breaker).
    pub fn journal_errors(&self) -> u64 {
        self.journal_errors.load(Ordering::Relaxed)
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &'e Env<'db> {
        self.env
    }

    fn lock_queue(&self) -> MutexGuard<'_, AdmissionQueue<Request>> {
        // Poison recovery: the queue only ever holds fully-formed
        // tickets; a panic under the lock cannot leave it half-mutated
        // in a way later pops would observe.
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submits one request. The verdict comes back immediately; the
    /// response (for *every* verdict) lands in the response table under
    /// `req.id`. Admitted work is executed by `run_worker` threads.
    pub fn submit(&self, req: Request) -> AdmissionVerdict {
        let tenant = req.tenant;
        let class = req.class;
        if tenant >= self.cfg.tenants {
            // Unknown tenant: account globally under tenant 0's ledger
            // would lie; refuse before any counter is touched.
            self.responses.deposit(Response {
                request_id: req.id,
                tenant,
                outcome: Outcome::Rejected("bad_tenant"),
            });
            return AdmissionVerdict::Rejected("bad_tenant");
        }
        let counters = &self.counters[tenant as usize];
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        if req.query.validate(self.env.db).is_err() {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.observe_verdict(tenant, class, "rejected", 0);
            self.responses.deposit(Response {
                request_id: req.id,
                tenant,
                outcome: Outcome::Rejected("invalid_query"),
            });
            return AdmissionVerdict::Rejected("invalid_query");
        }
        let id = req.id;
        let (verdict, depth) = {
            let mut q = self.lock_queue();
            let v = q.offer(req, class);
            let depth = q.depth() as u32;
            match v {
                Ok(v) => (v, depth),
                Err((_, v)) => (v, depth),
            }
        };
        self.observe_verdict(tenant, class, verdict.kind(), depth);
        match verdict {
            AdmissionVerdict::Admitted => {
                counters.admitted.fetch_add(1, Ordering::Relaxed);
                if let Some(sink) = self.lock_journal().as_mut() {
                    if sink.record(id, tenant).is_err() {
                        self.journal_errors.fetch_add(1, Ordering::Relaxed);
                        ml4db_obs::counter_add("serve.journal_errors", 1);
                    }
                }
                self.qcv.notify_one();
            }
            AdmissionVerdict::Shed(reason) => {
                counters.shed.fetch_add(1, Ordering::Relaxed);
                self.responses.deposit(Response { request_id: id, tenant, outcome: Outcome::Shed(reason) });
            }
            AdmissionVerdict::Rejected(reason) => {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                self.responses.deposit(Response {
                    request_id: id,
                    tenant,
                    outcome: Outcome::Rejected(reason),
                });
            }
        }
        verdict
    }

    fn observe_verdict(&self, tenant: u32, class: u8, verdict: &'static str, depth: u32) {
        ml4db_obs::emit_with(|| ml4db_obs::Event::ServeVerdict {
            tenant,
            class,
            verdict,
            queue_depth: depth,
        });
        ml4db_obs::counter_add(
            match verdict {
                "admitted" => "serve.admitted",
                "shed" => "serve.shed",
                _ => "serve.rejected",
            },
            1,
        );
    }

    /// Blocks until the response for `id` arrives, removing it. Exactly
    /// one caller gets it; a second take returns via [`Server::try_take`]
    /// as `None`.
    pub fn await_take(&self, id: u64) -> Response {
        self.responses.await_take(id)
    }

    /// Removes the response for `id` if already deposited.
    pub fn try_take(&self, id: u64) -> Option<Response> {
        self.responses.try_take(id)
    }

    /// Responses that overwrote an existing one — 0 unless the
    /// exactly-once contract broke (stress suites assert on it).
    pub fn duplicate_responses(&self) -> u64 {
        self.responses.duplicates.load(Ordering::Relaxed)
    }

    /// Worker entry point: executes admitted requests through a
    /// per-worker [`SessionView`](ml4db_optimizer::SessionView) until
    /// the server is closed *and* the queue has drained. Run this on N
    /// threads for an N-worker server.
    pub fn run_worker(&self, worker_id: u64) {
        let mut view = self.env.session(worker_id);
        loop {
            let ticket: Option<Ticket<Request>> = {
                let mut q = self.lock_queue();
                loop {
                    if let Some(t) = q.pop() {
                        break Some(t);
                    }
                    if self.closed.load(Ordering::Acquire) {
                        break None;
                    }
                    q = self.qcv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(ticket) = ticket else { return };
            let req = ticket.item;
            let counters = &self.counters[req.tenant as usize];
            // Contain panics from faulty learned components: the request
            // fails, the worker (and its view) live on.
            let served = catch_unwind(AssertUnwindSafe(|| view.serve(&req.query)));
            let outcome = match served {
                Ok(Some(latency_us)) => {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    self.latency[req.tenant as usize]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .observe(latency_us);
                    ml4db_obs::histogram_observe("serve.latency_us", latency_us);
                    Outcome::Done { latency_us }
                }
                Ok(None) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    Outcome::Failed("no_plan")
                }
                Err(_) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    Outcome::Failed("panic")
                }
            };
            self.responses.deposit(Response { request_id: req.id, tenant: req.tenant, outcome });
        }
    }

    /// Signals shutdown: workers drain what is already queued, then
    /// return. Late submissions still pass through admission (their
    /// responses only resolve if a worker is still draining), so
    /// callers should stop submitting before closing.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.qcv.notify_all();
    }

    /// Graceful shutdown: closes admission, waits for running workers
    /// to drain the queue, then commits + fsyncs the attached journal
    /// (if any) so every accepted request is durable before exit.
    ///
    /// Call while the worker threads are still running — they do the
    /// draining; join them afterwards for full quiescence. Returns the
    /// journal's sync result (`Ok` when no journal is attached).
    pub fn shutdown(&self) -> Result<(), WalError> {
        self.close();
        while self.queue_depth() > 0 {
            std::thread::yield_now();
        }
        ml4db_obs::counter_add("serve.shutdowns", 1);
        if let Some(sink) = self.lock_journal().as_mut() {
            sink.sync().inspect_err(|_| {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
                ml4db_obs::counter_add("serve.journal_errors", 1);
            })
        } else {
            Ok(())
        }
    }

    /// Current queue depth (racy snapshot; for monitoring and tests).
    pub fn queue_depth(&self) -> usize {
        self.lock_queue().depth()
    }

    /// Builds the per-tenant report from the live counters and latency
    /// histograms. Pass `drained: true` after close + worker join to
    /// additionally assert no admitted request was lost.
    pub fn report(&self, drained: bool) -> ServeReport {
        let tenants = self
            .counters
            .iter()
            .zip(&self.latency)
            .map(|(c, h)| {
                let h = h.lock().unwrap_or_else(|e| e.into_inner());
                TenantReport {
                    submitted: c.submitted.load(Ordering::Relaxed),
                    admitted: c.admitted.load(Ordering::Relaxed),
                    shed: c.shed.load(Ordering::Relaxed),
                    rejected: c.rejected.load(Ordering::Relaxed),
                    completed: c.completed.load(Ordering::Relaxed),
                    failed: c.failed.load(Ordering::Relaxed),
                    ..Default::default()
                }
                .with_quantiles(&h)
            })
            .collect();
        let report = ServeReport { tenants, virtual_ns: None, queries_per_sec: None };
        report.check_invariants(drained);
        report
    }

    /// Poisons one response shard and one expert-latency shard the way
    /// a panicking worker would — regression hook proving a poisoned
    /// shard cannot wedge serving. Test use only.
    #[doc(hidden)]
    pub fn poison_shards_for_test(&self) {
        let (m, _) = &self.responses.shards[0];
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = m.lock().unwrap();
                panic!("poison the response shard");
            })
            .join()
        });
        self.env.poison_latency_shard_for_test();
    }
}
