//! # ml4db-serve — the always-on serving front end
//!
//! Everything else in the workspace runs as batch experiments: build an
//! [`Env`](ml4db_optimizer::Env), sweep a workload, write a report.
//! This crate puts a *serving surface* in front of the same engine —
//! sessions submit queries continuously, admission control decides who
//! gets in, a worker pool plans and executes, and per-tenant ledgers
//! account for every request exactly once.
//!
//! The crate has two front ends over one set of parts:
//!
//! * [`server::Server`] — the threaded server. Real worker threads,
//!   condvar-backed response delivery, panic containment. Its
//!   accounting is exact (the stress suite pins exactly-once per
//!   tenant) but its interleavings are whatever the OS scheduler
//!   produces, so latency numbers from it are wall-clock and
//!   non-canonical.
//! * [`sim::run_closed_loop`] — the deterministic discrete-event
//!   simulator. Same admission queue, same session views, same
//!   per-tenant ledgers, but service times are the executor's
//!   *simulated* latencies on a virtual nanosecond clock. Its report is
//!   a pure function of `(database, spec, mix, seed, config)` and is
//!   byte-identical across runs and `ML4DB_THREADS` settings — this is
//!   where `BENCH_serve.json` comes from.
//!
//! Shared parts: [`admission::AdmissionQueue`] (bounded, classed,
//! seeded shedding), [`report::ServeReport`] (exactly-once ledgers +
//! quantiles from mergeable histograms), and per-worker
//! [`SessionView`](ml4db_optimizer::SessionView)s so the hot path reads
//! session-local memo before touching shared sharded state.

pub mod admission;
pub mod report;
pub mod server;
pub mod sim;

pub use admission::{AdmissionConfig, AdmissionQueue, AdmissionVerdict, Ticket};
pub use report::{ServeReport, TenantReport};
pub use server::{DurabilitySink, Outcome, Request, Response, ServeConfig, Server};
pub use sim::{run_closed_loop, SimConfig};
