//! Bounded, priority-classed admission control.
//!
//! Every request entering the serving layer passes through one
//! [`AdmissionQueue`]. The queue is **bounded** — occupancy can never
//! exceed [`AdmissionConfig::capacity`], enforced structurally rather
//! than by cooperation — and **classed**: class 0 is the most
//! latency-sensitive, higher classes shed earlier under pressure.
//! Within one class, service order is strict FIFO.
//!
//! # The admission state machine
//!
//! An offered request receives exactly one verdict:
//!
//! * **Rejected** — malformed before load is even considered (unknown
//!   priority class here; the server additionally rejects unknown
//!   tenants and invalid queries before offering). Rejections are the
//!   caller's fault and do not depend on queue state.
//! * **Shed** — well-formed but refused by load control: either the
//!   queue is at capacity (`queue_full`), or occupancy is inside the
//!   overload band `[soft_limit, capacity)` and the seeded coin says
//!   this arrival is sacrificed (`load_shed`). Sheds are the system's
//!   choice and are *deterministic given the seed and the arrival
//!   order*: the coin is a splitmix of `(seed, arrival index)`, scaled
//!   by how deep into the band the queue is and by the request's class.
//! * **Admitted** — enqueued in its class lane, FIFO.
//!
//! Determinism matters because the closed-loop simulator replays the
//! same arrival sequence and must shed the same requests every run;
//! the property suite (`tests/serve_properties.rs`) pins all three
//! guarantees.

use std::collections::VecDeque;

/// Admission-control knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Hard occupancy bound; offers beyond it are shed as `queue_full`.
    pub capacity: usize,
    /// Start of the overload band: at or above this occupancy, seeded
    /// probabilistic shedding kicks in. Clamped to `capacity`.
    pub soft_limit: usize,
    /// Number of priority classes in service (1..=8); class ids at or
    /// beyond this are rejected.
    pub classes: u8,
    /// Seed of the shedding coin.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { capacity: 1024, soft_limit: 768, classes: 3, seed: 0 }
    }
}

/// The fate of one offered request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Enqueued; will be popped FIFO within its class.
    Admitted,
    /// Refused by load control ("queue_full" or "load_shed").
    Shed(&'static str),
    /// Malformed offer ("bad_class"; servers add their own reasons).
    Rejected(&'static str),
}

impl AdmissionVerdict {
    /// Stable lowercase tag ("admitted" / "shed" / "rejected").
    pub fn kind(&self) -> &'static str {
        match self {
            AdmissionVerdict::Admitted => "admitted",
            AdmissionVerdict::Shed(_) => "shed",
            AdmissionVerdict::Rejected(_) => "rejected",
        }
    }
}

/// An admitted request plus its admission metadata.
#[derive(Clone, Debug)]
pub struct Ticket<T> {
    /// The admitted payload.
    pub item: T,
    /// Priority class it was admitted under.
    pub class: u8,
    /// Global arrival index at admission (monotone; FIFO evidence).
    pub seq: u64,
}

/// SplitMix64 — the shedding coin. One multiply-xor-shift chain per
/// arrival; changing the seed or the arrival index changes the draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The bounded classed queue. Not internally synchronized — the server
/// wraps it in a poison-recovering mutex; the simulator owns it
/// outright.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    cfg: AdmissionConfig,
    lanes: Vec<VecDeque<Ticket<T>>>,
    occupancy: usize,
    arrivals: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue under `cfg`.
    ///
    /// # Panics
    /// Panics on a zero capacity or a class count outside 1..=8.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.capacity > 0, "admission capacity must be positive");
        assert!((1..=8).contains(&cfg.classes), "1..=8 priority classes");
        let cfg = AdmissionConfig { soft_limit: cfg.soft_limit.min(cfg.capacity), ..cfg };
        Self {
            lanes: (0..cfg.classes).map(|_| VecDeque::new()).collect(),
            cfg,
            occupancy: 0,
            arrivals: 0,
        }
    }

    /// The configuration in force (soft limit already clamped).
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Requests currently queued across all classes.
    pub fn depth(&self) -> usize {
        self.occupancy
    }

    /// Total offers seen (admitted or not) — the arrival index of the
    /// next offer.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Offers one request; returns its verdict. Admitted requests are
    /// queued, others are returned to the caller inside the verdict
    /// (the payload is handed back untouched via `Err`).
    pub fn offer(&mut self, item: T, class: u8) -> Result<AdmissionVerdict, (T, AdmissionVerdict)> {
        let idx = self.arrivals;
        self.arrivals += 1;
        if class >= self.cfg.classes {
            return Err((item, AdmissionVerdict::Rejected("bad_class")));
        }
        if self.occupancy >= self.cfg.capacity {
            return Err((item, AdmissionVerdict::Shed("queue_full")));
        }
        if self.occupancy >= self.cfg.soft_limit && self.cfg.capacity > self.cfg.soft_limit {
            // Depth into the overload band, scaled so higher classes shed
            // first: class c's effective pressure is band_frac × (c+1)/classes.
            let band = (self.cfg.capacity - self.cfg.soft_limit) as f64;
            let frac = (self.occupancy - self.cfg.soft_limit) as f64 / band;
            let pressure = frac * f64::from(class + 1) / f64::from(self.cfg.classes);
            let coin = splitmix64(self.cfg.seed ^ idx) as f64 / u64::MAX as f64;
            if coin < pressure {
                return Err((item, AdmissionVerdict::Shed("load_shed")));
            }
        }
        self.lanes[class as usize].push_back(Ticket { item, class, seq: idx });
        self.occupancy += 1;
        Ok(AdmissionVerdict::Admitted)
    }

    /// Pops the next ticket: the head of the lowest-numbered non-empty
    /// class lane (strict priority, FIFO within class).
    pub fn pop(&mut self) -> Option<Ticket<T>> {
        for lane in &mut self.lanes {
            if let Some(t) = lane.pop_front() {
                self.occupancy -= 1;
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, soft: usize) -> AdmissionConfig {
        AdmissionConfig { capacity, soft_limit: soft, classes: 3, seed: 9 }
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut q = AdmissionQueue::new(cfg(4, 4));
        for i in 0..10u32 {
            let _ = q.offer(i, 0);
            assert!(q.depth() <= 4);
        }
        assert_eq!(q.depth(), 4);
        assert!(matches!(
            q.offer(99, 0),
            Err((99, AdmissionVerdict::Shed("queue_full")))
        ));
    }

    #[test]
    fn strict_priority_fifo_within_class() {
        let mut q = AdmissionQueue::new(cfg(16, 16));
        q.offer("b0", 1).unwrap();
        q.offer("a0", 0).unwrap();
        q.offer("b1", 1).unwrap();
        q.offer("a1", 0).unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|t| t.item).collect();
        assert_eq!(order, vec!["a0", "a1", "b0", "b1"]);
    }

    #[test]
    fn overload_band_sheds_deterministically() {
        let run = |seed: u64| -> Vec<&'static str> {
            let mut q = AdmissionQueue::new(AdmissionConfig {
                capacity: 32,
                soft_limit: 8,
                classes: 3,
                seed,
            });
            (0..200u32)
                .map(|i| match q.offer(i, (i % 3) as u8) {
                    Ok(v) => v.kind(),
                    Err((_, v)) => v.kind(),
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same verdict sequence");
        assert_ne!(run(7), run(8), "the coin must actually depend on the seed");
        assert!(run(7).contains(&"shed"), "the band must shed under sustained load");
    }

    #[test]
    fn bad_class_is_rejected_not_shed() {
        let mut q = AdmissionQueue::new(cfg(4, 4));
        assert!(matches!(
            q.offer(1u32, 7),
            Err((1, AdmissionVerdict::Rejected("bad_class")))
        ));
        assert_eq!(q.depth(), 0);
    }
}
