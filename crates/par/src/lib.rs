//! Scoped-thread work pool for workload evaluation.
//!
//! This crate is the bottom layer of the evaluation substrate: a
//! dependency-free fork-join pool built on [`std::thread::scope`]. Its
//! one export that matters is [`par_map`], which fans a slice out over
//! worker threads and returns results **in input order**, so callers are
//! bit-identical to their serial formulation regardless of thread count.
//!
//! # Determinism contract
//!
//! `par_map(items, f)` returns exactly `items.iter().map(f).collect()`
//! as long as `f` is a pure function of its arguments. Work is divided
//! into contiguous chunks claimed from an atomic counter; each chunk
//! records its starting offset and results are stitched back together in
//! offset order. Nothing about scheduling, thread count, or chunk size
//! can leak into the output. Callers whose per-item work consumes
//! randomness must derive a per-item seed *before* fanning out (see
//! `collect_observations_diverse` in `ml4db-optimizer` for the pattern).
//!
//! # Thread-count resolution
//!
//! The pool size is resolved per call, in priority order:
//! 1. a programmatic [`set_threads`] override (tests, benchmarks),
//! 2. the `ML4DB_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `ML4DB_THREADS=1` (or `set_threads(1)`) short-circuits to a plain
//! serial loop on the calling thread — no pool, no atomics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the pool size for subsequent [`par_map`] calls in this
/// process. Pass 0 to clear the override and fall back to
/// `ML4DB_THREADS` / hardware parallelism. Returns the previous override.
pub fn set_threads(n: usize) -> usize {
    THREAD_OVERRIDE.swap(n, Ordering::SeqCst)
}

/// The pool size [`par_map`] will use right now: the [`set_threads`]
/// override if set, else `ML4DB_THREADS` if parseable and non-zero, else
/// the hardware's available parallelism (at least 1).
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("ML4DB_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to [`max_threads`] scoped threads,
/// returning results in input order. Bit-identical to
/// `items.iter().map(f).collect()` for pure `f`, at any thread count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives each item's index. The index
/// is the canonical hook for per-item RNG seeding: derive
/// `seed = base_seed ^ index` (or pre-draw a seed slice serially) so the
/// randomness consumed by one item cannot depend on scheduling.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = max_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Contiguous chunks, claimed work-stealing style from a shared
    // counter; ~4 chunks per worker smooths over uneven item costs
    // without shrinking chunks so far that claim traffic dominates.
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(n_chunks));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(items.len());
                let out: Vec<U> =
                    items[start..end].iter().enumerate().map(|(i, t)| f(start + i, t)).collect();
                // Poison-recover: the accumulator only ever holds fully
                // computed chunks, so a sibling worker's panic (which
                // `thread::scope` will re-raise anyway) must not also
                // poison result collection for chunks already finished.
                done.lock().unwrap_or_else(|e| e.into_inner()).push((start, out));
            });
        }
    });

    let mut parts = done.into_inner().unwrap();
    parts.sort_by_key(|(start, _)| *start);
    let mut result = Vec::with_capacity(items.len());
    for (_, mut part) in parts {
        result.append(&mut part);
    }
    debug_assert_eq!(result.len(), items.len());
    result
}

/// Serial reference implementation of [`par_map_indexed`]; exists so
/// tests and benchmarks can compare against the parallel path directly.
pub fn serial_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    F: Fn(usize, &T) -> U,
{
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// RAII guard that applies a [`set_threads`] override and restores the
/// previous value on drop. Lets tests pin a thread count without
/// leaking state into other tests in the same process.
pub struct ThreadGuard {
    previous: usize,
}

impl ThreadGuard {
    /// Applies `n` as the thread override until the guard drops.
    pub fn new(n: usize) -> Self {
        Self { previous: set_threads(n) }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        set_threads(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `set_threads` is process-global, so tests that touch it serialize
    // on this lock to stay correct under the default parallel test
    // runner.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let _t = ThreadGuard::new(4);
        let items: Vec<u64> = (0..1013).collect();
        let out = par_map(&items, |&x| x * 3 + 1);
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).map(|i| i * 7 + 3).collect();
        let f = |i: usize, x: &u64| {
            // Mix index and value so both order bugs and item bugs show.
            let mut h = *x ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 33;
            h.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        };
        let serial = serial_map_indexed(&items, f);
        for threads in [1, 2, 3, 4, 8, 32] {
            let _t = ThreadGuard::new(threads);
            assert_eq!(par_map_indexed(&items, f), serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let _t = ThreadGuard::new(4);
        let empty: Vec<u32> = vec![];
        assert_eq!(par_map(&empty, |&x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn thread_guard_restores_previous_override() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let baseline = set_threads(0);
        {
            let _t = ThreadGuard::new(7);
            assert_eq!(max_threads(), 7);
            {
                let _inner = ThreadGuard::new(2);
                assert_eq!(max_threads(), 2);
            }
            assert_eq!(max_threads(), 7);
        }
        assert!(max_threads() >= 1);
        set_threads(baseline);
    }

    #[test]
    fn results_can_borrow_from_captured_state() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let _t = ThreadGuard::new(3);
        let words = ["plan", "cache", "epoch", "fingerprint"];
        let lens = par_map(&words, |w| w.len());
        assert_eq!(lens, vec![4, 5, 5, 11]);
    }
}
