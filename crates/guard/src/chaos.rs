//! Deterministic fault injection: the harness that *proves* the
//! guardrails.
//!
//! Each [`Fault`] corrupts one learned component in a specific way — NaN
//! estimates, a constant-zero estimator, a model gone stale after a data
//! shift, adversarial latency spikes, displaced index predictions,
//! out-of-bounds panics, a corrupted spatial CDF — and
//! [`run_scenario`] measures the system's behaviour with the guardrails
//! on (`guarded = true`) or off. Everything is seeded and call-count
//! driven: no clocks, no ambient randomness, serial scenario loops — so a
//! [`ScenarioReport`] is a pure function of `(fault, guarded, seed)` and
//! [`ScenarioReport::bits`] is byte-identical across `ML4DB_THREADS`
//! settings.
//!
//! The pass criteria (see [`ScenarioReport::passes`]) are the tentpole's
//! contract: under any injected fault, the guarded system must not
//! panic, must serve oracle-correct results, and must stay within 1.5×
//! the pure-classical latency. Several faults *demonstrably break* the
//! unguarded system — the chaos tests assert that too, so the guard is
//! proven against failures that actually happen, not strawmen.

use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

use ml4db_index::{BPlusTree, KeyValue, OrderedIndex};
use ml4db_optimizer::Env;
use ml4db_plan::executor::{execute, naive_execute, normalize_row};
use ml4db_plan::{
    all_hint_sets, CardEstimator, ClassicEstimator, HintSet, Planner, Query,
};
use ml4db_spatial::data::{generate_points, unit_domain, SpatialDistribution};
use ml4db_storage::datasets::{joblite, DatasetConfig};
use ml4db_storage::{Database, Row};
use ml4db_spatial::{Point, Rect, RTree, ZmIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::estimator::GuardedCardEstimator;
use crate::index_guard::GuardedIndex;
use crate::spatial_guard::{GuardedSpatial, SpatialModel};
use crate::steering::GuardedSteering;

/// One injected failure mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The cardinality estimator returns NaN for every sub-join.
    NanEstimates,
    /// The cardinality estimator returns +∞ for every sub-join.
    InfEstimates,
    /// The cardinality estimator returns 0 for everything — every join
    /// looks free, so an unguarded planner nested-loops everything.
    ConstantZero,
    /// The estimator is frozen on a pre-shift snapshot of the data and
    /// systematically underestimates after the data grows 10×.
    StaleAfterShift,
    /// Steering adversarially picks the slowest hint arm per query.
    LatencySpikes,
    /// The steering policy panics on every query.
    PanickingPolicy,
    /// Learned index predictions displaced by `k` slots: every lookup
    /// lands outside its bounded search window and misses.
    DisplacedIndex {
        /// Displacement in slots.
        k: usize,
    },
    /// The learned index predicts out of bounds and panics on access.
    OobIndexPanic,
    /// The spatial index's learned CDF is corrupted: ranges silently
    /// drop half their results and kNN probes the wrong region.
    SpatialDisplaced,
}

impl Fault {
    /// All injected faults, in the canonical run order.
    pub fn all() -> Vec<Fault> {
        vec![
            Fault::NanEstimates,
            Fault::InfEstimates,
            Fault::ConstantZero,
            Fault::StaleAfterShift,
            Fault::LatencySpikes,
            Fault::PanickingPolicy,
            Fault::DisplacedIndex { k: 40 },
            Fault::OobIndexPanic,
            Fault::SpatialDisplaced,
        ]
    }

    /// Stable scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::NanEstimates => "nan-estimates",
            Fault::InfEstimates => "inf-estimates",
            Fault::ConstantZero => "constant-zero-estimator",
            Fault::StaleAfterShift => "stale-after-shift",
            Fault::LatencySpikes => "latency-spikes",
            Fault::PanickingPolicy => "panicking-policy",
            Fault::DisplacedIndex { .. } => "displaced-index",
            Fault::OobIndexPanic => "oob-index-panic",
            Fault::SpatialDisplaced => "spatial-displaced",
        }
    }
}

/// Outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name ([`Fault::name`]).
    pub fault: String,
    /// Whether the guardrails were active.
    pub guarded: bool,
    /// A panic escaped the component under test.
    pub panicked: bool,
    /// Served answers that disagreed with the oracle.
    pub wrong_answers: u64,
    /// Total latency relative to the pure-classical baseline (1.0 =
    /// parity; only meaningful for planner/steering scenarios, 1.0
    /// otherwise).
    pub regression_factor: f64,
    /// The breaker tripped at least once (always false unguarded).
    pub tripped: bool,
    /// Operations exercised (queries or probes).
    pub operations: u64,
}

impl ScenarioReport {
    /// The guarded-system contract: no escaped panic, zero wrong served
    /// answers, and at most 1.5× the classical baseline's latency.
    pub fn passes(&self) -> bool {
        !self.panicked && self.wrong_answers == 0 && self.regression_factor <= 1.5
    }

    /// Deterministic fingerprint of every field, for byte-identity
    /// assertions across thread counts.
    pub fn bits(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fault.hash(&mut h);
        self.guarded.hash(&mut h);
        self.panicked.hash(&mut h);
        self.wrong_answers.hash(&mut h);
        self.regression_factor.to_bits().hash(&mut h);
        self.tripped.hash(&mut h);
        self.operations.hash(&mut h);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// Faulty components
// ---------------------------------------------------------------------------

/// The faulty cardinality estimators.
enum FaultyEstimator {
    Nan,
    Inf,
    Zero,
    /// Frozen on a pre-shift snapshot: estimates come from the old,
    /// 10×-smaller database regardless of the one being planned.
    Stale(Box<Database>),
}

impl CardEstimator for FaultyEstimator {
    fn estimate(&self, db: &Database, query: &Query, mask: u64) -> f64 {
        match self {
            FaultyEstimator::Nan => f64::NAN,
            FaultyEstimator::Inf => f64::INFINITY,
            FaultyEstimator::Zero => 0.0,
            FaultyEstimator::Stale(old) => {
                let _ = db; // the stale model never sees the new data
                ClassicEstimator.estimate(old, query, mask)
            }
        }
    }
}

/// A learned index whose bounded-search window is displaced by `k` slots:
/// present keys fall outside it, so every lookup misses and every range
/// starts late.
struct DisplacedIdx {
    inner: Vec<KeyValue>,
    k: usize,
}

impl OrderedIndex for DisplacedIdx {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, key: u64) -> Option<u64> {
        let pos = self.inner.partition_point(|e| e.0 < key) + self.k;
        let lo = pos.min(self.inner.len());
        let hi = (pos + 2).min(self.inner.len());
        self.inner[lo..hi].iter().find(|e| e.0 == key).map(|e| e.1)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        let start =
            (self.inner.partition_point(|e| e.0 < lo) + self.k).min(self.inner.len());
        self.inner[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

/// A learned index whose position prediction runs off the end of the data
/// array — the raw out-of-bounds panic of an unclamped model.
struct OobIdx {
    inner: Vec<KeyValue>,
}

impl OrderedIndex for OobIdx {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, _key: u64) -> Option<u64> {
        Some(self.inner[self.inner.len() + 17].1)
    }
    fn range(&self, _lo: u64, _hi: u64) -> Vec<KeyValue> {
        vec![self.inner[self.inner.len() + 17]]
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

/// A spatial model with a corrupted learned CDF: ranges drop half their
/// results, kNN probes a displaced region.
struct CorruptedZm {
    inner: ZmIndex,
}

impl SpatialModel for CorruptedZm {
    fn range(&self, query: &Rect) -> Vec<usize> {
        let mut ids = self.inner.range_query(query).0;
        let keep = ids.len() / 2;
        ids.truncate(keep);
        ids
    }
    fn knn(&self, point: &Point, k: usize) -> Vec<usize> {
        let off = Point::new(point.x * 0.1, 1000.0 - point.y);
        self.inner.knn_approximate(&off, k, 4)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

fn build_db(base_rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::analyze(
        joblite(&DatasetConfig { base_rows, ..Default::default() }, &mut rng),
        &mut rng,
    );
    db.add_index("title", "year");
    db
}

fn build_workload(db: &Database, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    ml4db_datagen::WorkloadGenerator::new(
        ml4db_datagen::SchemaGraph::joblite(),
        ml4db_datagen::WorkloadConfig { min_tables: 2, max_tables: 3, ..Default::default() },
    )
    .generate_many(db, n, &mut rng)
}

/// Canonical sorted multiset of normalized output rows.
fn multiset(db: &Database, query: &Query, rows: &[Row], layout: &[usize]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| format!("{:?}", normalize_row(db, query, layout, r)))
        .collect();
    v.sort_unstable();
    v
}

// ---------------------------------------------------------------------------
// Scenario runners
// ---------------------------------------------------------------------------

/// Plans every query with `est`, executes, and scores latency against the
/// pure-classical plans plus result correctness against `naive_execute`.
fn run_estimator_scenario(
    fault: Fault,
    est: &dyn CardEstimator,
    guarded: bool,
    tripped: impl Fn() -> bool,
    seed: u64,
) -> ScenarioReport {
    let db = build_db(250, seed);
    let queries = build_workload(&db, 12, seed);
    let planner = Planner::default();
    let mut total = 0.0f64;
    let mut classical_total = 0.0f64;
    let mut wrong = 0u64;
    let mut panicked = false;
    for q in &queries {
        // Attribute everything this query triggers — planning, guard
        // fallbacks and trips, per-operator execution — to its
        // fingerprint in the trace.
        ml4db_obs::with_query(q.fingerprint(), || {
            let classical_plan =
                planner.best_plan(&db, q, &ClassicEstimator).expect("classical plans");
            let classical_lat = execute(&db, q, &classical_plan).expect("executes").latency_us;
            classical_total += classical_lat;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let plan = planner.best_plan(&db, q, est).expect("planner returns a plan");
                let res = execute(&db, q, &plan).expect("plan executes");
                let got = multiset(&db, q, &res.rows, &res.layout);
                let identity: Vec<usize> = (0..q.num_tables()).collect();
                let truth = multiset(&db, q, &naive_execute(&db, q).expect("naive"), &identity);
                (res.latency_us, got != truth)
            }));
            match outcome {
                Ok((lat, mismatch)) => {
                    total += lat;
                    wrong += u64::from(mismatch);
                }
                Err(_) => {
                    panicked = true;
                    total += classical_lat;
                }
            }
        });
    }
    ScenarioReport {
        fault: fault.name().to_string(),
        guarded,
        panicked,
        wrong_answers: wrong,
        regression_factor: total / classical_total.max(1e-9),
        tripped: tripped(),
        operations: queries.len() as u64,
    }
}

fn estimator_scenario(fault: Fault, guarded: bool, seed: u64) -> ScenarioReport {
    let faulty = match fault {
        Fault::NanEstimates => FaultyEstimator::Nan,
        Fault::InfEstimates => FaultyEstimator::Inf,
        Fault::ConstantZero => FaultyEstimator::Zero,
        Fault::StaleAfterShift => FaultyEstimator::Stale(Box::new(build_db(25, seed))),
        _ => unreachable!("not an estimator fault"),
    };
    if guarded {
        let g = GuardedCardEstimator::new(faulty, 8.0);
        run_estimator_scenario(fault, &g, true, || g.breaker().trips() > 0, seed)
    } else {
        run_estimator_scenario(fault, &faulty, false, || false, seed)
    }
}

fn steering_scenario(fault: Fault, guarded: bool, seed: u64) -> ScenarioReport {
    let db = build_db(250, seed);
    let env = Env::new(&db);
    let queries = build_workload(&db, 16, seed);
    // The two adversarial policies.
    let worst_arm = |env: &Env, q: &Query| -> HintSet {
        all_hint_sets()
            .into_iter()
            .filter_map(|h| env.plan_with_hint(q, h).map(|p| (h, p.est_cost)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(h, _)| h)
            .unwrap_or_else(HintSet::all)
    };
    let choose = |env: &Env, q: &Query| -> HintSet {
        match fault {
            Fault::LatencySpikes => worst_arm(env, q),
            Fault::PanickingPolicy => panic!("poisoned steering model"),
            _ => unreachable!("not a steering fault"),
        }
    };
    let mut total = 0.0f64;
    let mut expert_total = 0.0f64;
    let mut panicked = false;
    let mut tripped = false;
    if guarded {
        let g = GuardedSteering::new(choose);
        for q in &queries {
            let expert = ml4db_obs::with_query(q.fingerprint(), || {
                env.expert_latency(q).expect("expert plans")
            });
            expert_total += expert;
            total += g.run_guarded(&env, q);
        }
        tripped = g.breaker().trips() > 0;
    } else {
        for q in &queries {
            ml4db_obs::with_query(q.fingerprint(), || {
                let expert = env.expert_latency(q).expect("expert plans");
                expert_total += expert;
                let lat = catch_unwind(AssertUnwindSafe(|| {
                    let hint = choose(&env, q);
                    let plan = env.plan_with_hint(q, hint).expect("hinted plan");
                    env.run(q, &plan)
                }));
                match lat {
                    Ok(l) => total += l,
                    Err(_) => {
                        panicked = true;
                        total += expert;
                    }
                }
            });
        }
    }
    ScenarioReport {
        fault: fault.name().to_string(),
        guarded,
        panicked,
        wrong_answers: 0,
        regression_factor: total / expert_total.max(1e-9),
        tripped,
        operations: queries.len() as u64,
    }
}

fn run_index_probes<L: OrderedIndex>(
    fault: Fault,
    learned: L,
    guarded: bool,
    entries: &[KeyValue],
) -> ScenarioReport {
    let truth_idx = BPlusTree::bulk_load(entries);
    // Probe schedule: present keys, absent keys, and range windows.
    let gets: Vec<u64> = (0..200u64)
        .map(|i| {
            let key = entries[(i as usize * 13) % entries.len()].0;
            if i % 5 == 4 { key + 1 } else { key } // every 5th probe is absent
        })
        .collect();
    let ranges: Vec<(u64, u64)> =
        (0..20u64).map(|i| (i * 700, i * 700 + 450)).collect();
    let mut wrong = 0u64;
    let mut panicked = false;
    let mut tripped = false;
    let operations = (gets.len() + ranges.len()) as u64;
    if guarded {
        let g = GuardedIndex::new(learned, truth_idx);
        for &key in &gets {
            if g.get(key) != g.classical.get(key) {
                wrong += 1;
            }
        }
        for &(lo, hi) in &ranges {
            if g.range(lo, hi) != g.classical.range(lo, hi) {
                wrong += 1;
            }
        }
        tripped = g.breaker().trips() > 0;
    } else {
        for &key in &gets {
            match catch_unwind(AssertUnwindSafe(|| learned.get(key))) {
                Ok(res) => {
                    if res != truth_idx.get(key) {
                        wrong += 1;
                    }
                }
                Err(_) => panicked = true,
            }
        }
        for &(lo, hi) in &ranges {
            match catch_unwind(AssertUnwindSafe(|| learned.range(lo, hi))) {
                Ok(res) => {
                    if res != truth_idx.range(lo, hi) {
                        wrong += 1;
                    }
                }
                Err(_) => panicked = true,
            }
        }
    }
    ScenarioReport {
        fault: fault.name().to_string(),
        guarded,
        panicked,
        wrong_answers: wrong,
        regression_factor: 1.0,
        tripped,
        operations,
    }
}

fn index_scenario(fault: Fault, guarded: bool, seed: u64) -> ScenarioReport {
    let n = 3000u64;
    let entries: Vec<KeyValue> = (0..n).map(|i| (i * 7 + (seed % 7), i)).collect();
    match fault {
        Fault::DisplacedIndex { k } => {
            run_index_probes(fault, DisplacedIdx { inner: entries.clone(), k }, guarded, &entries)
        }
        Fault::OobIndexPanic => {
            run_index_probes(fault, OobIdx { inner: entries.clone() }, guarded, &entries)
        }
        _ => unreachable!("not an index fault"),
    }
}

fn spatial_scenario(fault: Fault, guarded: bool, seed: u64) -> ScenarioReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let pts = generate_points(SpatialDistribution::Clustered { clusters: 5 }, 2500, &mut rng);
    let rtree = RTree::bulk_load_str(&pts);
    let zm = ZmIndex::build(pts.clone(), unit_domain(), 16);
    let corrupted = CorruptedZm { inner: zm };
    let rects: Vec<Rect> = (0..20u64)
        .map(|i| {
            let lo = 35.0 * (i % 8) as f64;
            Rect::new(Point::new(lo, lo), Point::new(lo + 320.0, lo + 300.0))
        })
        .collect();
    let probes: Vec<Point> =
        (0..12).map(|i| pts[(i * 199) % pts.len()].rect.center()).collect();
    let brute_range = |q: &Rect| -> Vec<usize> {
        let (mut ids, _) = rtree.range_query(q);
        ids.sort_unstable();
        ids
    };
    let mut wrong = 0u64;
    let mut tripped = false;
    let operations = (rects.len() + probes.len()) as u64;
    if guarded {
        let g = GuardedSpatial::new(corrupted, rtree.clone());
        for q in &rects {
            if g.range_query(q) != brute_range(q) {
                wrong += 1;
            }
        }
        for p in &probes {
            let got = g.knn(p, 10);
            // Served answers must be exact (audited or classical): the
            // oracle is the R-tree's exact kNN.
            if got != rtree.knn(p, 10).0 {
                wrong += 1;
            }
        }
        tripped = g.breaker().trips() > 0;
    } else {
        for q in &rects {
            let mut got = corrupted.range(q);
            got.sort_unstable();
            if got != brute_range(q) {
                wrong += 1;
            }
        }
        for p in &probes {
            let got = SpatialModel::knn(&corrupted, p, 10);
            if got != rtree.knn(p, 10).0 {
                wrong += 1;
            }
        }
    }
    ScenarioReport {
        fault: fault.name().to_string(),
        guarded,
        panicked: false,
        wrong_answers: wrong,
        regression_factor: 1.0,
        tripped,
        operations,
    }
}

/// Runs one fault scenario, guarded or raw.
pub fn run_scenario(fault: Fault, guarded: bool, seed: u64) -> ScenarioReport {
    match fault {
        Fault::NanEstimates
        | Fault::InfEstimates
        | Fault::ConstantZero
        | Fault::StaleAfterShift => estimator_scenario(fault, guarded, seed),
        Fault::LatencySpikes | Fault::PanickingPolicy => {
            steering_scenario(fault, guarded, seed)
        }
        Fault::DisplacedIndex { .. } | Fault::OobIndexPanic => {
            index_scenario(fault, guarded, seed)
        }
        Fault::SpatialDisplaced => spatial_scenario(fault, guarded, seed),
    }
}

/// Runs every scenario in canonical order.
pub fn run_all(guarded: bool, seed: u64) -> Vec<ScenarioReport> {
    Fault::all().into_iter().map(|f| run_scenario(f, guarded, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_estimator_scenarios_are_parity() {
        for fault in [Fault::NanEstimates, Fault::ConstantZero] {
            let r = run_scenario(fault, true, 7);
            assert!(r.passes(), "{r:?}");
            assert!(r.tripped, "fault must trip the breaker: {r:?}");
            // Guard serves classical estimates → identical plans → exact
            // latency parity, not just ≤1.5×.
            assert!((r.regression_factor - 1.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn unguarded_constant_zero_blows_up() {
        let r = run_scenario(Fault::ConstantZero, false, 7);
        assert!(
            r.regression_factor > 1.5,
            "constant-zero should cause an unbounded regression: {r:?}"
        );
    }

    #[test]
    fn report_bits_are_stable_within_a_run() {
        let a = run_scenario(Fault::DisplacedIndex { k: 40 }, true, 7);
        let b = run_scenario(Fault::DisplacedIndex { k: 40 }, true, 7);
        assert_eq!(a.bits(), b.bits());
    }
}
