//! The disk-fault scenario family: a crash matrix that *proves* the
//! durable tier's recovery contract.
//!
//! Where [`crate::chaos`] injects faults into learned components, this
//! module injects them into the storage medium underneath
//! [`DurableStore`] — and instead of sampling a few crash points, the
//! matrix scenarios crash at **every** I/O operation of a seeded
//! workload, recover, and check the invariants against the
//! [`KvOracle`] reference:
//!
//! 1. recovered committed state equals a batch prefix in the legal
//!    window `[acked, attempted]` (no committed write lost, no
//!    uncommitted write surfaced);
//! 2. every rebuilt per-run learned index answers row-identically to
//!    binary search.
//!
//! Each scenario also runs with one protection disabled (`protected =
//! false`): no fsync barriers for the kill/torn families, no checksums
//! for the bit-flip family, no short-read cross-check for the silent
//! short read, and unwrap-style error handling for ENOSPC. The chaos
//! tests assert those runs *demonstrably fail* — the protections are
//! proven against losses that actually happen, not strawmen.
//!
//! Everything is a pure function of `(scenario, protected, seed)`: the
//! injection clock counts I/O calls, torn tails and flip offsets are
//! seeded, and reports hash byte-identically across `ML4DB_THREADS`.

use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

use ml4db_oracle::recovery_check::{check_run_indexes, KvOp, KvOracle};
use ml4db_storage::durable::{
    DurableStore, FaultSpec, SimDisk, StoreConfig, TailPolicy, WalConfig, WalError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::breaker::{BreakerConfig, CircuitBreaker, TripReason};

/// One disk-fault scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Crash before every fsync/op; unsynced bytes vanish entirely.
    KillBeforeFsync,
    /// Crash at every op; a seeded prefix of the unsynced tail survives
    /// (torn write).
    TornTail,
    /// Crash at every op; one seeded bit of the unsynced tail flips.
    BitFlip,
    /// The medium silently returns half a file on read.
    SilentShortRead,
    /// The medium reports ENOSPC on appends, persistently.
    EnospcBreaker,
}

impl DiskFault {
    /// All scenarios in canonical run order.
    pub fn all() -> Vec<DiskFault> {
        vec![
            DiskFault::KillBeforeFsync,
            DiskFault::TornTail,
            DiskFault::BitFlip,
            DiskFault::SilentShortRead,
            DiskFault::EnospcBreaker,
        ]
    }

    /// Stable scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            DiskFault::KillBeforeFsync => "kill-before-fsync",
            DiskFault::TornTail => "torn-tail",
            DiskFault::BitFlip => "bit-flip",
            DiskFault::SilentShortRead => "silent-short-read",
            DiskFault::EnospcBreaker => "enospc-breaker",
        }
    }
}

/// Outcome of one scenario sweep.
#[derive(Clone, Debug)]
pub struct DiskScenarioReport {
    /// Scenario name ([`DiskFault::name`]).
    pub scenario: String,
    /// Whether the relevant protection was active.
    pub protected: bool,
    /// Crash points (or fault cases) exercised.
    pub crash_points: u64,
    /// Recoveries performed and checked.
    pub recoveries: u64,
    /// Crash points whose recovery violated an invariant.
    pub violations: u64,
    /// First violation, human-readable (empty when none).
    pub first_violation: String,
    /// Learned-vs-binary-search probes performed across all recoveries.
    pub index_probes: u64,
    /// The `wal_append` breaker tripped (ENOSPC scenario only).
    pub breaker_tripped: bool,
    /// A panic escaped the store.
    pub panicked: bool,
}

impl DiskScenarioReport {
    /// The durable tier's contract: no escaped panic and zero invariant
    /// violations across every crash point.
    pub fn passes(&self) -> bool {
        !self.panicked && self.violations == 0
    }

    /// Deterministic fingerprint for byte-identity assertions across
    /// thread counts.
    pub fn bits(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.scenario.hash(&mut h);
        self.protected.hash(&mut h);
        self.crash_points.hash(&mut h);
        self.recoveries.hash(&mut h);
        self.violations.hash(&mut h);
        self.first_violation.hash(&mut h);
        self.index_probes.hash(&mut h);
        self.breaker_tripped.hash(&mut h);
        self.panicked.hash(&mut h);
        h.finish()
    }
}

/// Workload shape: small enough that a full every-op sweep stays fast,
/// busy enough to exercise rotation, flush, checkpoint, and GC.
const BATCHES: usize = 32;
const KEY_SPACE: u64 = 96;

fn store_cfg(checksums: bool, fsync_barriers: bool, read_retry: bool) -> StoreConfig {
    StoreConfig {
        wal: WalConfig {
            segment_bytes: 512,
            retry_limit: 4,
            checksums,
            fsync_barriers,
            read_retry,
        },
        memtable_limit: 12,
    }
}

/// Generates the seeded batch workload (and its oracle history).
fn gen_batches(seed: u64) -> (Vec<Vec<KvOp>>, KvOracle) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C_FA17);
    let mut oracle = KvOracle::new();
    let mut batches = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let n = rng.gen_range(1..=3usize);
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let key = rng.gen_range(0..KEY_SPACE);
            if rng.gen_bool(0.25) {
                ops.push(KvOp::Delete { key });
            } else {
                ops.push(KvOp::Put { key, value: rng.gen_range(0..1_000_000u64) });
            }
        }
        oracle.push(ops.clone());
        batches.push(ops);
    }
    (batches, oracle)
}

/// How far the workload got before the fault stopped it.
struct FeedOutcome {
    /// Batches whose commit fsync returned — the store *owes* these.
    acked: usize,
    /// Upper end of the legal prefix window: `acked`, plus one if the
    /// crash hit inside a `commit()` call (the commit frame may have
    /// reached the disk without the acknowledgement coming back).
    attempted: usize,
    crashed: bool,
}

fn feed(store: &mut DurableStore<SimDisk>, batches: &[Vec<KvOp>]) -> FeedOutcome {
    let mut acked = 0usize;
    for ops in batches {
        for op in ops {
            let r = match *op {
                KvOp::Put { key, value } => store.put(key, value),
                KvOp::Delete { key } => store.delete(key),
            };
            if r.is_err() {
                // Crash before the commit frame: this batch can never
                // legally surface.
                return FeedOutcome { acked, attempted: acked, crashed: true };
            }
        }
        match store.commit() {
            Ok(_) => acked += 1,
            Err(_) => {
                return FeedOutcome { acked, attempted: acked + 1, crashed: true }
            }
        }
    }
    // Final flush exercises run write + checkpoint + GC inside the
    // swept op range.
    match store.flush() {
        Ok(()) => FeedOutcome { acked, attempted: acked, crashed: false },
        Err(_) => FeedOutcome { acked, attempted: acked, crashed: true },
    }
}

/// Runs the full workload fault-free and returns the total number of
/// medium ops — the sweep's upper bound.
fn probe_total_ops(cfg: StoreConfig, batches: &[Vec<KvOp>]) -> u64 {
    let mut store =
        DurableStore::create(SimDisk::new(), cfg).expect("clean create cannot fail");
    let out = feed(&mut store, batches);
    assert!(!out.crashed, "probe run must complete");
    store.medium_mut().ops()
}

/// Sweeps a crash-tail family over every op of the workload, recovering
/// and checking invariants after each crash. `tail_for(point)` decides
/// the fate of unsynced bytes at that crash point.
#[allow(clippy::too_many_arguments)]
fn crash_matrix(
    name: &'static str,
    protected: bool,
    cfg: StoreConfig,
    seed: u64,
    stride: u64,
    batches: &[Vec<KvOp>],
    oracle: &KvOracle,
    tail_for: impl Fn(u64) -> TailPolicy,
) -> DiskScenarioReport {
    let total = probe_total_ops(cfg, batches);
    let mut report = DiskScenarioReport {
        scenario: name.to_string(),
        protected,
        crash_points: 0,
        recoveries: 0,
        violations: 0,
        first_violation: String::new(),
        index_probes: 0,
        breaker_tripped: false,
        panicked: false,
    };
    // Op 0 is the WAL-create of a store that holds nothing yet; the
    // sweep starts at 1.
    let mut point = 1u64;
    while point < total {
        report.crash_points += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut store = DurableStore::create(SimDisk::new(), cfg)
                .expect("clean create cannot fail");
            store.medium_mut().arm(FaultSpec::CrashAt { op: point, tail: tail_for(point) });
            let out = feed(&mut store, batches);
            let mut disk = store.into_medium();
            if !disk.crashed() {
                return None; // fault never fired (defensive; sweep < total)
            }
            disk.reboot(seed ^ point);
            let (recovered, _rep) = match DurableStore::open(disk, cfg) {
                Ok(v) => v,
                Err(e) => return Some((out, Err(format!("recovery failed: {e:?}")), 0)),
            };
            let state = recovered.committed_state();
            let prefix = oracle
                .check_prefix(&state, out.acked, out.attempted)
                .map_err(|v| v.to_string());
            let probes = match check_run_indexes(&recovered) {
                Ok(p) => p,
                Err(v) => return Some((out, Err(v.to_string()), 0)),
            };
            Some((out, prefix.map(|_| ()), probes))
        }));
        match outcome {
            Err(_) => {
                report.panicked = true;
                if report.first_violation.is_empty() {
                    report.first_violation = format!("panic at crash point {point}");
                }
            }
            Ok(None) => {}
            Ok(Some((_, check, probes))) => {
                report.recoveries += 1;
                report.index_probes += probes;
                if let Err(msg) = check {
                    report.violations += 1;
                    if report.first_violation.is_empty() {
                        report.first_violation = format!("op {point}: {msg}");
                    }
                }
            }
        }
        point += stride;
    }
    report
}

/// The silent-short-read scenario: clean workload, then recovery on a
/// medium that truncates reads without erroring.
fn short_read_scenario(protected: bool, seed: u64, batches: &[Vec<KvOp>], oracle: &KvOracle) -> DiskScenarioReport {
    let cfg = store_cfg(true, true, protected);
    let mut report = DiskScenarioReport {
        scenario: DiskFault::SilentShortRead.name().to_string(),
        protected,
        crash_points: 1,
        recoveries: 0,
        violations: 0,
        first_violation: String::new(),
        index_probes: 0,
        breaker_tripped: false,
        panicked: false,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut store =
            DurableStore::create(SimDisk::new(), cfg).expect("clean create cannot fail");
        let out = feed(&mut store, batches);
        assert!(!out.crashed);
        let mut disk = store.into_medium();
        disk.arm(FaultSpec::ShortReads { times: 2 });
        let (recovered, _rep) = match DurableStore::open(disk, cfg) {
            Ok(v) => v,
            Err(e) => return (out, Err(format!("recovery failed: {e:?}")), 0),
        };
        let state = recovered.committed_state();
        let prefix = oracle
            .check_prefix(&state, out.acked, out.attempted)
            .map_err(|v| v.to_string());
        match check_run_indexes(&recovered) {
            Ok(p) => (out, prefix.map(|_| ()), p),
            Err(v) => (out, Err(v.to_string()), 0),
        }
    }));
    match outcome {
        Err(_) => {
            report.panicked = true;
            report.first_violation = "panic during short-read recovery".to_string();
        }
        Ok((_, check, probes)) => {
            report.recoveries = 1;
            report.index_probes = probes;
            if let Err(msg) = check {
                report.violations = 1;
                report.first_violation = msg;
            }
        }
    }
    let _ = seed;
    report
}

/// The ENOSPC scenario. Protected: the bounded-retry appender surfaces
/// a clean [`WalError`] that trips the named `wal_append` breaker, and
/// the store keeps serving committed reads. Unprotected: the caller
/// unwraps, modelling code written without the error path — the panic
/// is the demonstrable failure.
fn enospc_scenario(protected: bool, seed: u64, batches: &[Vec<KvOp>], oracle: &KvOracle) -> DiskScenarioReport {
    let cfg = store_cfg(true, true, true);
    let mut report = DiskScenarioReport {
        scenario: DiskFault::EnospcBreaker.name().to_string(),
        protected,
        crash_points: 1,
        recoveries: 0,
        violations: 0,
        first_violation: String::new(),
        index_probes: 0,
        breaker_tripped: false,
        panicked: false,
    };
    let half = batches.len() / 2;
    let breaker = CircuitBreaker::named("wal_append", BreakerConfig::default());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut store =
            DurableStore::create(SimDisk::new(), cfg).expect("clean create cannot fail");
        let out = feed(&mut store, &batches[..half]);
        assert!(!out.crashed);
        let at = store.medium_mut().ops();
        store.medium_mut().arm(FaultSpec::NoSpaceAt { op: at, times: 1_000_000 });
        if protected {
            match store.put(KEY_SPACE + 1, 1) {
                Err(WalError::NoSpace { attempts }) => {
                    assert_eq!(
                        attempts,
                        cfg.wal.retry_limit + 1,
                        "retry schedule must be bounded and exact"
                    );
                    breaker.force_open(TripReason::ResourceExhausted);
                }
                other => return (out, Err(format!("expected NoSpace, got {other:?}")), 0),
            }
        } else {
            // Error-path-free code: unwrap. This panics — the point.
            store.put(KEY_SPACE + 1, 1).unwrap();
        }
        // The store must still serve every committed read.
        let state = store.committed_state();
        let prefix = oracle
            .check_prefix(&state, out.acked, out.acked)
            .map_err(|v| v.to_string());
        match check_run_indexes(&store) {
            Ok(p) => (out, prefix.map(|_| ()), p),
            Err(v) => (out, Err(v.to_string()), 0),
        }
    }));
    match outcome {
        Err(_) => {
            report.panicked = true;
            report.first_violation = "panic on ENOSPC".to_string();
        }
        Ok((_, check, probes)) => {
            report.recoveries = 1;
            report.index_probes = probes;
            if let Err(msg) = check {
                report.violations = 1;
                report.first_violation = msg;
            }
        }
    }
    report.breaker_tripped = breaker.trips() > 0;
    let _ = seed;
    report
}

/// Runs one scenario. `protected = false` disables exactly the
/// protection that scenario exists to prove: fsync barriers for the
/// kill/torn families, checksums for bit flips, the read cross-check
/// for silent short reads, and error handling for ENOSPC.
pub fn run_scenario(
    fault: DiskFault,
    protected: bool,
    seed: u64,
    stride: u64,
) -> DiskScenarioReport {
    let (batches, oracle) = gen_batches(seed);
    // Protection-off runs always sweep at full resolution: the
    // demonstrable failure lives at specific crash points (e.g. a bit
    // flip on a committed value byte), and a smoke stride may step over
    // all of them.
    let stride = if protected { stride.max(1) } else { 1 };
    match fault {
        DiskFault::KillBeforeFsync => crash_matrix(
            fault.name(),
            protected,
            store_cfg(true, protected, true),
            seed,
            stride,
            &batches,
            &oracle,
            |_| TailPolicy::DropAll,
        ),
        DiskFault::TornTail => crash_matrix(
            fault.name(),
            protected,
            store_cfg(true, protected, true),
            seed,
            stride,
            &batches,
            &oracle,
            |_| TailPolicy::Torn,
        ),
        DiskFault::BitFlip => crash_matrix(
            fault.name(),
            protected,
            store_cfg(protected, true, true),
            seed,
            stride,
            &batches,
            &oracle,
            // Cycle the flip across the first 40 tail bytes — covering
            // frame headers, tags, keys, and values — and all 8 bits.
            |point| TailPolicy::BitFlip { offset: (point * 13) % 40, bit: (point % 8) as u8 },
        ),
        DiskFault::SilentShortRead => short_read_scenario(protected, seed, &batches, &oracle),
        DiskFault::EnospcBreaker => enospc_scenario(protected, seed, &batches, &oracle),
    }
}

/// Runs every scenario at full matrix resolution (`stride = 1`).
pub fn run_all(protected: bool, seed: u64) -> Vec<DiskScenarioReport> {
    run_all_with_stride(protected, seed, 1)
}

/// Runs every scenario, visiting every `stride`-th crash point — the
/// smoke-scale entry point for CI.
pub fn run_all_with_stride(
    protected: bool,
    seed: u64,
    stride: u64,
) -> Vec<DiskScenarioReport> {
    DiskFault::all()
        .into_iter()
        .map(|f| run_scenario(f, protected, seed, stride))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xC4A5_4D47;

    #[test]
    fn protected_scenarios_all_pass_at_smoke_stride() {
        for rep in run_all_with_stride(true, SEED, 17) {
            assert!(
                rep.passes(),
                "{} violated protected: {} ({} violations / {} recoveries)",
                rep.scenario,
                rep.first_violation,
                rep.violations,
                rep.recoveries
            );
            assert!(rep.recoveries > 0, "{} never recovered", rep.scenario);
        }
    }

    #[test]
    fn every_unprotected_scenario_demonstrably_fails() {
        for rep in run_all_with_stride(false, SEED, 17) {
            assert!(
                !rep.passes(),
                "{} still passed with its protection disabled — the protection \
                 is a strawman",
                rep.scenario
            );
        }
    }

    #[test]
    fn enospc_trips_the_named_breaker_without_panicking() {
        let rep = run_scenario(DiskFault::EnospcBreaker, true, SEED, 1);
        assert!(rep.passes());
        assert!(rep.breaker_tripped);
        let rep = run_scenario(DiskFault::EnospcBreaker, false, SEED, 1);
        assert!(rep.panicked);
    }

    #[test]
    fn reports_are_deterministic() {
        let a: Vec<u64> =
            run_all_with_stride(true, SEED, 23).iter().map(|r| r.bits()).collect();
        let b: Vec<u64> =
            run_all_with_stride(true, SEED, 23).iter().map(|r| r.bits()).collect();
        assert_eq!(a, b);
    }
}
