//! Circuit-breaker guardrail for learned plan steering.
//!
//! Bao-style steering picks a [`HintSet`] per query; a bad policy can
//! panic, emit an invalid hint set, or steer into plans orders of
//! magnitude slower than the expert. [`GuardedSteering`] bounds all three:
//!
//! * hint sets are validated before planning; invalid ones fall back to
//!   the expert plan and consume failure budget;
//! * every learned plan executes under a latency budget of
//!   `budget_factor ×` the expert's (memoized) latency via
//!   [`Env::run_with_timeout`]. A timeout aborts the learned plan, charges
//!   `budget + expert` latency (the abort-and-rerun cost), and counts as a
//!   [`TripReason::LatencyRegression`];
//! * while Open every query runs the expert plan at exactly the expert's
//!   latency, so a tripped policy costs nothing extra.
//!
//! The per-query worst case is therefore `(1 + budget_factor) ×` expert,
//! and only `failure_budget` such queries can occur before the breaker
//! trips — the regression budget the chaos harness measures.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ml4db_optimizer::harness::{EvalReport, ReportRow};
use ml4db_optimizer::Env;
use ml4db_plan::{HintSet, Query};

use crate::breaker::{BreakerConfig, CircuitBreaker, Decision, TripReason};

/// A learned steering policy: picks a hint set for each query.
pub trait SteeringPolicy {
    /// The hint set to plan `query` under.
    fn choose(&self, env: &Env, query: &Query) -> HintSet;
}

impl<F: Fn(&Env, &Query) -> HintSet> SteeringPolicy for F {
    fn choose(&self, env: &Env, query: &Query) -> HintSet {
        self(env, query)
    }
}

/// A steering policy wrapped in a circuit breaker with a per-query
/// latency budget.
pub struct GuardedSteering<P> {
    /// The learned policy.
    pub policy: P,
    /// Learned plans may spend at most this multiple of the expert's
    /// latency before being aborted.
    pub budget_factor: f64,
    breaker: CircuitBreaker,
}

impl<P: SteeringPolicy> GuardedSteering<P> {
    /// Guards `policy` with a 1.2× latency budget and default breaker
    /// thresholds.
    pub fn new(policy: P) -> Self {
        Self::with_config(policy, 1.2, BreakerConfig::default())
    }

    /// Fully parameterized constructor.
    pub fn with_config(policy: P, budget_factor: f64, cfg: BreakerConfig) -> Self {
        assert!(budget_factor > 1.0, "budget must exceed the expert's latency");
        Self { policy, budget_factor, breaker: CircuitBreaker::named("steering", cfg) }
    }

    /// The breaker, for state inspection and telemetry.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Runs one query under the guardrail and returns the charged latency
    /// (µs). Shadow (probation) calls serve the expert answer and
    /// additionally charge the probe's budget-capped execution.
    ///
    /// # Panics
    /// Panics if the expert cannot plan `query` (workload-generator
    /// queries always plan).
    pub fn run_guarded(&self, env: &Env, query: &Query) -> f64 {
        ml4db_obs::with_query(query.fingerprint(), || self.run_guarded_inner(env, query))
    }

    fn run_guarded_inner(&self, env: &Env, query: &Query) -> f64 {
        let expert_lat = env.expert_latency(query).expect("expert always plans");
        match self.breaker.begin_call() {
            Decision::UseClassical => expert_lat,
            Decision::UseLearned { shadow } => {
                let hint = match catch_unwind(AssertUnwindSafe(|| {
                    self.policy.choose(env, query)
                })) {
                    Err(_) => {
                        self.breaker.record_failure(TripReason::Panic);
                        return expert_lat;
                    }
                    Ok(h) => h,
                };
                let plan = if hint.is_valid() {
                    env.plan_with_hint(query, hint)
                } else {
                    None
                };
                let Some(plan) = plan else {
                    self.breaker.record_failure(TripReason::InvalidOutput);
                    return expert_lat;
                };
                let budget = self.budget_factor * expert_lat;
                match env.run_with_timeout(query, &plan, budget) {
                    Some(lat) => {
                        self.breaker.record_success();
                        ml4db_obs::emit_with(|| ml4db_obs::Event::ArmLatency {
                            hint_bits: u32::from(hint.bits()),
                            latency_us: lat,
                        });
                        if shadow {
                            // Probe cost on top of the served expert plan.
                            expert_lat + lat
                        } else {
                            lat
                        }
                    }
                    None => {
                        self.breaker.record_failure(TripReason::LatencyRegression);
                        // Abort-and-rerun: the budget was burned, then the
                        // expert plan served. The arm is charged its full
                        // burned budget in the trace.
                        ml4db_obs::emit_with(|| ml4db_obs::Event::ArmLatency {
                            hint_bits: u32::from(hint.bits()),
                            latency_us: budget,
                        });
                        budget + expert_lat
                    }
                }
            }
        }
    }

    /// Evaluates the guarded policy over a workload.
    ///
    /// Runs **serially** by design: breaker transitions depend on call
    /// order, and a serial loop makes the report a pure function of the
    /// workload regardless of `ML4DB_THREADS`.
    pub fn evaluate(&self, env: &Env, queries: &[Query]) -> EvalReport {
        let rows: Vec<ReportRow> = queries
            .iter()
            .map(|q| {
                let lat = self.run_guarded(env, q);
                let expert = ml4db_obs::with_query(q.fingerprint(), || {
                    env.expert_latency(q).expect("expert always plans")
                });
                ReportRow { query_id: q.fingerprint(), latency_us: lat, expert_us: expert }
            })
            .collect();
        EvalReport::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use ml4db_storage::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> Database {
        let mut rng = StdRng::seed_from_u64(21);
        Database::analyze(
            joblite(&DatasetConfig { base_rows: 120, ..Default::default() }, &mut rng),
            &mut rng,
        )
    }

    fn workload(db: &Database, n: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        ml4db_datagen::WorkloadGenerator::new(
            ml4db_datagen::SchemaGraph::joblite(),
            Default::default(),
        )
        .generate_many(db, n, &mut rng)
    }

    #[test]
    fn expert_policy_is_parity_and_stays_closed() {
        let db = db();
        let env = Env::new(&db);
        let queries = workload(&db, 10, 1);
        let g = GuardedSteering::new(|_: &Env, _: &Query| HintSet::all());
        let report = g.evaluate(&env, &queries);
        assert!((report.relative_total - 1.0).abs() < 1e-9);
        assert_eq!(report.regressions, 0);
        assert_eq!(g.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn invalid_hints_fall_back_at_parity() {
        let db = db();
        let env = Env::new(&db);
        let queries = workload(&db, 10, 2);
        // No join algorithm enabled: never a valid hint set.
        let g = GuardedSteering::new(|_: &Env, _: &Query| HintSet {
            hash_join: false,
            nested_loop: false,
            merge_join: false,
            ..HintSet::all()
        });
        let report = g.evaluate(&env, &queries);
        assert!((report.relative_total - 1.0).abs() < 1e-9);
        assert_eq!(g.breaker().state(), BreakerState::Open);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::InvalidOutput));
    }

    #[test]
    fn panicking_policy_is_contained_at_parity() {
        let db = db();
        let env = Env::new(&db);
        let queries = workload(&db, 8, 3);
        let g = GuardedSteering::new(|_: &Env, _: &Query| -> HintSet {
            panic!("poisoned steering model")
        });
        let report = g.evaluate(&env, &queries);
        assert!((report.relative_total - 1.0).abs() < 1e-9);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::Panic));
    }

    #[test]
    fn worst_case_query_is_bounded_by_budget() {
        let db = db();
        let env = Env::new(&db);
        let queries = workload(&db, 20, 4);
        // Adversarial policy: always pick the slowest hint arm for each
        // query (an oracle attacker).
        let g = GuardedSteering::new(|env: &Env, q: &Query| {
            *ml4db_plan::all_hint_sets()
                .iter()
                .max_by(|a, b| {
                    let la = env
                        .plan_with_hint(q, **a)
                        .map(|p| p.est_cost)
                        .unwrap_or(0.0);
                    let lb = env
                        .plan_with_hint(q, **b)
                        .map(|p| p.est_cost)
                        .unwrap_or(0.0);
                    la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty hint space")
        });
        let report = g.evaluate(&env, &queries);
        for (lat, q) in report.latencies.iter().zip(&queries) {
            let expert = env.expert_latency(q).unwrap();
            assert!(
                *lat <= (1.0 + g.budget_factor) * expert + 1e-6,
                "guarded latency {lat} exceeds abort bound for expert {expert}"
            );
        }
    }
}
