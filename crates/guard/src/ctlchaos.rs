//! Controller-targeted chaos: fault families aimed at the autonomous
//! controller itself rather than at the learned components it manages.
//!
//! The closed-loop controller (`ml4db-ctl`) is one more unreliable
//! component: its sensors can lie, its actuators can fail, its triggers
//! can stutter, and it can crash between deciding and acting. This
//! module holds the *fault vocabulary* — the family enum, deterministic
//! snapshot-corruption functions, and the actuator fault clock — while
//! the harness that drives a controller through them lives in
//! `ml4db-ctl` (the dependency points that way: the controller depends
//! on its guards, never the reverse).
//!
//! Every fault is a pure function of its parameters: corruption edits
//! fixed fields by fixed amounts, and the actuator clock is a counted
//! budget, so a chaos run is exactly as deterministic as a clean one.

use ml4db_obs::HealthSnapshot;

/// One controller-targeted fault family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtlFault {
    /// No fault: the baseline the chaos families are compared against.
    None,
    /// Sensors lie: every snapshot delivered from `from_epoch` on is
    /// corrupted *after* sealing ([`lie_in_snapshot`]), so the digest no
    /// longer matches. A guarded controller notices
    /// (`SealedSnapshot::verify` fails) and discards the interval; a
    /// naive controller acts on fabricated drift, regressions, and
    /// admission pressure.
    LyingSensors {
        /// First control epoch whose snapshot is corrupted.
        from_epoch: u64,
    },
    /// Sensors go dark: no snapshot at all is delivered for `epochs`
    /// control intervals starting at `from_epoch`. The controller must
    /// degrade to no-op, not guess.
    SensorBlackout {
        /// First dark epoch.
        from_epoch: u64,
        /// Number of consecutive dark epochs.
        epochs: u64,
    },
    /// The retraining pipeline is poisoned: every candidate is trained
    /// on labels corrupted to cardinality 1 (the dangerous
    /// underestimate). The validation gate is the only defence — a
    /// controller that forges or skips gate evidence promotes garbage.
    PoisonedRetrain,
    /// The validation gate rejects every candidate (actuator failure:
    /// the gate scores arrive as `+inf`). A correct controller logs the
    /// rejection, leaves the incumbent serving, and backs off; it must
    /// never bypass the gate to "force" progress.
    GateRejectsAll,
    /// The next `times` actuator invocations fail transiently. A
    /// correct controller retries with bounded deterministic backoff
    /// and, if the budget outlasts its retry limit, degrades to no-op
    /// for the interval.
    ActuatorTransient {
        /// Number of consecutive actuator calls that fail.
        times: u32,
    },
    /// Trigger stutter: from `from_epoch` on, every snapshot is edited
    /// *before* sealing ([`storm_in_snapshot`]) to repeat a stale drift
    /// alarm and admission pressure each interval — the digest stays
    /// valid, so only hysteresis (cooldowns, rejection backoff) stands
    /// between the controller and an action storm.
    ActionStorm {
        /// First stuttering epoch.
        from_epoch: u64,
    },
    /// The controller process crashes between journaling a decision's
    /// intent and journaling its outcome (the action itself may or may
    /// not have applied). Recovery must replay the journal, resolve the
    /// in-flight intent idempotently, and end in a consistent state.
    CrashMidAction {
        /// 1-based index of the journaled decision whose outcome write
        /// crashes.
        at_decision: u64,
    },
}

impl CtlFault {
    /// Stable snake_case family name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CtlFault::None => "none",
            CtlFault::LyingSensors { .. } => "lying_sensors",
            CtlFault::SensorBlackout { .. } => "sensor_blackout",
            CtlFault::PoisonedRetrain => "poisoned_retrain",
            CtlFault::GateRejectsAll => "gate_rejects_all",
            CtlFault::ActuatorTransient { .. } => "actuator_transient",
            CtlFault::ActionStorm { .. } => "action_storm",
            CtlFault::CrashMidAction { .. } => "crash_mid_action",
        }
    }

    /// The canonical chaos suite: one representative of every family,
    /// parameterized to bite (faults land at or before the regime
    /// change a controller would react to).
    pub fn all_families() -> [CtlFault; 7] {
        [
            CtlFault::LyingSensors { from_epoch: 0 },
            CtlFault::SensorBlackout { from_epoch: 0, epochs: 2 },
            CtlFault::PoisonedRetrain,
            CtlFault::GateRejectsAll,
            CtlFault::ActuatorTransient { times: 2 },
            CtlFault::ActionStorm { from_epoch: 0 },
            CtlFault::CrashMidAction { at_decision: 1 },
        ]
    }

    /// Whether snapshots from `epoch` are corrupted post-seal.
    pub fn lies_at(&self, epoch: u64) -> bool {
        matches!(self, CtlFault::LyingSensors { from_epoch } if epoch >= *from_epoch)
    }

    /// Whether the sensor feed is dark at `epoch`.
    pub fn dark_at(&self, epoch: u64) -> bool {
        matches!(self, CtlFault::SensorBlackout { from_epoch, epochs }
            if epoch >= *from_epoch && epoch < from_epoch + epochs)
    }

    /// Whether trigger stutter edits the snapshot pre-seal at `epoch`.
    pub fn storms_at(&self, epoch: u64) -> bool {
        matches!(self, CtlFault::ActionStorm { from_epoch } if epoch >= *from_epoch)
    }
}

/// The lying-sensor corruption, applied *after* sealing: fabricates the
/// exact signals a controller keys its most aggressive reactions on —
/// a screaming drift alarm, a regression storm, a fully stale index,
/// heavy shedding, and a steering-attributed latency collapse. Edits
/// are fixed increments of fixed fields: deterministic, and guaranteed
/// to change the canonical rendering (so a sealed digest breaks).
pub fn lie_in_snapshot(s: &mut HealthSnapshot) {
    *s.drift_checks.entry("card_estimator".to_string()).or_insert(0) += 64;
    *s.drift_fired.entry("card_estimator".to_string()).or_insert(0) += 64;
    s.queries = s.queries.saturating_add(100);
    s.regressions = s.regressions.saturating_add(100);
    let probes = s.index_probes.values().copied().sum::<u64>().max(1);
    *s.index_misses.entry("title_year".to_string()).or_insert(0) += probes;
    *s.index_probes.entry("title_year".to_string()).or_insert(0) += probes;
    let t = s.tenants.entry(0).or_default();
    t.shed = t.shed.saturating_add(100);
}

/// The action-storm stutter, applied *before* sealing (the upstream
/// sensor repeats a stale alarm, so the digest is valid): every
/// interval re-reports a drift alarm, regression pressure, and
/// admission pressure whether or not anything changed. Only hysteresis
/// protects the controller: a trigger-happy one retrains, flips
/// steering arms, and sheds real traffic every single interval.
pub fn storm_in_snapshot(s: &mut HealthSnapshot) {
    *s.drift_checks.entry("card_estimator".to_string()).or_insert(0) += 8;
    *s.drift_fired.entry("card_estimator".to_string()).or_insert(0) += 8;
    // Enough repeated regressions to cross a hair-trigger flip threshold
    // on a typical interval, without drowning the interval's real
    // counts (`queries` is left honest, so rates stay plausible).
    s.regressions = s.regressions.saturating_add(4);
    let t = s.tenants.entry(0).or_default();
    t.shed = t.shed.saturating_add(50);
}

/// A transient actuator failure, distinguishable from a rejection (the
/// action was *not* judged and refused — it never reached the target).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActuatorTransient;

/// Counted-budget fault clock for actuator invocations, mirroring
/// `SimDisk`'s `ReadTransientAt`: the next `times` calls fail, then the
/// clock is exhausted. Deterministic by construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActuatorClock {
    transient_left: u32,
    hits: u64,
}

impl ActuatorClock {
    /// A clock with no armed faults (every actuation succeeds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the next `times` actuator calls to fail transiently.
    pub fn arm_transient(&mut self, times: u32) {
        self.transient_left = times;
    }

    /// One actuator invocation: consumes a fault charge if any remain.
    pub fn actuate(&mut self) -> Result<(), ActuatorTransient> {
        if self.transient_left > 0 {
            self.transient_left -= 1;
            self.hits += 1;
            return Err(ActuatorTransient);
        }
        Ok(())
    }

    /// Total faults this clock has injected.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Remaining armed failures.
    pub fn remaining(&self) -> u32 {
        self.transient_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lie_breaks_a_sealed_digest() {
        let mut sealed = HealthSnapshot::new(4).seal();
        assert!(sealed.verify());
        lie_in_snapshot(&mut sealed.snapshot);
        assert!(!sealed.verify(), "post-seal corruption must be detectable");
        assert!(sealed.snapshot.drift_alarmed("card_estimator"));
        assert!(sealed.snapshot.regression_rate().unwrap() > 0.9);
        assert_eq!(sealed.snapshot.index_miss_rate("title_year"), Some(1.0));
        assert!(sealed.snapshot.shed_rate().unwrap() > 0.9);
    }

    #[test]
    fn storm_survives_sealing() {
        // Stutter happens upstream of the seal: the snapshot is "honestly
        // reported" garbage, so the digest must verify.
        let mut s = HealthSnapshot::new(9);
        storm_in_snapshot(&mut s);
        let sealed = s.seal();
        assert!(sealed.verify());
        assert!(sealed.snapshot.drift_alarmed("card_estimator"));
    }

    #[test]
    fn actuator_clock_is_a_counted_budget() {
        let mut clock = ActuatorClock::new();
        assert_eq!(clock.actuate(), Ok(()));
        clock.arm_transient(2);
        assert_eq!(clock.actuate(), Err(ActuatorTransient));
        assert_eq!(clock.actuate(), Err(ActuatorTransient));
        assert_eq!(clock.actuate(), Ok(()), "budget exhausts exactly");
        assert_eq!(clock.hits(), 2);
    }

    #[test]
    fn fault_windows_are_half_open() {
        let f = CtlFault::SensorBlackout { from_epoch: 2, epochs: 2 };
        assert!(!f.dark_at(1));
        assert!(f.dark_at(2));
        assert!(f.dark_at(3));
        assert!(!f.dark_at(4));
        let l = CtlFault::LyingSensors { from_epoch: 3 };
        assert!(!l.lies_at(2));
        assert!(l.lies_at(3));
        assert!(l.lies_at(u64::MAX));
        let s = CtlFault::ActionStorm { from_epoch: 1 };
        assert!(!s.storms_at(0));
        assert!(s.storms_at(5));
    }

    #[test]
    fn family_names_are_stable() {
        // Decision logs and chaos reports key on these strings.
        let names: Vec<&str> = CtlFault::all_families().iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            [
                "lying_sensors",
                "sensor_blackout",
                "poisoned_retrain",
                "gate_rejects_all",
                "actuator_transient",
                "action_storm",
                "crash_mid_action",
            ]
        );
    }
}
