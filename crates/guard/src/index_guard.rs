//! Circuit-breaker guardrail for learned one-dimensional indexes.
//!
//! [`GuardedIndex`] serves a learned index ([`ml4db_index::Rmi`], PGM,
//! RadixSpline, …) next to a classical baseline (typically
//! [`ml4db_index::BPlusTree`]) behind the common
//! [`ml4db_index::OrderedIndex`] trait. Correctness signals:
//!
//! * **miss cross-check** — every learned miss is verified against the
//!   classical index before `None` is served. A learned index whose
//!   predictions are displaced by k slots misses present keys; the guard
//!   converts each such miss into the correct classical answer *and* a
//!   breaker failure. Served point lookups are therefore always correct.
//! * **audit schedule** — range results are compared against the
//!   classical index on a deterministic schedule: every call while trust
//!   is young (the first `warmup_audits` learned calls) or probationary
//!   (HalfOpen), then every `audit_every`-th call once the model has
//!   earned sustained agreement. Every range result is additionally
//!   invariant-checked (sorted, within bounds) on every call.
//! * **panic containment** — out-of-bound predictions that make the
//!   learned structure panic are caught and judged as failures.
//!
//! While the breaker is Open the classical index serves alone, so the
//! guarded structure is exactly the baseline — the graceful-degradation
//! guarantee the chaos harness asserts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use ml4db_index::{KeyValue, OrderedIndex, TwoPhaseIndex};

use crate::breaker::{BreakerConfig, CircuitBreaker, Decision, TripReason};

/// A learned ordered index guarded by a classical one.
pub struct GuardedIndex<L, C> {
    /// The learned index.
    pub learned: L,
    /// The classical baseline serving fallbacks and audits.
    pub classical: C,
    /// Audit every call for the first this-many learned calls.
    pub warmup_audits: u64,
    /// After warmup, audit every Nth learned call (0 disables periodic
    /// audits; misses and invariants are still checked).
    pub audit_every: u64,
    breaker: CircuitBreaker,
    learned_calls: AtomicU64,
    audits: AtomicU64,
    mismatches: AtomicU64,
}

impl<L: OrderedIndex, C: OrderedIndex> GuardedIndex<L, C> {
    /// Guards `learned` with `classical` under default thresholds.
    ///
    /// # Panics
    /// Panics if the two indexes disagree on entry count — they must be
    /// built over the same data.
    pub fn new(learned: L, classical: C) -> Self {
        Self::with_config(learned, classical, BreakerConfig::default(), 16, 8)
    }

    /// Fully parameterized constructor.
    pub fn with_config(
        learned: L,
        classical: C,
        cfg: BreakerConfig,
        warmup_audits: u64,
        audit_every: u64,
    ) -> Self {
        assert_eq!(
            learned.len(),
            classical.len(),
            "guarded index requires both sides to index the same data"
        );
        Self {
            learned,
            classical,
            warmup_audits,
            audit_every,
            breaker: CircuitBreaker::named("learned_index", cfg),
            learned_calls: AtomicU64::new(0),
            audits: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
        }
    }

    /// The breaker, for state inspection and telemetry.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Number of audits performed (for tests and telemetry).
    pub fn audits(&self) -> u64 {
        self.audits.load(Ordering::Relaxed)
    }

    /// Number of audited calls where learned and classical disagreed.
    pub fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// Whether this learned call falls on the deterministic audit
    /// schedule (dense during warmup, sparse after).
    fn scheduled_audit(&self, nth_learned_call: u64) -> bool {
        nth_learned_call <= self.warmup_audits
            || (self.audit_every > 0 && nth_learned_call % self.audit_every == 0)
    }
}

impl<L: TwoPhaseIndex, C: OrderedIndex> GuardedIndex<L, C> {
    /// Guarded batched point lookups (two-phase fast path) into a
    /// caller-owned buffer.
    ///
    /// The batch counts as one breaker call. Every learned miss in the
    /// batch is cross-checked against the classical index before `None` is
    /// served (and repaired on disagreement), so served answers are always
    /// correct; on the audit schedule the whole batch is verified.
    pub fn lookup_batch(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        self.lookup_batch_impl(keys, out, false);
    }

    /// [`Self::lookup_batch`] for ascending probe keys, using the learned
    /// index's sorted-probe fast path (previous-segment reuse, floored
    /// windows).
    pub fn lookup_batch_sorted(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        self.lookup_batch_impl(keys, out, true);
    }

    fn lookup_batch_impl(&self, keys: &[u64], out: &mut Vec<Option<u64>>, sorted: bool) {
        out.clear();
        match self.breaker.begin_call() {
            Decision::UseClassical => {
                out.extend(keys.iter().map(|&k| self.classical.get(k)));
            }
            Decision::UseLearned { shadow } => {
                let nth = self.learned_calls.fetch_add(1, Ordering::Relaxed) + 1;
                let learned = catch_unwind(AssertUnwindSafe(|| {
                    let mut buf = Vec::with_capacity(keys.len());
                    if sorted {
                        self.learned.lookup_batch_sorted(keys, &mut buf);
                    } else {
                        self.learned.lookup_batch(keys, &mut buf);
                    }
                    buf
                }));
                let res = match learned {
                    Err(_) => {
                        self.breaker.record_failure(TripReason::Panic);
                        out.extend(keys.iter().map(|&k| self.classical.get(k)));
                        return;
                    }
                    Ok(r) => r,
                };
                if res.len() != keys.len() {
                    self.breaker.record_failure(TripReason::InvalidOutput);
                    out.extend(keys.iter().map(|&k| self.classical.get(k)));
                    return;
                }
                let full_audit = shadow || self.scheduled_audit(nth);
                let mut disagreed = false;
                for (i, &k) in keys.iter().enumerate() {
                    // Misses are always cross-checked; hits only on the
                    // schedule — same policy as single-key `get`.
                    if full_audit || res[i].is_none() {
                        let truth = self.classical.get(k);
                        if truth != res[i] {
                            disagreed = true;
                        }
                        out.push(truth);
                    } else {
                        out.push(res[i]);
                    }
                }
                if full_audit || res.iter().any(Option::is_none) {
                    self.audits.fetch_add(1, Ordering::Relaxed);
                    if disagreed {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                        self.breaker.record_failure(TripReason::OutOfBand);
                    } else {
                        self.breaker.record_success();
                    }
                }
            }
        }
    }
}

impl<L: OrderedIndex, C: OrderedIndex> OrderedIndex for GuardedIndex<L, C> {
    fn len(&self) -> usize {
        self.classical.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        match self.breaker.begin_call() {
            Decision::UseClassical => self.classical.get(key),
            Decision::UseLearned { shadow } => {
                let nth = self.learned_calls.fetch_add(1, Ordering::Relaxed) + 1;
                let learned = catch_unwind(AssertUnwindSafe(|| self.learned.get(key)));
                let res = match learned {
                    Err(_) => {
                        self.breaker.record_failure(TripReason::Panic);
                        return self.classical.get(key);
                    }
                    Ok(r) => r,
                };
                // A miss is always cross-checked: a learned index that
                // mispredicts present keys must not drop rows. Hits are
                // audited on the schedule (and always in shadow).
                if shadow || res.is_none() || self.scheduled_audit(nth) {
                    self.audits.fetch_add(1, Ordering::Relaxed);
                    let truth = self.classical.get(key);
                    if res == truth {
                        self.breaker.record_success();
                    } else {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                        self.breaker.record_failure(TripReason::OutOfBand);
                    }
                    truth
                } else {
                    res
                }
            }
        }
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
        match self.breaker.begin_call() {
            Decision::UseClassical => self.classical.range(lo, hi),
            Decision::UseLearned { shadow } => {
                let nth = self.learned_calls.fetch_add(1, Ordering::Relaxed) + 1;
                let learned =
                    catch_unwind(AssertUnwindSafe(|| self.learned.range(lo, hi)));
                let res = match learned {
                    Err(_) => {
                        self.breaker.record_failure(TripReason::Panic);
                        return self.classical.range(lo, hi);
                    }
                    Ok(r) => r,
                };
                // Cheap structural invariants on every call: ascending
                // keys, all within bounds.
                let invariant_ok = res.windows(2).all(|w| w[0].0 <= w[1].0)
                    && res.iter().all(|e| e.0 >= lo && e.0 <= hi);
                if !invariant_ok {
                    self.breaker.record_failure(TripReason::InvalidOutput);
                    return self.classical.range(lo, hi);
                }
                if shadow || self.scheduled_audit(nth) {
                    self.audits.fetch_add(1, Ordering::Relaxed);
                    let truth = self.classical.range(lo, hi);
                    if res == truth {
                        self.breaker.record_success();
                    } else {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                        self.breaker.record_failure(TripReason::OutOfBand);
                    }
                    truth
                } else {
                    res
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        self.learned.size_bytes() + self.classical.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use ml4db_index::{BPlusTree, Rmi};

    fn entries(n: u64) -> Vec<KeyValue> {
        (0..n).map(|k| (k * 7, k)).collect()
    }

    #[test]
    fn healthy_learned_index_serves_correctly_and_stays_closed() {
        let e = entries(5000);
        let g = GuardedIndex::new(Rmi::build(e.clone(), 64), BPlusTree::bulk_load(&e));
        for &(k, v) in e.iter().step_by(37) {
            assert_eq!(g.get(k), Some(v));
        }
        assert_eq!(g.get(3), None); // absent key: cross-checked miss
        assert_eq!(g.range(70, 140), BPlusTree::bulk_load(&e).range(70, 140));
        assert_eq!(g.breaker().state(), BreakerState::Closed);
        assert_eq!(g.mismatches(), 0);
        assert!(g.audits() > 0, "warmup must audit");
    }

    /// A learned index whose predictions are displaced: misses every
    /// present key and truncates ranges.
    struct Displaced {
        inner: Vec<KeyValue>,
        k: usize,
    }
    impl OrderedIndex for Displaced {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn get(&self, key: u64) -> Option<u64> {
            // Bounded search in a window displaced k slots right of the
            // true position — present keys fall outside it.
            let pos = self.inner.partition_point(|e| e.0 < key) + self.k;
            let lo = pos.min(self.inner.len());
            let hi = (pos + 2).min(self.inner.len());
            self.inner[lo..hi].iter().find(|e| e.0 == key).map(|e| e.1)
        }
        fn range(&self, lo: u64, hi: u64) -> Vec<KeyValue> {
            let start = (self.inner.partition_point(|e| e.0 < lo) + self.k)
                .min(self.inner.len());
            self.inner[start..].iter().take_while(|e| e.0 <= hi).copied().collect()
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn displaced_predictions_never_serve_wrong_answers() {
        let e = entries(2000);
        let g = GuardedIndex::new(
            Displaced { inner: e.clone(), k: 40 },
            BPlusTree::bulk_load(&e),
        );
        // Every served answer is correct from call one (miss cross-check),
        // and the breaker trips to classical-only.
        for &(k, v) in e.iter().step_by(13) {
            assert_eq!(g.get(k), Some(v), "guard must repair displaced miss");
        }
        assert_eq!(g.breaker().state(), BreakerState::Open);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::OutOfBand));
        assert!(g.mismatches() > 0);
    }

    /// A learned index that indexes out of bounds (panics) on every call —
    /// the unguarded failure mode of an out-of-range prediction.
    struct OobPanic {
        inner: Vec<KeyValue>,
    }
    impl OrderedIndex for OobPanic {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn get(&self, _key: u64) -> Option<u64> {
            let oob = self.inner.len() + 17;
            Some(self.inner[oob].1) // genuine out-of-bounds panic
        }
        fn range(&self, _lo: u64, _hi: u64) -> Vec<KeyValue> {
            let oob = self.inner.len() + 17;
            vec![self.inner[oob]]
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn guarded_batch_matches_singles_and_stays_closed() {
        let e = entries(4000);
        let g = GuardedIndex::new(Rmi::build(e.clone(), 64), BPlusTree::bulk_load(&e));
        let mut probes: Vec<u64> = e.iter().step_by(5).map(|x| x.0).collect();
        probes.extend(e.iter().step_by(11).map(|x| x.0 + 1)); // absent
        probes.sort_unstable();
        let mut batch = Vec::new();
        g.lookup_batch_sorted(&probes, &mut batch);
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(batch[i], g.classical.get(k), "probe {k}");
        }
        g.lookup_batch(&probes, &mut batch);
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(batch[i], g.classical.get(k), "probe {k}");
        }
        assert_eq!(g.breaker().state(), BreakerState::Closed);
        assert_eq!(g.mismatches(), 0);
    }

    #[test]
    fn guarded_batch_serves_classical_while_open() {
        let e = entries(1000);
        let g = GuardedIndex::new(Rmi::build(e.clone(), 32), BPlusTree::bulk_load(&e));
        // Force the breaker open, then verify the batch path degrades to
        // the classical baseline.
        while g.breaker().state() != BreakerState::Open {
            g.breaker().record_failure(TripReason::OutOfBand);
        }
        let probes: Vec<u64> = e.iter().step_by(3).map(|x| x.0).collect();
        let mut batch = Vec::new();
        g.lookup_batch_sorted(&probes, &mut batch);
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(batch[i], g.classical.get(k));
        }
    }

    #[test]
    fn oob_panics_are_contained_and_trip_the_breaker() {
        let e = entries(500);
        let g = GuardedIndex::new(OobPanic { inner: e.clone() }, BPlusTree::bulk_load(&e));
        for &(k, v) in e.iter().step_by(29) {
            assert_eq!(g.get(k), Some(v), "fallback must repair panicking lookup");
        }
        assert_eq!(g.breaker().state(), BreakerState::Open);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::Panic));
        // Range queries served classical while open are exact.
        assert_eq!(g.range(0, 100), BPlusTree::bulk_load(&e).range(0, 100));
    }
}
