//! The breaker → lifecycle hook: auto-rollback on post-promotion trips.
//!
//! `ml4db-lifecycle`'s registry decides *which* model version serves;
//! this module closes the loop from the runtime guardrails back to that
//! decision. A [`LifecycleLink`] watches a [`CircuitBreaker`]'s monotone
//! trip counter; when a *new* trip lands (failure-budget exhaustion,
//! out-of-band estimates, a panic, or a drift verdict force-opening the
//! breaker), it rolls the registry back to the last-good version and
//! reports the breaker's own trip reason on the emitted rollback event.
//!
//! The link is deliberately pull-based: callers poll at whatever cadence
//! their serving loop has (per query, per batch, per epoch). Counter
//! deltas — not breaker *state* — drive it, so a trip that opened and
//! then half-opened again between polls still triggers exactly one
//! rollback, and polling is idempotent between trips.

use ml4db_lifecycle::ModelRegistry;

use crate::breaker::CircuitBreaker;

/// Watches a breaker's trip counter and rolls a model registry back to
/// its last-good version whenever a new trip lands.
#[derive(Debug)]
pub struct LifecycleLink {
    seen_trips: u64,
}

impl LifecycleLink {
    /// Creates a link synchronized to the breaker's current trip count:
    /// only trips *after* this moment trigger rollbacks (pre-existing
    /// trips belong to whatever model was serving before).
    pub fn new(breaker: &CircuitBreaker) -> Self {
        Self { seen_trips: breaker.trips() }
    }

    /// A link that treats every recorded trip as unseen (useful when the
    /// registry and breaker were born together).
    pub fn from_zero() -> Self {
        Self { seen_trips: 0 }
    }

    /// Consumes any new trips and rolls back once: returns the version
    /// id now serving if a rollback was performed, `None` when no new
    /// trip landed. The rollback reason is the breaker's
    /// [`last_trip`](CircuitBreaker::last_trip) label, so the trace's
    /// rollback event names what actually went wrong.
    pub fn poll<M>(
        &mut self,
        breaker: &CircuitBreaker,
        registry: &mut ModelRegistry<M>,
    ) -> Option<u32> {
        let trips = breaker.trips();
        if trips == self.seen_trips {
            return None;
        }
        self.seen_trips = trips;
        let reason = breaker.last_trip().map_or("trip", |r| r.as_str());
        Some(registry.rollback(reason))
    }

    /// Re-synchronizes without rolling back — call right after a
    /// promotion if trips recorded *during* shadow evaluation should be
    /// charged to the rejected past, not to the freshly promoted model.
    pub fn sync(&mut self, breaker: &CircuitBreaker) {
        self.seen_trips = breaker.trips();
    }

    /// Trips observed so far (consumed or synced past).
    pub fn seen_trips(&self) -> u64 {
        self.seen_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerConfig, TripReason};
    use ml4db_lifecycle::{GateConfig, LifecycleState};

    fn registry_with_promoted() -> ModelRegistry<&'static str> {
        let mut r = ModelRegistry::new("card_estimator", GateConfig::default(), "v0");
        let id = r.register_candidate("v1", "retrain");
        r.begin_shadow(id);
        assert!(r.try_promote(id, 90.0, 100.0, 100.0).promoted);
        r
    }

    #[test]
    fn new_trip_rolls_back_to_last_good() {
        let breaker = CircuitBreaker::named("card_estimator", BreakerConfig::default());
        let mut link = LifecycleLink::new(&breaker);
        let mut reg = registry_with_promoted();
        assert_eq!(*reg.active(), "v1");

        assert_eq!(link.poll(&breaker, &mut reg), None, "no trip, no rollback");

        breaker.force_open(TripReason::Drift);
        assert_eq!(link.poll(&breaker, &mut reg), Some(0));
        assert_eq!(*reg.active(), "v0");
        assert_eq!(reg.version(1).unwrap().state, LifecycleState::RolledBack);
        // Consumed: the same trip does not roll back twice.
        assert_eq!(link.poll(&breaker, &mut reg), None);
    }

    #[test]
    fn pre_existing_trips_are_not_charged_to_the_new_link() {
        let breaker = CircuitBreaker::named("card_estimator", BreakerConfig::default());
        breaker.force_open(TripReason::OutOfBand);
        let mut link = LifecycleLink::new(&breaker); // born after the trip
        let mut reg = registry_with_promoted();
        assert_eq!(link.poll(&breaker, &mut reg), None);
        assert_eq!(*reg.active(), "v1");
    }

    #[test]
    fn sync_skips_shadow_phase_trips() {
        let breaker = CircuitBreaker::named("card_estimator", BreakerConfig::default());
        let mut link = LifecycleLink::new(&breaker);
        let mut reg = registry_with_promoted();
        // A trip lands while a candidate is being shadow-evaluated...
        breaker.force_open(TripReason::Panic);
        // ...and the operator decides it belongs to the past.
        link.sync(&breaker);
        assert_eq!(link.poll(&breaker, &mut reg), None);
        assert_eq!(*reg.active(), "v1");
    }
}
