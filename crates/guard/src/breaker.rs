//! The circuit breaker at the heart of every guardrail: a three-state
//! machine (Closed → Open → HalfOpen) tracking a regression budget for a
//! learned component running side-by-side with its classical counterpart.
//!
//! Semantics follow the classical breaker pattern, adapted to be fully
//! deterministic: all transitions are driven by *call counts*, never by
//! wall-clock time, so a guarded run is a pure function of its inputs.
//!
//! * **Closed** — the learned component serves. Every judged failure
//!   (invalid output, out-of-band answer, latency blow-up, panic) consumes
//!   one unit of the failure budget; exhausting it trips the breaker.
//! * **Open** — the classical component serves alone; the learned one is
//!   not even invoked (this is the latency protection: a pathological
//!   model costs nothing while the breaker is open). After `open_calls`
//!   served calls the breaker moves to HalfOpen.
//! * **HalfOpen** — probation: the learned component runs again in shadow
//!   and is judged on every call. `probation_successes` consecutive clean
//!   calls close the breaker; a single failure re-opens it.
//!
//! A retrained/rebaselined model can skip the Open cooldown via
//! [`CircuitBreaker::begin_probation`], which jumps straight to HalfOpen.

use std::sync::{Mutex, MutexGuard};

/// Breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Learned component serves; failures consume the budget.
    Closed,
    /// Classical only; the learned component is not invoked.
    Open,
    /// Probation: learned runs in shadow and is judged on every call.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case label used in trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Why a breaker tripped (or a single call was rejected).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The learned output was unusable: NaN, infinite, non-positive, or
    /// structurally invalid.
    InvalidOutput,
    /// The learned output disagreed with the classical answer beyond the
    /// configured plausibility band or failed an audit against it.
    OutOfBand,
    /// The drift detector flagged a distribution shift in the error
    /// stream.
    Drift,
    /// The learned choice exceeded its latency budget.
    LatencyRegression,
    /// The learned component panicked (caught at the guard boundary).
    Panic,
    /// A dependency ran out of a resource (disk space, I/O retries
    /// exhausted) and the caller must stop issuing work to it.
    ResourceExhausted,
}

impl TripReason {
    /// Stable snake_case label used in trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            TripReason::InvalidOutput => "invalid_output",
            TripReason::OutOfBand => "out_of_band",
            TripReason::Drift => "drift",
            TripReason::LatencyRegression => "latency_regression",
            TripReason::Panic => "panic",
            TripReason::ResourceExhausted => "resource_exhausted",
        }
    }
}

/// Tunable breaker thresholds. All counts, no clocks.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Judged failures tolerated while Closed before tripping.
    pub failure_budget: u32,
    /// Calls served classical-only while Open before probation starts.
    pub open_calls: u32,
    /// Consecutive clean shadow calls required in HalfOpen to re-close.
    pub probation_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_budget: 3, open_calls: 16, probation_successes: 8 }
    }
}

/// What the caller should do for the current call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Run the learned component. When `shadow` is true the call is
    /// probationary: judge the learned answer but *serve* the classical
    /// one.
    UseLearned {
        /// Probationary call: judge learned, serve classical.
        shadow: bool,
    },
    /// Serve the classical component without invoking the learned one.
    UseClassical,
}

#[derive(Clone, Copy, Debug)]
struct Inner {
    state: BreakerState,
    /// Failures since the last clean call (Closed only).
    failures: u32,
    /// Calls served while Open.
    opened_for: u32,
    /// Consecutive clean calls in HalfOpen.
    probation_ok: u32,
    trips: u64,
    last_trip: Option<TripReason>,
    calls: u64,
    fallbacks: u64,
}

/// A deterministic, thread-safe circuit breaker.
///
/// Interior mutability keeps the guarded wrappers usable behind `&self`
/// trait interfaces ([`ml4db_plan::CardEstimator`],
/// [`ml4db_index::OrderedIndex`]). The internal mutex recovers from
/// poisoning — a panicking worker thread must never wedge the guardrail
/// that exists to contain panics (the state is a plain-old-data counter
/// block, always valid).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    /// Component label carried on every trace event this breaker emits.
    name: &'static str,
    inner: Mutex<Inner>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds and the generic
    /// component label; prefer [`CircuitBreaker::named`] so trace events
    /// say which guardrail moved.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::named("component", cfg)
    }

    /// A closed breaker whose trace events are labelled `name`.
    pub fn named(name: &'static str, cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            name,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                failures: 0,
                opened_for: 0,
                probation_ok: 0,
                trips: 0,
                last_trip: None,
                calls: 0,
                fallbacks: 0,
            }),
        }
    }

    /// The component label trace events carry.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reports one state transition to the observability sink.
    fn observe_transition(&self, from: BreakerState, to: BreakerState, reason: &'static str) {
        ml4db_obs::emit_with(|| ml4db_obs::Event::GuardTransition {
            component: self.name,
            from: from.as_str(),
            to: to.as_str(),
            reason,
        });
        ml4db_obs::counter_add("guard.transitions", 1);
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configuration in force.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Number of times the breaker has tripped to Open.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }

    /// Reason for the most recent trip, if any.
    pub fn last_trip(&self) -> Option<TripReason> {
        self.lock().last_trip
    }

    /// Calls dispatched through [`CircuitBreaker::begin_call`].
    pub fn calls(&self) -> u64 {
        self.lock().calls
    }

    /// Calls where the classical answer was served (Open calls plus
    /// judged failures plus shadow calls).
    pub fn fallbacks(&self) -> u64 {
        self.lock().fallbacks
    }

    /// Fraction of calls answered by the classical component.
    pub fn fallback_rate(&self) -> f64 {
        let g = self.lock();
        if g.calls == 0 {
            0.0
        } else {
            g.fallbacks as f64 / g.calls as f64
        }
    }

    /// Starts one guarded call and returns the dispatch decision. While
    /// Open this also advances the cooldown counter; the call that
    /// exhausts it still serves classical, and the *next* one probes.
    pub fn begin_call(&self) -> Decision {
        let mut g = self.lock();
        g.calls += 1;
        match g.state {
            BreakerState::Closed => Decision::UseLearned { shadow: false },
            BreakerState::HalfOpen => {
                g.fallbacks += 1; // shadow calls serve classical
                Decision::UseLearned { shadow: true }
            }
            BreakerState::Open => {
                g.fallbacks += 1;
                g.opened_for += 1;
                if g.opened_for >= self.cfg.open_calls {
                    g.state = BreakerState::HalfOpen;
                    g.probation_ok = 0;
                    self.observe_transition(
                        BreakerState::Open,
                        BreakerState::HalfOpen,
                        "cooldown_elapsed",
                    );
                }
                Decision::UseClassical
            }
        }
    }

    /// Records a clean learned answer for the current call.
    pub fn record_success(&self) {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => g.failures = 0,
            BreakerState::HalfOpen => {
                g.probation_ok += 1;
                if g.probation_ok >= self.cfg.probation_successes {
                    g.state = BreakerState::Closed;
                    g.failures = 0;
                    self.observe_transition(
                        BreakerState::HalfOpen,
                        BreakerState::Closed,
                        "probation_complete",
                    );
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a judged failure; trips the breaker when the budget runs
    /// out (Closed) or immediately (HalfOpen).
    pub fn record_failure(&self, why: TripReason) {
        let mut g = self.lock();
        g.fallbacks += 1;
        ml4db_obs::emit_with(|| ml4db_obs::Event::GuardFallback {
            component: self.name,
            reason: why.as_str(),
        });
        ml4db_obs::counter_add("guard.fallbacks", 1);
        match g.state {
            BreakerState::Closed => {
                g.failures += 1;
                if g.failures >= self.cfg.failure_budget {
                    self.trip(&mut g, why);
                }
            }
            BreakerState::HalfOpen => self.trip(&mut g, why),
            BreakerState::Open => {}
        }
    }

    /// Trips straight to Open regardless of remaining budget — for
    /// model-level signals like drift detection.
    pub fn force_open(&self, why: TripReason) {
        let mut g = self.lock();
        if g.state != BreakerState::Open {
            self.trip(&mut g, why);
        }
    }

    /// Jumps to HalfOpen, skipping any remaining Open cooldown — the
    /// re-admission hook called after a model retrains or rebaselines.
    pub fn begin_probation(&self) {
        let mut g = self.lock();
        let from = g.state;
        g.state = BreakerState::HalfOpen;
        g.probation_ok = 0;
        if from != BreakerState::HalfOpen {
            self.observe_transition(from, BreakerState::HalfOpen, "rebaseline");
        }
    }

    /// Resets to a fresh Closed breaker (counters preserved only for
    /// `calls`/`fallbacks`/`trips` telemetry).
    pub fn reset(&self) {
        let mut g = self.lock();
        let from = g.state;
        g.state = BreakerState::Closed;
        g.failures = 0;
        g.opened_for = 0;
        g.probation_ok = 0;
        if from != BreakerState::Closed {
            self.observe_transition(from, BreakerState::Closed, "reset");
        }
    }

    fn trip(&self, g: &mut Inner, why: TripReason) {
        let from = g.state;
        g.state = BreakerState::Open;
        g.opened_for = 0;
        g.probation_ok = 0;
        g.trips += 1;
        g.last_trip = Some(why);
        self.observe_transition(from, BreakerState::Open, why.as_str());
        ml4db_obs::counter_add("guard.trips", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_budget: 2, open_calls: 3, probation_successes: 2 }
    }

    #[test]
    fn trips_after_budget_and_recovers_through_probation() {
        let b = CircuitBreaker::new(cfg());
        assert_eq!(b.state(), BreakerState::Closed);

        // Two failures exhaust the budget.
        assert_eq!(b.begin_call(), Decision::UseLearned { shadow: false });
        b.record_failure(TripReason::InvalidOutput);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.begin_call(), Decision::UseLearned { shadow: false });
        b.record_failure(TripReason::InvalidOutput);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.last_trip(), Some(TripReason::InvalidOutput));

        // Open serves classical for `open_calls` calls, then HalfOpen.
        for _ in 0..3 {
            assert_eq!(b.begin_call(), Decision::UseClassical);
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Two clean shadow calls close it again.
        assert_eq!(b.begin_call(), Decision::UseLearned { shadow: true });
        b.record_success();
        assert_eq!(b.begin_call(), Decision::UseLearned { shadow: true });
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probation_failure_reopens_immediately() {
        let b = CircuitBreaker::new(cfg());
        b.force_open(TripReason::Drift);
        for _ in 0..3 {
            b.begin_call();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.begin_call();
        b.record_failure(TripReason::OutOfBand);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_restores_closed_budget() {
        let b = CircuitBreaker::new(cfg());
        b.begin_call();
        b.record_failure(TripReason::InvalidOutput);
        b.begin_call();
        b.record_success(); // budget resets
        b.begin_call();
        b.record_failure(TripReason::InvalidOutput);
        assert_eq!(b.state(), BreakerState::Closed, "budget should have reset");
    }

    #[test]
    fn begin_probation_skips_cooldown() {
        let b = CircuitBreaker::new(cfg());
        b.force_open(TripReason::Drift);
        b.begin_probation();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn fallback_accounting() {
        let b = CircuitBreaker::new(cfg());
        b.begin_call();
        b.record_success();
        assert_eq!(b.fallback_rate(), 0.0);
        b.begin_call();
        b.record_failure(TripReason::Panic);
        assert!(b.fallback_rate() > 0.4);
        assert_eq!(b.calls(), 2);
    }

    #[test]
    fn survives_poisoned_lock() {
        let b = std::sync::Arc::new(CircuitBreaker::new(cfg()));
        let b2 = b.clone();
        let _ = std::thread::spawn(move || {
            let _g = b2.inner.lock().unwrap();
            panic!("poison the breaker lock");
        })
        .join();
        // A poisoned mutex must not wedge the guardrail.
        b.begin_call();
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
