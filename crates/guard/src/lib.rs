//! # ml4db-guard — circuit-breaker guardrails for every learned component
//!
//! The tutorial's open-problem list puts **robustness** first: learned
//! database components fail silently (stale models after workload shift),
//! loudly (NaN estimates, out-of-bound index predictions), or expensively
//! (steering into catastrophic plans). This crate makes every learned
//! component in the repo *safe to deploy* by running it side-by-side with
//! its classical counterpart behind a deterministic circuit breaker:
//!
//! * [`breaker`] — the Closed → Open → HalfOpen state machine, driven
//!   purely by call counts (no clocks) so every run is reproducible;
//! * [`estimator`] — guarded cardinality estimation: plausibility bands
//!   vs the classical estimator, drift-detector integration, and
//!   rebaseline-driven re-admission;
//! * [`index_guard`] — guarded 1-D learned indexes: miss cross-checks,
//!   range invariants, scheduled audits, panic containment;
//! * [`spatial_guard`] — guarded learned spatial indexes: range audits
//!   and a kNN recall floor against the exact R-tree;
//! * [`steering`] — guarded plan steering with a per-query latency
//!   budget enforced by `Env::run_with_timeout`;
//! * [`chaos`] — the deterministic fault-injection harness that proves
//!   the above: nine failure modes, each run guarded and raw, with a
//!   seeded byte-stable report;
//! * [`ctlchaos`] — fault families aimed at the autonomous controller
//!   itself (lying sensors, actuator failures, trigger storms,
//!   crash-mid-action), consumed by the `ml4db-ctl` chaos harness.
//!
//! The design invariant throughout: **a tripped guard costs nothing** —
//! while Open, the guarded component behaves exactly like its classical
//! baseline — and **trust must be earned** — audits are dense for young
//! and probationary models, sparse once sustained agreement is observed.

#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod ctlchaos;
pub mod diskchaos;
pub mod estimator;
pub mod index_guard;
pub mod lifecycle;
pub mod spatial_guard;
pub mod steering;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Decision, TripReason};
pub use chaos::{run_all, run_scenario, Fault, ScenarioReport};
pub use ctlchaos::{ActuatorClock, ActuatorTransient, CtlFault};
pub use diskchaos::{DiskFault, DiskScenarioReport};
pub use estimator::GuardedCardEstimator;
pub use lifecycle::LifecycleLink;
pub use index_guard::GuardedIndex;
pub use spatial_guard::{GuardedSpatial, SpatialModel};
pub use steering::{GuardedSteering, SteeringPolicy};
