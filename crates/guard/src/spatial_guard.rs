//! Circuit-breaker guardrail for learned spatial indexes.
//!
//! Replacement-paradigm spatial indexes ([`ml4db_spatial::ZmIndex`],
//! [`ml4db_spatial::RsmiIndex`]) answer range queries exactly *when their
//! learned CDF is healthy*, but kNN is approximate by construction and a
//! corrupted model silently drops results. [`GuardedSpatial`] serves such
//! a model next to the classical [`ml4db_spatial::RTree`]:
//!
//! * **range audits** — learned range results are compared set-wise
//!   against the R-tree on a deterministic schedule (every call during
//!   warmup/probation, every Nth after). A missing or spurious id is a
//!   breaker failure, and the audited call serves the exact answer.
//! * **kNN recall floor** — audited kNN calls are compared against the
//!   exact best-first R-tree answer; recall below `min_recall` is judged a
//!   failure. Audited calls serve the exact neighbours.
//! * **panic containment + Open fallback** — panics are caught and judged;
//!   while Open every query is answered by the R-tree alone.
//!
//! The learned side plugs in through [`SpatialModel`], implemented here
//! for the crate's replacement indexes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use ml4db_spatial::{Point, Rect, RsmiIndex, RTree, ZmIndex};

use crate::breaker::{BreakerConfig, CircuitBreaker, Decision, TripReason};

/// The learned side of a guarded spatial index: range + approximate kNN.
pub trait SpatialModel {
    /// Ids of stored points inside `query` (any order).
    fn range(&self, query: &Rect) -> Vec<usize>;
    /// Approximately the `k` nearest stored points to `point`.
    fn knn(&self, point: &Point, k: usize) -> Vec<usize>;
    /// Number of stored points.
    fn len(&self) -> usize;
    /// True when no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Candidate window used for the approximate-kNN adapters below.
const KNN_WINDOW: usize = 256;

impl SpatialModel for ZmIndex {
    fn range(&self, query: &Rect) -> Vec<usize> {
        self.range_query(query).0
    }
    fn knn(&self, point: &Point, k: usize) -> Vec<usize> {
        self.knn_approximate(point, k, KNN_WINDOW)
    }
    fn len(&self) -> usize {
        self.len()
    }
}

impl SpatialModel for RsmiIndex {
    fn range(&self, query: &Rect) -> Vec<usize> {
        self.range_query(query).0
    }
    fn knn(&self, point: &Point, k: usize) -> Vec<usize> {
        self.knn_approximate(point, k, KNN_WINDOW)
    }
    fn len(&self) -> usize {
        self.len()
    }
}

/// A learned spatial index guarded by a classical R-tree.
pub struct GuardedSpatial<L> {
    /// The learned index.
    pub learned: L,
    /// The exact classical baseline.
    pub classical: RTree,
    /// Minimum acceptable kNN recall on audited calls.
    pub min_recall: f64,
    /// Audit every call for the first this-many learned calls.
    pub warmup_audits: u64,
    /// After warmup, audit every Nth learned call (0 disables).
    pub audit_every: u64,
    breaker: CircuitBreaker,
    learned_calls: AtomicU64,
    audits: AtomicU64,
    mismatches: AtomicU64,
}

impl<L: SpatialModel> GuardedSpatial<L> {
    /// Guards `learned` with `classical` under default thresholds
    /// (kNN recall floor 0.6, warmup 16, audit every 8th call).
    ///
    /// # Panics
    /// Panics if the two sides disagree on entry count.
    pub fn new(learned: L, classical: RTree) -> Self {
        Self::with_config(learned, classical, 0.6, BreakerConfig::default(), 16, 8)
    }

    /// Fully parameterized constructor.
    pub fn with_config(
        learned: L,
        classical: RTree,
        min_recall: f64,
        cfg: BreakerConfig,
        warmup_audits: u64,
        audit_every: u64,
    ) -> Self {
        assert_eq!(
            learned.len(),
            classical.len(),
            "guarded spatial index requires both sides to index the same data"
        );
        assert!((0.0..=1.0).contains(&min_recall));
        Self {
            learned,
            classical,
            min_recall,
            warmup_audits,
            audit_every,
            breaker: CircuitBreaker::named("spatial_index", cfg),
            learned_calls: AtomicU64::new(0),
            audits: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
        }
    }

    /// The breaker, for state inspection and telemetry.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Number of audits performed.
    pub fn audits(&self) -> u64 {
        self.audits.load(Ordering::Relaxed)
    }

    /// Number of audited calls that failed their check.
    pub fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    fn scheduled_audit(&self, nth_learned_call: u64) -> bool {
        nth_learned_call <= self.warmup_audits
            || (self.audit_every > 0 && nth_learned_call % self.audit_every == 0)
    }

    /// Range query: ids of stored points inside `query`, sorted. Audited
    /// calls serve the exact classical answer; correctness failures count
    /// against the breaker.
    pub fn range_query(&self, query: &Rect) -> Vec<usize> {
        let classical_sorted = |out: &mut Vec<usize>| {
            out.sort_unstable();
        };
        match self.breaker.begin_call() {
            Decision::UseClassical => {
                let (mut ids, _) = self.classical.range_query(query);
                classical_sorted(&mut ids);
                ids
            }
            Decision::UseLearned { shadow } => {
                let nth = self.learned_calls.fetch_add(1, Ordering::Relaxed) + 1;
                let learned =
                    catch_unwind(AssertUnwindSafe(|| self.learned.range(query)));
                let mut res = match learned {
                    Err(_) => {
                        self.breaker.record_failure(TripReason::Panic);
                        let (mut ids, _) = self.classical.range_query(query);
                        classical_sorted(&mut ids);
                        return ids;
                    }
                    Ok(r) => r,
                };
                res.sort_unstable();
                if shadow || self.scheduled_audit(nth) {
                    self.audits.fetch_add(1, Ordering::Relaxed);
                    let (mut truth, _) = self.classical.range_query(query);
                    classical_sorted(&mut truth);
                    if res == truth {
                        self.breaker.record_success();
                    } else {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                        self.breaker.record_failure(TripReason::OutOfBand);
                    }
                    truth
                } else {
                    res
                }
            }
        }
    }

    /// kNN query. Audited calls serve the exact classical neighbours and
    /// judge the learned answer's recall against `min_recall`.
    pub fn knn(&self, point: &Point, k: usize) -> Vec<usize> {
        match self.breaker.begin_call() {
            Decision::UseClassical => self.classical.knn(point, k).0,
            Decision::UseLearned { shadow } => {
                let nth = self.learned_calls.fetch_add(1, Ordering::Relaxed) + 1;
                let learned =
                    catch_unwind(AssertUnwindSafe(|| self.learned.knn(point, k)));
                let res = match learned {
                    Err(_) => {
                        self.breaker.record_failure(TripReason::Panic);
                        return self.classical.knn(point, k).0;
                    }
                    Ok(r) => r,
                };
                // Structural check every call: an approximate kNN must
                // still return k results when k points exist.
                if res.len() < k.min(self.learned.len()) {
                    self.breaker.record_failure(TripReason::InvalidOutput);
                    return self.classical.knn(point, k).0;
                }
                if shadow || self.scheduled_audit(nth) {
                    self.audits.fetch_add(1, Ordering::Relaxed);
                    let (truth, _) = self.classical.knn(point, k);
                    let truth_set: std::collections::BTreeSet<usize> =
                        truth.iter().copied().collect();
                    let hit = res.iter().filter(|id| truth_set.contains(id)).count();
                    let recall =
                        if truth.is_empty() { 1.0 } else { hit as f64 / truth.len() as f64 };
                    if recall >= self.min_recall {
                        self.breaker.record_success();
                    } else {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                        self.breaker.record_failure(TripReason::OutOfBand);
                    }
                    truth
                } else {
                    res
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use ml4db_spatial::data::{generate_points, unit_domain, SpatialDistribution};
    use ml4db_spatial::Entry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Vec<Entry>, RTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts =
            generate_points(SpatialDistribution::Clustered { clusters: 5 }, n, &mut rng);
        let rt = RTree::bulk_load_str(&pts);
        (pts, rt)
    }

    fn brute_range(entries: &[Entry], q: &Rect) -> Vec<usize> {
        let mut v: Vec<usize> = entries
            .iter()
            .filter(|e| q.contains_point(&e.rect.center()))
            .map(|e| e.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn healthy_zm_serves_exact_ranges_and_stays_closed() {
        let (pts, rt) = setup(2000, 11);
        let zm = ZmIndex::build(pts.clone(), unit_domain(), 16);
        let g = GuardedSpatial::new(zm, rt);
        for i in 0..24u64 {
            let lo = 40.0 * (i % 5) as f64;
            let q = Rect::new(
                Point::new(lo, lo),
                Point::new(lo + 300.0, lo + 280.0),
            );
            // ZM ranges are exact while the model is healthy; every result
            // (audited or not) matches brute force because the R-tree
            // intersects degenerate point-rects exactly when the rect
            // contains the point.
            assert_eq!(g.range_query(&q), brute_range(&pts, &q));
        }
        assert_eq!(g.breaker().state(), BreakerState::Closed);
        assert_eq!(g.mismatches(), 0);
    }

    /// A spatial model that silently drops a fraction of range results and
    /// answers kNN from the wrong region — the corrupted-CDF failure mode.
    struct Corrupted {
        inner: ZmIndex,
    }
    impl SpatialModel for Corrupted {
        fn range(&self, query: &Rect) -> Vec<usize> {
            let mut ids = self.inner.range_query(query).0;
            let keep = ids.len() / 2;
            ids.truncate(keep);
            ids
        }
        fn knn(&self, point: &Point, k: usize) -> Vec<usize> {
            // Probe a displaced point: recall collapses.
            let off = Point::new(point.x * 0.1, 1000.0 - point.y);
            self.inner.knn_approximate(&off, k, 4)
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
    }

    #[test]
    fn corrupted_model_trips_and_serves_exact_answers() {
        let (pts, rt) = setup(2000, 12);
        let zm = ZmIndex::build(pts.clone(), unit_domain(), 16);
        let g = GuardedSpatial::new(Corrupted { inner: zm }, rt);
        let q = Rect::new(Point::new(100.0, 100.0), Point::new(700.0, 700.0));
        for _ in 0..8 {
            // Audited calls repair the dropped half; once Open, classical
            // serves — either way the answer is exact.
            assert_eq!(g.range_query(&q), brute_range(&pts, &q));
        }
        assert_eq!(g.breaker().state(), BreakerState::Open);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::OutOfBand));
        assert!(g.mismatches() > 0);
    }

    #[test]
    fn knn_recall_floor_is_enforced() {
        let (pts, rt) = setup(3000, 13);
        let zm = ZmIndex::build(pts.clone(), unit_domain(), 16);
        let g = GuardedSpatial::new(Corrupted { inner: zm }, rt.clone());
        let probe = pts[pts.len() / 3].rect.center();
        for _ in 0..8 {
            let got = g.knn(&probe, 10);
            // Audited (warmup) calls serve the exact answer; Open calls
            // serve classical. Both equal the R-tree's exact kNN.
            assert_eq!(got, rt.knn(&probe, 10).0);
        }
        assert_eq!(g.breaker().state(), BreakerState::Open);
    }
}
