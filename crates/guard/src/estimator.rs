//! Circuit-breaker guardrail for learned cardinality estimators.
//!
//! [`GuardedCardEstimator`] runs a learned estimator side-by-side with a
//! classical one behind the [`ml4db_plan::CardEstimator`] trait, so it
//! drops into any planner unchanged. Three trip signals feed its breaker:
//!
//! * **validity** — NaN/Inf/non-positive estimates never escape (they are
//!   judged as failures and the classical answer serves);
//! * **plausibility band** — estimates further than `max_ratio` from the
//!   classical answer are treated as failures (the per-call guardrail of
//!   the tutorial's ML-enhanced paradigm);
//! * **drift** — a [`ml4db_card::DriftDetector`] over the post-execution
//!   log-q-error stream; a detected shift force-opens the breaker.
//!
//! Panics inside the learned model are caught at this boundary and judged
//! as failures: a poisoned model must degrade service, not crash the
//! planner.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use ml4db_card::DriftDetector;
use ml4db_plan::{CardEstimator, ClassicEstimator, Query};
use ml4db_storage::Database;

use crate::breaker::{BreakerConfig, CircuitBreaker, Decision, TripReason};

/// A learned cardinality estimator wrapped in a circuit breaker, falling
/// back to a classical estimator.
pub struct GuardedCardEstimator<L, C = ClassicEstimator> {
    /// The learned model.
    pub learned: L,
    /// The classical fallback (and plausibility reference).
    pub classical: C,
    /// Maximum allowed ratio between learned and classical estimates
    /// before a call is judged out-of-band.
    pub max_ratio: f64,
    breaker: CircuitBreaker,
    drift: Mutex<DriftDetector>,
}

impl<L: CardEstimator> GuardedCardEstimator<L, ClassicEstimator> {
    /// Guards `learned` against the classical textbook estimator with
    /// default breaker thresholds and a 40-observation drift window.
    pub fn new(learned: L, max_ratio: f64) -> Self {
        Self::with_config(
            learned,
            ClassicEstimator,
            max_ratio,
            BreakerConfig::default(),
            DriftDetector::new(40, 0.5),
        )
    }
}

impl<L: CardEstimator, C: CardEstimator> GuardedCardEstimator<L, C> {
    /// Fully parameterized constructor.
    pub fn with_config(
        learned: L,
        classical: C,
        max_ratio: f64,
        cfg: BreakerConfig,
        drift: DriftDetector,
    ) -> Self {
        assert!(max_ratio > 1.0, "plausibility ratio must exceed 1");
        Self {
            learned,
            classical,
            max_ratio,
            breaker: CircuitBreaker::named("card_estimator", cfg),
            drift: Mutex::new(drift),
        }
    }

    /// The breaker, for state inspection and telemetry.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Feeds one post-execution ground truth back into the drift
    /// detector: `truth` is the observed cardinality for `(query, mask)`.
    /// A detected shift force-opens the breaker.
    pub fn observe_truth(&self, db: &Database, query: &Query, mask: u64, truth: f64) {
        let learned =
            catch_unwind(AssertUnwindSafe(|| self.learned.estimate(db, query, mask)));
        let err = match learned {
            Ok(v) if v.is_finite() && v > 0.0 => {
                let t = truth.max(1.0);
                (v.max(1e-9) / t).ln().abs()
            }
            // An unusable estimate is an unbounded error for drift
            // purposes.
            _ => f64::MAX.ln(),
        };
        let fired = self
            .drift
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(err);
        ml4db_obs::emit_with(|| ml4db_obs::Event::DriftVerdict {
            component: self.breaker.name(),
            fired,
        });
        ml4db_obs::counter_add(
            if fired { "drift.fired" } else { "drift.stable" },
            1,
        );
        if fired {
            self.breaker.force_open(TripReason::Drift);
        }
    }

    /// Installs a new learned model (a freshly promoted lifecycle
    /// version) and re-admits it: the drift baseline is cleared and the
    /// breaker goes on probation, exactly as [`Self::rebaseline`] — the
    /// old model's error history must not be charged to its successor.
    pub fn install(&mut self, model: L) {
        self.learned = model;
        self.rebaseline();
    }

    /// Re-admission hook after the learned model retrains or adapts:
    /// clears the drift baseline (the new model's errors define the fresh
    /// reference) and puts the breaker on probation.
    pub fn rebaseline(&self) {
        self.drift
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rebaseline();
        self.breaker.begin_probation();
    }

    /// Judges one learned estimate against the classical answer.
    fn judge(&self, learned: f64, classical: f64) -> Result<f64, TripReason> {
        if !learned.is_finite() || learned <= 0.0 {
            return Err(TripReason::InvalidOutput);
        }
        let c = classical.max(1e-9);
        let l = learned.max(1e-9);
        let ratio = (l / c).max(c / l);
        if ratio > self.max_ratio {
            Err(TripReason::OutOfBand)
        } else {
            Ok(learned)
        }
    }
}

impl<L: CardEstimator, C: CardEstimator> CardEstimator for GuardedCardEstimator<L, C> {
    fn estimate(&self, db: &Database, query: &Query, mask: u64) -> f64 {
        let classical = self.classical.estimate(db, query, mask);
        match self.breaker.begin_call() {
            Decision::UseClassical => classical,
            Decision::UseLearned { shadow } => {
                let learned = catch_unwind(AssertUnwindSafe(|| {
                    self.learned.estimate(db, query, mask)
                }));
                let verdict = match learned {
                    Err(_) => Err(TripReason::Panic),
                    Ok(v) => self.judge(v, classical),
                };
                match verdict {
                    Ok(v) => {
                        self.breaker.record_success();
                        if shadow {
                            classical
                        } else {
                            v
                        }
                    }
                    Err(why) => {
                        self.breaker.record_failure(why);
                        classical
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use ml4db_storage::datasets::{joblite, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct NanEstimator;
    impl CardEstimator for NanEstimator {
        fn estimate(&self, _: &Database, _: &Query, _: u64) -> f64 {
            f64::NAN
        }
    }

    struct PanicEstimator;
    impl CardEstimator for PanicEstimator {
        fn estimate(&self, _: &Database, _: &Query, _: u64) -> f64 {
            panic!("poisoned model");
        }
    }

    /// Mirrors the classical estimator (always in band).
    struct EchoEstimator;
    impl CardEstimator for EchoEstimator {
        fn estimate(&self, db: &Database, q: &Query, mask: u64) -> f64 {
            ClassicEstimator.estimate(db, q, mask)
        }
    }

    fn db() -> Database {
        let mut rng = StdRng::seed_from_u64(7);
        Database::analyze(
            joblite(&DatasetConfig { base_rows: 100, ..Default::default() }, &mut rng),
            &mut rng,
        )
    }

    fn q() -> Query {
        Query::new(&["title", "cast_info"]).join(0, "id", 1, "movie_id")
    }

    #[test]
    fn nan_estimates_trip_and_serve_classical() {
        let db = db();
        let q = q();
        let g = GuardedCardEstimator::new(NanEstimator, 8.0);
        let classical = ClassicEstimator.estimate(&db, &q, 0b11);
        for _ in 0..10 {
            let est = g.estimate(&db, &q, 0b11);
            assert!(est.is_finite() && est > 0.0);
            assert_eq!(est, classical);
        }
        assert_eq!(g.breaker().state(), BreakerState::Open);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::InvalidOutput));
    }

    #[test]
    fn panicking_model_is_contained() {
        let db = db();
        let q = q();
        let g = GuardedCardEstimator::new(PanicEstimator, 8.0);
        let classical = ClassicEstimator.estimate(&db, &q, 0b01);
        for _ in 0..6 {
            assert_eq!(g.estimate(&db, &q, 0b01), classical);
        }
        assert_eq!(g.breaker().last_trip(), Some(TripReason::Panic));
    }

    #[test]
    fn in_band_model_serves_and_stays_closed() {
        let db = db();
        let q = q();
        let g = GuardedCardEstimator::new(EchoEstimator, 8.0);
        for mask in [0b01u64, 0b10, 0b11] {
            let est = g.estimate(&db, &q, mask);
            assert_eq!(est, ClassicEstimator.estimate(&db, &q, mask));
        }
        assert_eq!(g.breaker().state(), BreakerState::Closed);
        assert_eq!(g.breaker().fallbacks(), 0);
    }

    #[test]
    fn drift_signal_force_opens_and_rebaseline_readmits() {
        let db = db();
        let q = q();
        let g = GuardedCardEstimator::with_config(
            EchoEstimator,
            ClassicEstimator,
            8.0,
            BreakerConfig::default(),
            DriftDetector::new(8, 0.5),
        );
        // Stable period: small errors build the reference window.
        for _ in 0..8 {
            let est = ClassicEstimator.estimate(&db, &q, 0b11);
            g.observe_truth(&db, &q, 0b11, est * 1.1);
        }
        assert_eq!(g.breaker().state(), BreakerState::Closed);
        // Shifted period: the same model is now wildly wrong.
        for _ in 0..16 {
            let est = ClassicEstimator.estimate(&db, &q, 0b11);
            g.observe_truth(&db, &q, 0b11, est * 5e4);
        }
        assert_eq!(g.breaker().state(), BreakerState::Open);
        assert_eq!(g.breaker().last_trip(), Some(TripReason::Drift));

        // After "retraining", rebaseline puts it on probation and the new
        // error stream does not re-trip.
        g.rebaseline();
        assert_eq!(g.breaker().state(), BreakerState::HalfOpen);
        for _ in 0..32 {
            let est = ClassicEstimator.estimate(&db, &q, 0b11);
            g.observe_truth(&db, &q, 0b11, est * 1.05);
            g.estimate(&db, &q, 0b11);
        }
        assert_eq!(g.breaker().state(), BreakerState::Closed);
    }
}
