//! Guard state-transition tracing: a scripted fault sequence must produce
//! the *exact* ordered list of `guard_transition` events — component,
//! from-state, to-state, and reason all pinned — with fallback events and
//! metric counters matching.

use std::sync::Mutex;

use ml4db_guard::{BreakerConfig, BreakerState, CircuitBreaker, TripReason};
use ml4db_obs as obs;
use ml4db_obs::Event;

// The obs sink is process-global; tests here serialize on it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> BreakerConfig {
    BreakerConfig { failure_budget: 2, open_calls: 3, probation_successes: 2 }
}

/// Every guard_transition in the trace, in emission order, as
/// `(component, from, to, reason)`.
fn transitions(trace: &obs::Trace) -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    trace
        .all_events()
        .filter_map(|e| match *e {
            Event::GuardTransition { component, from, to, reason } => {
                Some((component, from, to, reason))
            }
            _ => None,
        })
        .collect()
}

#[test]
fn scripted_fault_walks_closed_open_halfopen_closed_exactly() {
    let _s = serial();
    let _g = obs::ModeGuard::collect();
    let b = CircuitBreaker::named("card_estimator", cfg());

    // Two judged failures exhaust the budget and trip the breaker.
    b.begin_call();
    b.record_failure(TripReason::InvalidOutput);
    b.begin_call();
    b.record_failure(TripReason::InvalidOutput);
    assert_eq!(b.state(), BreakerState::Open);
    // Three classical-only calls elapse the cooldown.
    for _ in 0..3 {
        b.begin_call();
    }
    assert_eq!(b.state(), BreakerState::HalfOpen);
    // Two clean shadow calls complete probation.
    b.begin_call();
    b.record_success();
    b.begin_call();
    b.record_success();
    assert_eq!(b.state(), BreakerState::Closed);

    let trace = obs::take_trace();
    assert_eq!(
        transitions(&trace),
        vec![
            ("card_estimator", "closed", "open", "invalid_output"),
            ("card_estimator", "open", "half_open", "cooldown_elapsed"),
            ("card_estimator", "half_open", "closed", "probation_complete"),
        ],
        "transition sequence must match the scripted fault exactly"
    );
    // Each judged failure also records a fallback with its reason.
    let fallbacks = trace
        .all_events()
        .filter(|e| {
            matches!(
                e,
                Event::GuardFallback { component: "card_estimator", reason: "invalid_output" }
            )
        })
        .count();
    assert_eq!(fallbacks, 2);
    // Counters agree with the event stream.
    assert_eq!(trace.metrics.counter("guard.transitions"), 3);
    assert_eq!(trace.metrics.counter("guard.trips"), 1);
    assert_eq!(trace.metrics.counter("guard.fallbacks"), 2);
}

#[test]
fn probation_failure_reopens_with_its_own_reason() {
    let _s = serial();
    let _g = obs::ModeGuard::collect();
    let b = CircuitBreaker::named("steering", cfg());

    b.force_open(TripReason::Drift);
    for _ in 0..3 {
        b.begin_call();
    }
    assert_eq!(b.state(), BreakerState::HalfOpen);
    // A single probation failure re-opens immediately.
    b.begin_call();
    b.record_failure(TripReason::OutOfBand);
    assert_eq!(b.state(), BreakerState::Open);

    assert_eq!(
        transitions(&obs::take_trace()),
        vec![
            ("steering", "closed", "open", "drift"),
            ("steering", "open", "half_open", "cooldown_elapsed"),
            ("steering", "half_open", "open", "out_of_band"),
        ]
    );
}

#[test]
fn rebaseline_and_reset_record_administrative_reasons() {
    let _s = serial();
    let _g = obs::ModeGuard::collect();
    let b = CircuitBreaker::named("learned_index", cfg());

    b.force_open(TripReason::LatencyRegression);
    b.begin_probation(); // retrain hook: skip the cooldown
    b.reset(); // operator override: back to a fresh Closed breaker

    assert_eq!(
        transitions(&obs::take_trace()),
        vec![
            ("learned_index", "closed", "open", "latency_regression"),
            ("learned_index", "open", "half_open", "rebaseline"),
            ("learned_index", "half_open", "closed", "reset"),
        ]
    );
}

#[test]
fn transitions_attribute_to_the_query_in_flight() {
    let _s = serial();
    let _g = obs::ModeGuard::collect();
    let b = CircuitBreaker::named("card_estimator", cfg());

    // The trip happens while query 0xabc's estimate is being judged, so
    // the transition must land in that query's event list.
    obs::with_query(0xabc, || {
        b.begin_call();
        b.record_failure(TripReason::InvalidOutput);
        b.begin_call();
        b.record_failure(TripReason::InvalidOutput);
    });
    let trace = obs::take_trace();
    assert!(trace.global.is_empty(), "events must attribute to the query context");
    let events = trace.events_for(0xabc);
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::GuardTransition { component: "card_estimator", to: "open", .. }
        )),
        "trip must be recorded under query 0xabc: {events:?}"
    );
}
